#!/usr/bin/env python3
"""Run a small 2x2 matrix campaign: 2 uarches x 2 simulators, one sweep.

Fans a single WriteLatency sweep over ``{haswell, zen2} x {mca, llvm_sim}``
through the distributed matrix scheduler (:mod:`repro.distributed`): the
per-target corpora are built once and shared by both simulators, the cells
run through the chosen executor (``--executor pool`` overlaps them across
processes), and the per-cell campaign reports are aggregated into one
``matrix_report.json`` with a cross-cell comparison table.  The same matrix
is runnable from the CLI::

    python -m repro.cli matrix run --targets haswell zen2 \\
        --axis "WriteLatency@ADD32rr=1,2,3,4,5" --blocks 120 \\
        --executor pool --workers 2 --output matrix_report.json
"""

import argparse

from repro.api import MatrixCampaignSpec, run_matrix
from repro.distributed import format_matrix_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=120,
                        help="corpus blocks per target")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--executor", default="inline",
                        choices=["inline", "pool"],
                        help="'pool' runs cells in parallel processes")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent cells for --executor pool")
    parser.add_argument("--output", default=None,
                        help="write the aggregate matrix_report.json here")
    arguments = parser.parse_args()

    spec = MatrixCampaignSpec(
        campaign={"axes": [{"field": "WriteLatency", "opcode": "ADD32rr",
                            "values": [1, 2, 3, 4, 5]}],
                  "num_blocks": arguments.blocks, "seed": arguments.seed,
                  "chunk_size": 16},
        targets=["haswell", "zen2"], simulators=["mca", "llvm_sim"],
        executor=arguments.executor, workers=arguments.workers,
        report_path=arguments.output)
    print(f"Running {len(spec.resolve_cells())} cells "
          f"({arguments.blocks} blocks per target) via the "
          f"{arguments.executor!r} executor...")
    result = run_matrix(spec, log=print)

    print()
    print(format_matrix_report(result.report))
    print(f"\n{result.status} in {result.elapsed_seconds:.1f}s; best variant "
          f"per cell:")
    for cell, best in result.report["best_variant_per_cell"].items():
        print(f"  {cell:<22} {best['assignment']}  "
              f"error {best['error'] * 100:.2f}%")
    if result.report_path:
        print(f"wrote {result.report_path}")


if __name__ == "__main__":
    main()
