#!/usr/bin/env python3
"""Section VI-B: learn only WriteLatency, keep every other parameter expert-set.

The paper's optimality analysis (Section VI-B) learns just the per-opcode
WriteLatency values — keeping NumMicroOps, ReadAdvanceCycles, the PortMap and
the global parameters at their expert defaults — and finds that this *partial*
learning problem reaches lower error (16.2% vs 23.7% on Haswell) than learning
the full set, demonstrating that full-set learning is not globally optimal.

This example reproduces that experiment end to end and, as in Section VI-C,
prints the learned latencies for the case-study opcodes (PUSH64r, XOR32rr,
ADD32mr) so the semantic findings can be inspected directly:

* PUSH64r should learn latency 0 (the stack engine hides the dependency);
* XOR32rr is usually a zero idiom, so 0 is the accurate choice;
* ADD32mr cannot be fixed by any latency value (llvm-mca does not model the
  store-to-load dependency chain), so the learned value is free to drift high.
"""

import argparse

import numpy as np

from repro.bhive import build_dataset
from repro.core import DiffTune, MCAAdapter, fast_config
from repro.eval.metrics import error_and_tau
from repro.eval.tables import format_table
from repro.llvm_mca import TimelineView
from repro.isa.parser import parse_block
from repro.targets import HASWELL

CASE_STUDY_OPCODES = ("PUSH64r", "XOR32rr", "ADD32mr")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    print(f"Generating and measuring {arguments.blocks} Haswell basic blocks...")
    dataset = build_dataset("haswell", num_blocks=arguments.blocks, seed=arguments.seed)
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])

    # learn_fields restricts learning to WriteLatency, as in Section VI-B.
    adapter = MCAAdapter(HASWELL, narrow_sampling=True, learn_fields=["WriteLatency"])
    config = fast_config(seed=arguments.seed)
    difftune = DiffTune(adapter, config, log=lambda message: print(f"[difftune] {message}"))

    print("\nLearning WriteLatency only (all other parameters stay at defaults)...")
    result = difftune.learn(train_blocks, train_timings)
    learned_table = adapter.table_from_arrays(result.learned_arrays)

    default_error, default_tau = error_and_tau(
        adapter.predict_timings(adapter.default_arrays(), test_blocks), test_timings)
    learned_error, learned_tau = error_and_tau(
        adapter.predict_timings(result.learned_arrays, test_blocks), test_timings)

    print("\n" + format_table(
        ["Configuration", "Test error", "Kendall's tau"],
        [["default (expert) parameters", f"{default_error * 100:.1f}%", f"{default_tau:.3f}"],
         ["learned WriteLatency only", f"{learned_error * 100:.1f}%", f"{learned_tau:.3f}"]],
        title="Section VI-B analogue: WriteLatency-only learning (Haswell)"))

    default_table = adapter.default_table()
    rows = []
    for opcode in CASE_STUDY_OPCODES:
        if opcode not in adapter.opcode_table:
            continue
        rows.append([opcode, str(default_table.latency_of(opcode)),
                     str(learned_table.latency_of(opcode))])
    print("\n" + format_table(["Opcode", "Default latency", "Learned latency"], rows,
                              title="Section VI-C case-study opcodes"))

    # Show the PUSH64r case study the way a performance engineer would see it:
    # the timeline of `pushq %rbx; testl %r8d, %r8d` under both tables.
    block = parse_block("pushq %rbx\ntestl %r8d, %r8d", adapter.opcode_table)
    print("\nTimeline with the default table:")
    print(TimelineView(default_table).render_timeline(block, max_iterations=2))
    print("\nTimeline with the learned table:")
    print(TimelineView(learned_table).render_timeline(block, max_iterations=2))


if __name__ == "__main__":
    main()
