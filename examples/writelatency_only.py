#!/usr/bin/env python3
"""Section VI-B: learn only WriteLatency, keep every other parameter expert-set.

The paper's optimality analysis (Section VI-B) learns just the per-opcode
WriteLatency values — keeping NumMicroOps, ReadAdvanceCycles, the PortMap and
the global parameters at their expert defaults — and finds that this *partial*
learning problem reaches lower error (16.2% vs 23.7% on Haswell) than learning
the full set, demonstrating that full-set learning is not globally optimal.

This example reproduces that experiment end to end through the public
:mod:`repro.api` surface (``learn_fields`` on the
:class:`~repro.api.TuneSpec` restricts learning to WriteLatency) and, as in
Section VI-C, prints the learned latencies for the case-study opcodes
(PUSH64r, XOR32rr, ADD32mr) so the semantic findings can be inspected
directly:

* PUSH64r should learn latency 0 (the stack engine hides the dependency);
* XOR32rr is usually a zero idiom, so 0 is the accurate choice;
* ADD32mr cannot be fixed by any latency value (llvm-mca does not model the
  store-to-load dependency chain), so the learned value is free to drift high.
"""

import argparse

from repro.api import Session, TuneSpec
from repro.eval.metrics import error_and_tau
from repro.eval.tables import format_table
from repro.isa.parser import parse_block
from repro.llvm_mca import TimelineView

CASE_STUDY_OPCODES = ("PUSH64r", "XOR32rr", "ADD32mr")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    # learn_fields restricts learning to WriteLatency, as in Section VI-B.
    session = Session.from_spec(
        TuneSpec(target="haswell", preset="fast", num_blocks=arguments.blocks,
                 seed=arguments.seed, learn_fields=["WriteLatency"]),
        log=lambda message: print(f"[difftune] {message}"))

    print(f"Generating and measuring {arguments.blocks} Haswell basic blocks...")
    session.dataset()
    print("\nLearning WriteLatency only (all other parameters stay at defaults)...")
    outcome = session.tune()
    learned_table = outcome.learned_table

    test_blocks, test_timings = session.split("test")
    default_error, default_tau = error_and_tau(
        session.predict(test_blocks, session.default_table()), test_timings)
    learned_error, learned_tau = error_and_tau(
        session.predict(test_blocks, learned_table), test_timings)

    print("\n" + format_table(
        ["Configuration", "Test error", "Kendall's tau"],
        [["default (expert) parameters", f"{default_error * 100:.1f}%", f"{default_tau:.3f}"],
         ["learned WriteLatency only", f"{learned_error * 100:.1f}%", f"{learned_tau:.3f}"]],
        title="Section VI-B analogue: WriteLatency-only learning (Haswell)"))

    default_table = session.default_table()
    opcode_table = session.adapter.opcode_table
    rows = []
    for opcode in CASE_STUDY_OPCODES:
        if opcode not in opcode_table:
            continue
        rows.append([opcode, str(default_table.latency_of(opcode)),
                     str(learned_table.latency_of(opcode))])
    print("\n" + format_table(["Opcode", "Default latency", "Learned latency"], rows,
                              title="Section VI-C case-study opcodes"))

    # Show the PUSH64r case study the way a performance engineer would see it:
    # the timeline of `pushq %rbx; testl %r8d, %r8d` under both tables.
    block = parse_block("pushq %rbx\ntestl %r8d, %r8d", opcode_table)
    print("\nTimeline with the default table:")
    print(TimelineView(default_table).render_timeline(block, max_iterations=2))
    print("\nTimeline with the learned table:")
    print(TimelineView(learned_table).render_timeline(block, max_iterations=2))


if __name__ == "__main__":
    main()
