#!/usr/bin/env python3
"""Reproduce the Section VI-C case studies (PUSH64r, XOR32rr, ADD32mr).

Learns WriteLatency values on Haswell (keeping every other parameter at its
default, as in Section VI-B), then walks through the three case-study blocks
from the paper, printing the measured timing, the default and learned llvm-mca
predictions, and the default and learned WriteLatency of the opcode each case
is about.
"""

import argparse

from repro.eval.experiments import ExperimentScale, run_section6c_case_studies
from repro.eval.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    scale = ExperimentScale.benchmark()
    scale.num_blocks = arguments.blocks
    scale.seed = arguments.seed

    print("Learning Haswell WriteLatency values (this takes a minute or two)...")
    report = run_section6c_case_studies(scale)

    rows = []
    for case in report:
        rows.append([case.name, f"{case.true_timing:.2f}", f"{case.default_prediction:.2f}",
                     f"{case.learned_prediction:.2f}", case.default_latency,
                     case.learned_latency])
    print()
    print(format_table(["Case", "Measured", "Default pred", "Learned pred",
                        "Default WriteLatency", "Learned WriteLatency"], rows,
                       title="Section VI-C case studies"))
    print("""
Reading the table (paper, Section VI-C):
  * PUSH64r  — the default latency of 2 makes the push serialize on itself;
    the hardware's stack engine hides that chain, so the learned latency
    drops toward 0 and the prediction moves toward the measured ~1 cycle.
  * XOR32rr  — xor of a register with itself is a zero idiom executed at
    rename; a learned latency of 0 reflects that.
  * ADD32mr  — the memory read-modify-write chains with itself through
    memory, which llvm-mca structurally cannot model; no latency value fixes
    it, so the default badly under-predicts and any learned value is a
    compensation, not a physical latency.""")


if __name__ == "__main__":
    main()
