#!/usr/bin/env python3
"""Appendix A: apply DiffTune to a second simulator (llvm_sim).

Shows that the DiffTune implementation is simulator-agnostic: the same
pipeline that tunes the llvm-mca model also tunes the llvm_sim model (a
micro-op-level simulator with a modeled frontend) by swapping one registry
key — ``simulator="llvm_sim"`` on the :class:`~repro.api.TuneSpec` — and
nothing else.  Reproduces the shape of Table VIII: learned parameters reduce
llvm_sim's error relative to its defaults.
"""

import argparse

from repro.api import Session, TuneSpec
from repro.eval.metrics import error_and_tau
from repro.eval.tables import format_results_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    session = Session.from_spec(
        TuneSpec(target="haswell", simulator="llvm_sim", preset="fast",
                 num_blocks=arguments.blocks, seed=arguments.seed),
        log=lambda message: print(f"  [difftune] {message}"))

    print(f"Generating and measuring {arguments.blocks} Haswell basic blocks...")
    outcome = session.tune()

    test_blocks, test_timings = session.split("test")
    rows = {}
    rows["Default"] = error_and_tau(
        session.predict(test_blocks, session.default_table()), test_timings)
    rows["DiffTune"] = error_and_tau(
        session.predict(test_blocks, outcome.learned_table), test_timings)
    print()
    print(format_results_table({"Haswell (llvm_sim)": rows}, title="Table VIII analogue"))


if __name__ == "__main__":
    main()
