#!/usr/bin/env python3
"""Appendix A: apply DiffTune to a second simulator (llvm_sim).

Shows that the DiffTune implementation is simulator-agnostic: the same
pipeline that tunes the llvm-mca model also tunes the llvm_sim model (a
micro-op-level simulator with a modeled frontend) by swapping the adapter.
Reproduces the shape of Table VIII: learned parameters reduce llvm_sim's
error relative to its defaults.
"""

import argparse

import numpy as np

from repro.bhive import build_dataset
from repro.core import DiffTune, LLVMSimAdapter, fast_config
from repro.eval.metrics import error_and_tau
from repro.eval.tables import format_results_table
from repro.targets import HASWELL


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    print(f"Generating and measuring {arguments.blocks} Haswell basic blocks...")
    dataset = build_dataset("haswell", num_blocks=arguments.blocks, seed=arguments.seed)
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])

    adapter = LLVMSimAdapter(HASWELL)
    difftune = DiffTune(adapter, fast_config(seed=arguments.seed),
                        log=lambda message: print(f"  [difftune] {message}"))
    result = difftune.learn(train_blocks, train_timings)

    rows = {}
    rows["Default"] = error_and_tau(
        adapter.predict_timings(adapter.default_arrays(), test_blocks), test_timings)
    rows["DiffTune"] = error_and_tau(
        adapter.predict_timings(result.learned_arrays, test_blocks), test_timings)
    print()
    print(format_results_table({"Haswell (llvm_sim)": rows}, title="Table VIII analogue"))


if __name__ == "__main__":
    main()
