#!/usr/bin/env python3
"""Compare every predictor from Table IV on one microarchitecture.

Runs the expert default table, DiffTune, the Ithemal-style learned baseline,
the IACA-like analytical model, and the OpenTuner-style black-box tuner on a
freshly generated dataset for the chosen target, and prints a Table IV style
summary.

Example:
    python examples/compare_baselines.py --uarch zen2 --blocks 300
"""

import argparse

from repro.api import TARGETS
from repro.eval.experiments import ExperimentScale, run_table4_for_uarch
from repro.eval.tables import format_results_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uarch", default="haswell", choices=TARGETS.names())
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-opentuner", action="store_true",
                        help="skip the black-box tuning baseline (the slowest step)")
    parser.add_argument("--skip-ithemal", action="store_true",
                        help="skip the learned Ithemal baseline")
    arguments = parser.parse_args()

    scale = ExperimentScale.benchmark()
    scale.num_blocks = arguments.blocks
    scale.seed = arguments.seed

    name = TARGETS.get(arguments.uarch).name
    print(f"Running the Table IV comparison on {name} "
          f"({arguments.blocks} blocks, seed {arguments.seed})...")
    results = run_table4_for_uarch(arguments.uarch, scale,
                                   include_opentuner=not arguments.skip_opentuner,
                                   include_ithemal=not arguments.skip_ithemal)
    print()
    print(format_results_table({name: results}, title="Table IV analogue"))
    print("\nExpected shape (paper, Table IV): Ithemal < IACA < DiffTune <= Default "
          "<< OpenTuner; IACA is N/A on Zen 2.")


if __name__ == "__main__":
    main()
