#!/usr/bin/env python3
"""Load-generate against the inference server and report QPS / latency.

Points N concurrent clients (:func:`repro.serving.run_load`) at a running
``repro serve`` instance — or, with ``--self-hosted``, boots a demo server
on an ephemeral port first so the example runs with no setup::

    # terminal 1                       # terminal 2
    python -m repro.cli serve \\       python examples/serving_client.py \\
        --uarch haswell --port 8000        --port 8000 --clients 8

    # or all-in-one:
    python examples/serving_client.py --self-hosted

Each request carries a few distinct generated basic blocks, so the numbers
measure serving + coalesced simulation rather than the server's result
cache.  The report shows client-side QPS and p50/p99 latency next to the
server's own ``/stats`` (mean batch size, cache hit rate) — watching
``mean_batch_size`` rise with ``--clients`` is the whole point of the
request coalescer.
"""

import argparse
import json

from repro.serving import ServingClient, run_load


def generate_requests(num_requests: int, blocks_per_request: int,
                      seed: int) -> list:
    from repro.bhive.generator import BlockGenerator

    generator = BlockGenerator(seed=seed)
    texts = []
    seen = set()
    for block in generator.generate_blocks(8 * num_requests * blocks_per_request):
        text = "; ".join(block.to_assembly().splitlines())
        if text not in seen:
            seen.add(text)
            texts.append(text)
        if len(texts) >= num_requests * blocks_per_request:
            break
    return [texts[i * blocks_per_request:(i + 1) * blocks_per_request]
            for i in range(len(texts) // blocks_per_request)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads")
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests across all clients")
    parser.add_argument("--blocks-per-request", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--self-hosted", action="store_true",
                        help="boot a demo haswell/mca server on an ephemeral "
                             "port instead of targeting --host/--port")
    arguments = parser.parse_args()

    handle = None
    host, port = arguments.host, arguments.port
    if arguments.self_hosted:
        from repro.serving import InferenceServer

        server = InferenceServer.from_spec(
            {"target": "haswell", "simulator": "mca", "port": 0},
            log=lambda message: print(f"[server] {message}"))
        handle = server.start_in_thread()
        host, port = handle.host, handle.port

    requests = generate_requests(arguments.requests,
                                 arguments.blocks_per_request, arguments.seed)
    print(f"Sending {len(requests)} requests "
          f"({arguments.blocks_per_request} blocks each) from "
          f"{arguments.clients} clients to http://{host}:{port} ...")
    try:
        report = run_load(host, port, requests, num_clients=arguments.clients)
        with ServingClient(host, port) as client:
            server_stats = client.stats()
    finally:
        if handle is not None:
            handle.stop()

    print()
    print(f"Client side: {report.qps:.0f} req/s "
          f"({report.blocks_per_sec:.0f} blocks/s), "
          f"p50 {report.latency_ms(0.50):.2f}ms, "
          f"p99 {report.latency_ms(0.99):.2f}ms, "
          f"{len(report.errors)} errors")
    print(f"Server side: mean batch size "
          f"{server_stats['mean_batch_size']:.1f} over "
          f"{server_stats['batches']} batches, cache hit rate "
          f"{server_stats['result_cache']['hit_rate']:.0%}")
    print()
    print(json.dumps({"client": report.summary(),
                      "server": {key: server_stats[key]
                                 for key in ("qps", "mean_batch_size",
                                             "latency_ms", "result_cache")}},
                     indent=2))


if __name__ == "__main__":
    main()
