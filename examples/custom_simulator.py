#!/usr/bin/env python3
"""Tune a *custom* simulator with DiffTune, including categorical parameters.

The paper frames DiffTune as a generic algorithm for "learning the parameters
of programs" (Section III); llvm-mca is just the instantiation it evaluates.
This example shows what plugging in your own simulator looks like:

1. define a tiny in-order basic-block simulator with three ordinal parameters
   (IssueWidth, AluLatency, LoadLatency) and one *categorical* parameter
   (ForwardingPolicy: none / partial / full), plus a dependent-parameter
   constraint (AluLatency <= LoadLatency);
2. wrap it in a :class:`~repro.core.adapters.SimulatorAdapter` so the generic
   DiffTune machinery (sampling, surrogate, table optimization) drives it,
   and register it in the :data:`repro.api.SIMULATORS` registry — exactly
   what a third-party package would do through the ``repro.simulators``
   entry-point group — so the public API constructs it by key;
3. relax the categorical parameter with the one-hot machinery of
   :mod:`repro.core.categorical` and pick the best choice by enumerating the
   relaxation's extraction — the scheme Section VII sketches as future work;
4. learn the ordinal parameters from end-to-end timings of the Haswell
   hardware model and compare against the true configuration.

Runs in about a minute on a laptop CPU.
"""

import argparse
from typing import List, Optional, Sequence

import numpy as np

from repro.api import SIMULATORS, SimulatorPlugin
from repro.api.registries import PRESETS
from repro.bhive import build_dataset
from repro.core.adapters import SimulatorAdapter
from repro.core.categorical import CategoricalField, CategoricalTable
from repro.core.constraints import ConstraintSet, LessEqualConstraint
from repro.core.difftune import DiffTune
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays, ParameterField, ParameterSpec
from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE


# ----------------------------------------------------------------------
# 1. A tiny custom simulator
# ----------------------------------------------------------------------
class ToySimulator:
    """An in-order issue-width/latency model of basic-block execution.

    Parameters: IssueWidth (instructions per cycle), AluLatency and
    LoadLatency (dependency latencies), and a categorical ForwardingPolicy
    that scales how much of a producer's latency a dependent instruction
    actually waits for ("none" = all of it, "partial" = 60%, "full" = 30%).
    """

    FORWARDING_FACTOR = {"none": 1.0, "partial": 0.6, "full": 0.3}

    def __init__(self, issue_width: float, alu_latency: float, load_latency: float,
                 forwarding: str = "none") -> None:
        if forwarding not in self.FORWARDING_FACTOR:
            raise ValueError(f"unknown forwarding policy: {forwarding}")
        self.issue_width = max(1.0, float(issue_width))
        self.alu_latency = max(0.0, float(alu_latency))
        self.load_latency = max(0.0, float(load_latency))
        self.forwarding = forwarding

    def predict_timing(self, block: BasicBlock) -> float:
        throughput_bound = len(block) / self.issue_width
        factor = self.FORWARDING_FACTOR[self.forwarding]
        finish = [0.0] * len(block)
        producers = [[] for _ in range(len(block))]
        for producer, consumer, _register in block.register_dependencies():
            producers[consumer].append(producer)
        for index, instruction in enumerate(block):
            latency = self.load_latency if instruction.is_load else self.alu_latency
            ready = max((finish[p] for p in producers[index]), default=0.0)
            finish[index] = ready + latency * factor
        latency_bound = max(finish) / max(len(block), 1)
        return max(throughput_bound, latency_bound, 0.1)

    def predict_many(self, blocks: Sequence[BasicBlock]) -> np.ndarray:
        return np.array([self.predict_timing(block) for block in blocks])


# ----------------------------------------------------------------------
# 2. The adapter DiffTune programs against
# ----------------------------------------------------------------------
class ToyAdapter(SimulatorAdapter):
    """Binds the toy simulator's three ordinal parameters to DiffTune."""

    def __init__(self, forwarding: str = "none") -> None:
        self.opcode_table = DEFAULT_OPCODE_TABLE
        self.forwarding = forwarding
        self._spec = ParameterSpec(
            global_fields=[
                ParameterField("IssueWidth", 1, lower_bound=1, integer=True,
                               sample_low=1, sample_high=8),
                ParameterField("AluLatency", 1, lower_bound=0, integer=True,
                               sample_low=0, sample_high=5),
                ParameterField("LoadLatency", 1, lower_bound=0, integer=True,
                               sample_low=0, sample_high=8),
            ],
            per_instruction_fields=[
                # DiffTune requires at least one per-instruction field for its
                # surrogate input layout; a 1-wide unused field keeps the toy
                # simulator honest about the interface without affecting it.
                ParameterField("Unused", 1, lower_bound=0, integer=True,
                               sample_low=0, sample_high=1),
            ],
            num_opcodes=len(self.opcode_table))
        # Dependent-parameter constraint (Section VII): an ALU result can
        # never be slower than a load in this model.
        self.constraints = ConstraintSet([LessEqualConstraint("AluLatency", "LoadLatency")])

    def parameter_spec(self) -> ParameterSpec:
        return self._spec

    def default_arrays(self) -> ParameterArrays:
        return ParameterArrays(global_values=np.array([4.0, 1.0, 4.0]),
                               per_instruction_values=np.zeros((len(self.opcode_table), 1)))

    def _simulator(self, arrays: ParameterArrays) -> ToySimulator:
        issue, alu, load = arrays.global_values[:3]
        repaired = self.constraints.repair({"AluLatency": np.array([alu]),
                                            "LoadLatency": np.array([load])})
        return ToySimulator(issue_width=issue,
                            alu_latency=float(repaired["AluLatency"][0]),
                            load_latency=float(repaired["LoadLatency"][0]),
                            forwarding=self.forwarding)

    def predict_timings(self, arrays: ParameterArrays,
                        blocks: Sequence[BasicBlock]) -> np.ndarray:
        return self._simulator(arrays).predict_many(blocks)


def _toy_adapter_factory(uarch, *, forwarding: str = "none",
                         learn_fields: Optional[Sequence[str]] = None,
                         narrow_sampling: bool = True,
                         engine_workers: int = 0) -> ToyAdapter:
    """Registry factory: the toy model ignores the target microarchitecture.

    Unsupported capabilities are rejected loudly (the plugin also declares
    ``supports_partial_learning=False`` so spec validation catches this
    before any work happens) — never silently swallowed.
    """
    if learn_fields is not None:
        raise ValueError("the toy simulator learns its full parameter set; "
                         "learn_fields is not supported")
    return ToyAdapter(forwarding=forwarding)


def _toy_load_table(path: str, opcode_table) -> None:
    raise NotImplementedError("the toy simulator has no table serialization")


# Registering makes the toy simulator constructible by key everywhere the
# registries are consulted (Session, CLI, benchmark harness).  A separate
# package would do this from a `repro.simulators` entry point instead.
if "toy" not in SIMULATORS:
    SIMULATORS.register(
        "toy",
        SimulatorPlugin(name="toy",
                        summary="in-order issue-width/latency toy model "
                                "with a categorical forwarding policy",
                        adapter_factory=_toy_adapter_factory,
                        load_table=_toy_load_table,
                        supports_partial_learning=False),
        source=__name__)


# ----------------------------------------------------------------------
# 3 + 4. Learn the parameters, enumerate the categorical choice
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    print(f"Generating and measuring {arguments.blocks} Haswell blocks...")
    dataset = build_dataset("haswell", num_blocks=arguments.blocks, seed=arguments.seed)
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])

    forwarding_field = CategoricalField("ForwardingPolicy",
                                        choices=("none", "partial", "full"))
    categorical = CategoricalTable([forwarding_field])

    print("\nLearning ordinal parameters for each forwarding policy...")
    results = {}
    for choice in forwarding_field.choices:
        # Constructed through the registry, like any built-in simulator.
        adapter = SIMULATORS.get("toy").create_adapter(None, forwarding=choice)
        difftune = DiffTune(adapter, PRESETS.get("test")(arguments.seed))
        learned = difftune.learn(train_blocks, train_timings)
        test_error = mape_loss_value(
            adapter.predict_timings(learned.learned_arrays, test_blocks), test_timings)
        issue, alu, load = learned.learned_arrays.global_values[:3]
        results[choice] = (test_error, (issue, alu, load))
        print(f"  forwarding={choice:<8s} -> test error {test_error * 100:6.1f}%  "
              f"(IssueWidth={issue:.0f}, AluLatency={alu:.0f}, LoadLatency={load:.0f})")

    best_choice = min(results, key=lambda name: results[name][0])
    categorical.set_choices("ForwardingPolicy", [best_choice])
    extracted = categorical.extract()["ForwardingPolicy"][0]
    print(f"\nSelected categorical value (one-hot extraction): {extracted}")

    default_adapter = ToyAdapter(forwarding="none")
    default_error = mape_loss_value(
        default_adapter.predict_timings(default_adapter.default_arrays(), test_blocks),
        test_timings)
    best_error = results[best_choice][0]
    print(f"Hand-written default configuration error: {default_error * 100:.1f}%")
    print(f"Learned configuration error:              {best_error * 100:.1f}%")
    if best_error <= default_error:
        print("DiffTune matched or beat the hand-written defaults on the custom simulator.")
    else:
        print("DiffTune did not beat the defaults at this tiny scale; "
              "increase --blocks for a better fit.")


if __name__ == "__main__":
    main()
