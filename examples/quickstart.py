#!/usr/bin/env python3
"""Quickstart: learn llvm-mca's Haswell parameters from end-to-end timings.

This is the smallest end-to-end DiffTune run:

1. generate and measure a BHive-like dataset on the Haswell hardware model;
2. run DiffTune (simulated dataset -> surrogate -> parameter-table training);
3. compare the default, learned, and random parameter tables on the test set.

Runs in a couple of minutes on a laptop CPU.  Use ``--blocks`` / ``--fast``
to trade accuracy against runtime.
"""

import argparse
import time

import numpy as np

from repro.bhive import build_dataset
from repro.core import DiffTune, MCAAdapter, fast_config
from repro.eval.metrics import error_and_tau
from repro.eval.tables import format_results_table
from repro.targets import HASWELL


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=400,
                        help="number of basic blocks to generate and measure")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="shrink the simulated dataset for a quicker (rougher) run")
    arguments = parser.parse_args()

    print(f"Generating and measuring {arguments.blocks} Haswell basic blocks...")
    dataset = build_dataset("haswell", num_blocks=arguments.blocks, seed=arguments.seed)
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])
    print(f"  {len(train)} training blocks, {len(test)} test blocks")

    adapter = MCAAdapter(HASWELL, narrow_sampling=True)
    config = fast_config(seed=arguments.seed)
    if arguments.fast:
        config.simulated_dataset_size = 1000
        config.refinement_rounds = 1

    difftune = DiffTune(adapter, config, log=lambda message: print(f"  [difftune] {message}"))
    start = time.time()
    result = difftune.learn(train_blocks, train_timings)
    print(f"DiffTune finished in {time.time() - start:.0f}s")

    rows = {}
    default_predictions = adapter.predict_timings(adapter.default_arrays(), test_blocks)
    rows["Default (expert)"] = error_and_tau(default_predictions, test_timings)
    learned_predictions = adapter.predict_timings(result.learned_arrays, test_blocks)
    rows["DiffTune (learned)"] = error_and_tau(learned_predictions, test_timings)
    random_arrays = adapter.parameter_spec().sample(np.random.default_rng(arguments.seed))
    rows["Random table"] = error_and_tau(adapter.predict_timings(random_arrays, test_blocks),
                                         test_timings)
    print()
    print(format_results_table({"Haswell": rows}, title="Test-set results"))

    learned_table = adapter.table_from_arrays(result.learned_arrays)
    print("\nLearned global parameters: "
          f"DispatchWidth={learned_table.dispatch_width}, "
          f"ReorderBufferSize={learned_table.reorder_buffer_size}")
    for opcode in ("PUSH64r", "XOR32rr", "MOV64rm", "ADD64rr"):
        print(f"  WriteLatency[{opcode}]: default="
              f"{adapter.default_table().latency_of(opcode)}, "
              f"learned={learned_table.latency_of(opcode)}")


if __name__ == "__main__":
    main()
