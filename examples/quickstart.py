#!/usr/bin/env python3
"""Quickstart: learn llvm-mca's Haswell parameters from end-to-end timings.

This is the smallest end-to-end DiffTune run, written against the public
:mod:`repro.api` surface:

1. describe the run with a :class:`~repro.api.TuneSpec` (target, simulator,
   preset, and dataset size are all registry keys);
2. run it with :meth:`~repro.api.Session.tune` (simulated dataset ->
   surrogate -> parameter-table training);
3. compare the default, learned, and random parameter tables on the test set
   through :meth:`~repro.api.Session.predict`.

Runs in a couple of minutes on a laptop CPU.  Use ``--blocks`` / ``--fast``
to trade accuracy against runtime.
"""

import argparse
import time

import numpy as np

from repro.api import Session, TuneSpec
from repro.eval.metrics import error_and_tau
from repro.eval.tables import format_results_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=400,
                        help="number of basic blocks to generate and measure")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="shrink the simulated dataset for a quicker (rougher) run")
    arguments = parser.parse_args()

    session = Session.from_spec(
        TuneSpec(target="haswell", simulator="mca", preset="fast",
                 num_blocks=arguments.blocks, seed=arguments.seed),
        log=lambda message: print(f"  [difftune] {message}"))
    if arguments.fast:
        session.config.simulated_dataset_size = 1000
        session.config.refinement_rounds = 1

    print(f"Generating and measuring {arguments.blocks} Haswell basic blocks...")
    dataset = session.dataset()
    print(f"  {len(dataset.train_examples)} training blocks, "
          f"{len(dataset.test_examples)} test blocks")

    start = time.time()
    outcome = session.tune()
    print(f"DiffTune finished in {time.time() - start:.0f}s")

    test_blocks, test_timings = session.split("test")
    rows = {}
    rows["Default (expert)"] = error_and_tau(
        session.predict(test_blocks, session.default_table()), test_timings)
    rows["DiffTune (learned)"] = error_and_tau(
        session.predict(test_blocks, outcome.learned_table), test_timings)
    random_arrays = session.adapter.parameter_spec().sample(
        np.random.default_rng(arguments.seed))
    rows["Random table"] = error_and_tau(
        session.predict(test_blocks, session.table_from_arrays(random_arrays)),
        test_timings)
    print()
    print(format_results_table({"Haswell": rows}, title="Test-set results"))

    learned_table = outcome.learned_table
    print("\nLearned global parameters: "
          f"DispatchWidth={learned_table.dispatch_width}, "
          f"ReorderBufferSize={learned_table.reorder_buffer_size}")
    default_table = session.default_table()
    for opcode in ("PUSH64r", "XOR32rr", "MOV64rm", "ADD64rr"):
        print(f"  WriteLatency[{opcode}]: default="
              f"{default_table.latency_of(opcode)}, "
              f"learned={learned_table.latency_of(opcode)}")


if __name__ == "__main__":
    main()
