#!/usr/bin/env python3
"""Reproduce Figure 5: llvm-mca's sensitivity to its global parameters.

Runs the ``fig5_global_sensitivity`` campaign preset — a one-at-a-time grid
over DispatchWidth and ReorderBufferSize around the default Haswell table —
and prints the resulting error curves, showing the two behaviours the paper
highlights: a sharp minimum in DispatchWidth near the true machine width,
and near-total insensitivity to ReorderBufferSize above a modest threshold
(because llvm-mca assumes every access hits the L1 cache, the reorder
buffer is rarely the bottleneck).

The campaign machinery (:mod:`repro.campaigns`) batches every swept table
into one simulation-engine call, ranks the axes by error spread, and can
checkpoint/resume long sweeps; the same preset is runnable from the CLI::

    python -m repro.cli campaign run --preset fig5_global_sensitivity
"""

import argparse

from repro.campaigns import CAMPAIGNS, run_campaign
from repro.eval.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-test-blocks", type=int, default=80,
                        help="number of test blocks to evaluate each sweep point on")
    arguments = parser.parse_args()

    print(f"Generating and measuring {arguments.blocks} Haswell blocks, then "
          f"sweeping both global parameters in one campaign...")
    spec = CAMPAIGNS.get("fig5_global_sensitivity")(
        num_blocks=arguments.blocks, seed=arguments.seed,
        max_blocks=arguments.max_test_blocks)
    result = run_campaign(spec)
    curves = {entry["axis"]: entry["mean_error_by_value"]
              for entry in result.report["axis_sensitivity"]}

    def bar(error: float, scale: float = 60.0) -> str:
        return "#" * int(round(error * scale))

    for axis, title in (("DispatchWidth", "Figure 5 (top): sensitivity to "
                                          "DispatchWidth"),
                        ("ReorderBufferSize", "Figure 5 (bottom): sensitivity "
                                              "to ReorderBufferSize")):
        rows = [[value, f"{error * 100:.1f}%", bar(error)]
                for value, error in curves[axis]]
        print("\n" + format_table([axis, "Error", ""], rows, title=title))
    print("\nExpected shape (paper): a sharp minimum at DispatchWidth 4, and a flat "
          "curve for every ReorderBufferSize above ~70.")


if __name__ == "__main__":
    main()
