#!/usr/bin/env python3
"""Reproduce Figure 5: llvm-mca's sensitivity to its global parameters.

Sweeps DispatchWidth and ReorderBufferSize around the default Haswell table
and prints the resulting error curve on a generated dataset, showing the two
behaviours the paper highlights: a sharp minimum in DispatchWidth near the
true machine width, and near-total insensitivity to ReorderBufferSize above a
modest threshold (because llvm-mca assumes every access hits the L1 cache,
the reorder buffer is rarely the bottleneck).
"""

import argparse

from repro.bhive import build_dataset
from repro.eval.analysis import global_parameter_sensitivity
from repro.eval.tables import format_table
from repro.targets import HASWELL, build_default_mca_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-test-blocks", type=int, default=80,
                        help="number of test blocks to evaluate each sweep point on")
    arguments = parser.parse_args()

    print(f"Generating and measuring {arguments.blocks} Haswell blocks...")
    dataset = build_dataset("haswell", num_blocks=arguments.blocks, seed=arguments.seed)
    table = build_default_mca_table(HASWELL)

    dispatch_sweep = global_parameter_sensitivity(
        table, dataset, "DispatchWidth", list(range(1, 11)),
        max_blocks=arguments.max_test_blocks)
    rob_sweep = global_parameter_sensitivity(
        table, dataset, "ReorderBufferSize", [10, 25, 50, 75, 100, 150, 200, 250, 300, 400],
        max_blocks=arguments.max_test_blocks)

    def bar(error: float, scale: float = 60.0) -> str:
        return "#" * int(round(error * scale))

    rows = [[value, f"{error * 100:.1f}%", bar(error)] for value, error in dispatch_sweep]
    print("\n" + format_table(["DispatchWidth", "Error", ""], rows,
                              title="Figure 5 (top): sensitivity to DispatchWidth"))
    rows = [[value, f"{error * 100:.1f}%", bar(error)] for value, error in rob_sweep]
    print("\n" + format_table(["ReorderBufferSize", "Error", ""], rows,
                              title="Figure 5 (bottom): sensitivity to ReorderBufferSize"))
    print("\nExpected shape (paper): a sharp minimum at DispatchWidth 4, and a flat "
          "curve for every ReorderBufferSize above ~70.")


if __name__ == "__main__":
    main()
