"""The seven component registries backing the public API.

Components register themselves when their defining module is imported:

* :mod:`repro.targets` registers the four microarchitectures
  (``haswell``, ``ivybridge``, ``skylake``, ``zen2`` — plus their
  conventional aliases);
* :mod:`repro.core.adapters` registers the two simulator plugins
  (``mca``, ``llvm_sim``);
* :mod:`repro.core.surrogate` registers the surrogate variants
  (``ithemal``, ``pooled``, ``analytical``);
* :mod:`repro.core.config` registers the configuration presets
  (``fast``, ``paper``, ``test``);
* :mod:`repro.baselines` registers the seven baselines of Table IV;
* :mod:`repro.campaigns.strategies` registers the campaign sampling
  strategies (``grid``, ``random``, ``adaptive``);
* :mod:`repro.distributed.executors` registers the matrix-campaign cell
  executors (``inline``, ``pool``, ``remote``).

To keep ``import repro.api`` cheap, none of those modules is imported here;
each registry lazily runs :func:`_bootstrap_components` on its first lookup.
Third-party packages extend any registry through the entry-point groups
named below (``repro.targets`` and friends) without touching this
repository — see :meth:`repro.api.registry.Registry.load_entry_points`.
"""

from __future__ import annotations

from typing import Dict

from repro.api.registry import Registry, RegistryError


def _bootstrap_components() -> None:
    """Import every in-tree module that self-registers components."""
    import repro.baselines  # noqa: F401
    import repro.core.adapters  # noqa: F401
    import repro.core.config  # noqa: F401
    import repro.core.surrogate  # noqa: F401
    import repro.targets  # noqa: F401


def _bootstrap_strategies() -> None:
    """Import the module that self-registers the built-in strategies."""
    import repro.campaigns.strategies  # noqa: F401


def _bootstrap_executors() -> None:
    """Import the module that self-registers the matrix cell executors."""
    import repro.distributed.executors  # noqa: F401


def _normalize_target(key: str) -> str:
    """Targets accept spacing/punctuation variants: ``"Ivy Bridge"`` == ``"ivybridge"``."""
    return key.strip().lower().replace(" ", "").replace("_", "").replace("-", "")


TARGETS = Registry("target", entry_point_group="repro.targets",
                   bootstrap=_bootstrap_components, normalize=_normalize_target)
SIMULATORS = Registry("simulator", entry_point_group="repro.simulators",
                      bootstrap=_bootstrap_components)
SURROGATES = Registry("surrogate", entry_point_group="repro.surrogates",
                      bootstrap=_bootstrap_components)
BASELINES = Registry("baseline", entry_point_group="repro.baselines",
                     bootstrap=_bootstrap_components)
PRESETS = Registry("preset", entry_point_group="repro.presets",
                   bootstrap=_bootstrap_components)
STRATEGIES = Registry("strategy", entry_point_group="repro.strategies",
                      bootstrap=_bootstrap_strategies)
EXECUTORS = Registry("executor", entry_point_group="repro.executors",
                     bootstrap=_bootstrap_executors)


def same_target(first: str, second: str) -> bool:
    """Whether two target names refer to the same uarch.

    Registered names resolve through :data:`TARGETS` so display names match
    their registry keys (``"Zen 2"`` == ``"zen2"``); unregistered names fall
    back to punctuation-insensitive string comparison.
    """
    def canonical(name: str) -> str:
        try:
            return TARGETS.resolve(name)
        except RegistryError:
            return _normalize_target(name)

    return canonical(first) == canonical(second)


def registries() -> Dict[str, Registry]:
    """Every component registry, keyed by plural kind name."""
    return {
        "targets": TARGETS,
        "simulators": SIMULATORS,
        "surrogates": SURROGATES,
        "baselines": BASELINES,
        "presets": PRESETS,
        "strategies": STRATEGIES,
        "executors": EXECUTORS,
    }
