"""Plugin record types stored in the :mod:`repro.api` registries.

Targets, surrogates, and presets register their natural objects directly (a
:class:`~repro.targets.uarch.UarchSpec`, a surrogate class, a config
factory).  Simulators and baselines need a little more structure — a
simulator is an adapter factory *plus* the table serialization and optional
timeline/sweep capabilities the CLI exposes; a baseline is either a
parameter-table *search* or a standalone timing *predictor* — so they
register the small frozen records defined here.

Like :mod:`repro.api.registry`, this module imports nothing from the rest of
the package: the callables are supplied by the registering modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence


@dataclass(frozen=True)
class SimulatorPlugin:
    """Everything the API needs to drive one parametric simulator.

    Attributes:
        name: Canonical registry key (``"mca"``, ``"llvm_sim"``).
        summary: One-line description for listings.
        adapter_factory: ``(uarch, *, opcode_table=None, narrow_sampling=...,
            learn_fields=..., engine_workers=...) -> SimulatorAdapter``.
            Factories for simulators without a capability (e.g. partial
            learning) raise ``ValueError`` naming the unsupported argument.
        load_table: ``(path, opcode_table) -> native parameter table`` for
            the simulator's JSON serialization.
        engine_factory: Optional ``(num_workers) -> SimulationEngine`` for a
            standalone engine (the CLI sweep path).
        timeline_factory: Optional ``(table) -> view`` where the view has a
            ``summary(block) -> str`` method; ``None`` when the simulator has
            no per-cycle timeline report.
        sweep_fields: Global parameter fields a one-dimensional sweep can
            vary: ``field name -> (table, value) -> None`` setter.
        opcode_sweep_fields: Per-opcode parameter fields a campaign axis can
            vary: ``field name -> (table, opcode_index, value) -> None``
            setter.  A setter that additionally needs a port index declares
            ``accepts_port = True`` and ``num_ports`` on itself and is called
            as ``(table, opcode_index, port, value)``.
        supports_partial_learning: Whether the adapter accepts
            ``learn_fields`` (learning a subset of the parameter set);
            validated up front by :class:`~repro.api.specs.TuneSpec`.
        supports_megabatch: Whether the simulator provides a vectorized
            megabatch timing kernel (``predict_timing_batch``) that the
            engine can route cache misses through.  Simulators without one
            still work — the engine falls back to per-block
            ``predict_timing`` — but cannot honour ``engine_megabatch``
            beyond that fallback.
    """

    name: str
    summary: str
    adapter_factory: Callable[..., Any]
    load_table: Callable[[str, Any], Any]
    engine_factory: Optional[Callable[..., Any]] = None
    timeline_factory: Optional[Callable[[Any], Any]] = None
    sweep_fields: Mapping[str, Callable[[Any, int], None]] = field(default_factory=dict)
    opcode_sweep_fields: Mapping[str, Callable[..., None]] = field(default_factory=dict)
    supports_partial_learning: bool = True
    supports_megabatch: bool = False

    def create_adapter(self, uarch: Any, **kwargs: Any) -> Any:
        """Build the simulator's adapter for ``uarch``."""
        return self.adapter_factory(uarch, **kwargs)


@dataclass(frozen=True)
class BaselinePlugin:
    """One baseline from the paper's comparison grid (Table IV).

    Two kinds exist:

    * ``kind="search"`` — black-box parameter-table search; ``run`` has the
      uniform signature ``(adapter, blocks, timings, *, budget, seed) ->
      ParameterArrays``.
    * ``kind="predictor"`` — a standalone timing predictor (not a tuner);
      ``build`` constructs it (signature is plugin-specific, documented in
      ``summary``), and ``run`` is ``None``.
    """

    name: str
    summary: str
    kind: str  # "search" | "predictor"
    run: Optional[Callable[..., Any]] = None
    build: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("search", "predictor"):
            raise ValueError(f"baseline kind must be 'search' or 'predictor', "
                             f"got {self.kind!r}")
        if self.kind == "search" and self.run is None:
            raise ValueError(f"search baseline {self.name!r} must define run")
        if self.kind == "predictor" and self.build is None:
            raise ValueError(f"predictor baseline {self.name!r} must define build")


def search_baseline_names(registry: Any) -> Sequence[str]:
    """Canonical keys of the ``kind="search"`` baselines in ``registry``."""
    return [name for name, plugin in registry.items() if plugin.kind == "search"]
