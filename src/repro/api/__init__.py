"""repro.api — the public, registry-driven API of the DiffTune reproduction.

Three layers:

1. **Registries** (:data:`TARGETS`, :data:`SIMULATORS`, :data:`SURROGATES`,
   :data:`BASELINES`, :data:`PRESETS`, :data:`STRATEGIES`,
   :data:`EXECUTORS`; :func:`registries`) — string-keyed component catalogs
   with decorator registration, did-you-mean diagnostics,
   and entry-point plugin discovery.  Everything the system can construct is
   listed here, and third-party packages can add entries without touching
   this repository.
2. **Specs** (:class:`TuneSpec`, :class:`EvaluateSpec`, :class:`PredictSpec`,
   :class:`CampaignSpec`) — typed, JSON-round-trippable descriptions of what
   to run, with validation errors that name the bad field.
3. **Session** (:class:`Session`) — the facade binding a spec to live
   components: ``.tune()`` (checkpointable DiffTune runs), ``.evaluate()``,
   ``.predict()`` (batched through the shared simulation engine), and
   ``.run_campaign()`` (declarative sweep campaigns, see
   :mod:`repro.campaigns`).

Quickstart::

    from repro.api import Session, TuneSpec

    session = Session.from_spec(TuneSpec(target="haswell", num_blocks=400))
    outcome = session.tune()
    print(outcome.test_error, outcome.default_test_error)
    outcome.learned_table.save_json("learned.json")

Heavy modules load lazily: ``import repro.api`` pulls in only the registry
machinery, and component modules are imported on first registry lookup.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List

from repro.api.registry import (DuplicateKeyError, Registry, RegistryEntry,
                                RegistryError, UnknownKeyError)
from repro.api.registries import (BASELINES, EXECUTORS, PRESETS, SIMULATORS,
                                  STRATEGIES, SURROGATES, TARGETS, registries)
from repro.api.plugins import BaselinePlugin, SimulatorPlugin

#: name -> defining module for the lazily imported part of the surface.
_LAZY_EXPORTS = {
    "Session": "repro.api.session",
    "SessionTuneResult": "repro.api.session",
    "CapabilityError": "repro.api.session",
    "TuneSpec": "repro.api.specs",
    "EvaluateSpec": "repro.api.specs",
    "PredictSpec": "repro.api.specs",
    "BundleSpec": "repro.api.specs",
    "ServeSpec": "repro.api.specs",
    "CorpusSpec": "repro.api.specs",
    "SpecValidationError": "repro.api.specs",
    "BundleError": "repro.api.bundle",
    "BundleManifest": "repro.api.bundle",
    "export_bundle": "repro.api.bundle",
    "load_bundle": "repro.api.bundle",
    "inspect_bundle": "repro.api.bundle",
    "CampaignSpec": "repro.campaigns.spec",
    "AxisSpec": "repro.campaigns.spec",
    "CampaignRunner": "repro.campaigns.runner",
    "CampaignResult": "repro.campaigns.runner",
    "run_campaign": "repro.campaigns.runner",
    "CAMPAIGNS": "repro.campaigns.presets",
    "MatrixCampaignSpec": "repro.distributed.spec",
    "MatrixResult": "repro.distributed.scheduler",
    "run_matrix": "repro.distributed.scheduler",
}

#: Spec class name -> defining module; drives ``describe()["specs"]``.
_SPEC_EXPORTS = ("TuneSpec", "EvaluateSpec", "PredictSpec", "BundleSpec",
                 "ServeSpec", "CorpusSpec", "CampaignSpec",
                 "MatrixCampaignSpec")

__all__ = [
    # registry machinery
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "DuplicateKeyError",
    "UnknownKeyError",
    # registry instances
    "TARGETS",
    "SIMULATORS",
    "SURROGATES",
    "BASELINES",
    "PRESETS",
    "STRATEGIES",
    "EXECUTORS",
    "registries",
    # plugin record types
    "SimulatorPlugin",
    "BaselinePlugin",
    # specs
    "TuneSpec",
    "EvaluateSpec",
    "PredictSpec",
    "BundleSpec",
    "ServeSpec",
    "CorpusSpec",
    "CampaignSpec",
    "MatrixCampaignSpec",
    "AxisSpec",
    "SpecValidationError",
    # session facade
    "Session",
    "SessionTuneResult",
    "CapabilityError",
    # sweep campaigns
    "CampaignRunner",
    "CampaignResult",
    "run_campaign",
    "CAMPAIGNS",
    # distributed matrix campaigns
    "MatrixResult",
    "run_matrix",
    # deployment bundles
    "BundleError",
    "BundleManifest",
    "export_bundle",
    "load_bundle",
    "inspect_bundle",
    # introspection
    "describe",
]


def describe() -> Dict[str, Any]:
    """Plain-data snapshot of the public surface: version, registries, specs.

    This is the API-surface smoke hook CI runs against the installed wheel::

        python -c "import repro.api, json; print(json.dumps(repro.api.describe()))"
    """
    import dataclasses

    import repro

    return {
        "version": repro.__version__,
        "registries": {
            kind: registry.describe()
            for kind, registry in registries().items()
        },
        "specs": {
            name: [spec_field.name
                   for spec_field in dataclasses.fields(__getattr__(name))]
            for name in _SPEC_EXPORTS
        },
    }


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
