"""Deployment bundles: a tuned model frozen into one portable archive.

The whole value of a learned parameter table is cheap repeated prediction,
so the artifact that leaves a tuning run should not require the tuning
stack to use.  A *deployment bundle* is a single zip archive holding

* ``table_arrays.npz`` — the learned parameter table in optimization layout
  (:class:`~repro.core.parameters.ParameterArrays`), written via
  :mod:`repro.autodiff.serialization`;
* ``surrogate_state.npz`` — optionally, the trained surrogate's
  ``state_dict`` (same serialization);
* ``manifest.json`` — schema version, target/simulator identity, the
  :class:`~repro.api.specs.BundleSpec` it was exported from, the surrogate
  config needed to rebuild the weights, and a content digest for the table
  and for every archive member.

Every digest is verified on load: a corrupted or hand-edited bundle fails
with a :class:`BundleError` naming the offending field, and a bundle written
by a *newer* schema is rejected rather than misread.  Consumers:

* :meth:`repro.api.Session.from_bundle` — a ready-to-predict session;
* :class:`repro.serving.InferenceServer` — the long-running serving layer;
* ``repro bundle {export,inspect}`` — the CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Bump when the archive layout changes incompatibly.  Readers accept any
#: version <= their own and reject newer ones with a clear error.
BUNDLE_SCHEMA_VERSION = 1

#: The ``kind`` stamp distinguishing our archives from arbitrary zips.
BUNDLE_KIND = "repro-deployment-bundle"

MANIFEST_MEMBER = "manifest.json"
TABLE_MEMBER = "table_arrays.npz"
SURROGATE_MEMBER = "surrogate_state.npz"


class BundleError(ValueError):
    """A bundle failed validation; ``field`` names the offending part."""

    def __init__(self, field_name: str, message: str) -> None:
        super().__init__(f"{field_name}: {message}")
        self.field = field_name


def _member_digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass
class BundleManifest:
    """The typed contents of a bundle's ``manifest.json``."""

    target: str
    simulator: str
    table_digest: str
    schema_version: int = BUNDLE_SCHEMA_VERSION
    kind: str = BUNDLE_KIND
    #: ``repro.__version__`` of the exporting tool (informational).
    tool_version: str = ""
    #: The validated BundleSpec payload this bundle was exported from.
    spec: Dict[str, Any] = field(default_factory=dict)
    #: SurrogateConfig fields needed to rebuild the embedded weights
    #: (``None`` when the bundle ships no surrogate member).
    surrogate: Optional[Dict[str, Any]] = None
    #: member name -> blake2b digest of the member's bytes.
    contents: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BundleManifest":
        if not isinstance(payload, dict):
            raise BundleError("manifest", f"expected a JSON object, "
                                          f"got {type(payload).__name__}")
        known = {manifest_field.name for manifest_field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise BundleError(unknown[0], "unknown manifest field")
        for required in ("target", "simulator", "table_digest"):
            if not isinstance(payload.get(required), str) or not payload.get(required):
                raise BundleError(required, "missing or not a string in manifest")
        manifest = cls(**payload)
        if manifest.kind != BUNDLE_KIND:
            raise BundleError("kind", f"not a deployment bundle: expected "
                                      f"{BUNDLE_KIND!r}, got {manifest.kind!r}")
        if not isinstance(manifest.schema_version, int) \
                or isinstance(manifest.schema_version, bool):
            raise BundleError("schema_version",
                              f"expected an int, got {manifest.schema_version!r}")
        if manifest.schema_version > BUNDLE_SCHEMA_VERSION:
            raise BundleError(
                "schema_version",
                f"bundle uses schema v{manifest.schema_version} but this "
                f"installation reads up to v{BUNDLE_SCHEMA_VERSION}; upgrade "
                f"the difftune-repro package to load it")
        if manifest.schema_version < 1:
            raise BundleError("schema_version",
                              f"must be >= 1, got {manifest.schema_version}")
        if TABLE_MEMBER not in manifest.contents:
            raise BundleError("contents", f"manifest lists no {TABLE_MEMBER!r} member")
        return manifest


@dataclass
class LoadedBundle:
    """A verified bundle: manifest plus deserialized payloads."""

    manifest: BundleManifest
    #: The learned table in optimization layout (ParameterArrays).
    arrays: Any
    #: Raw ``state_dict`` arrays of the surrogate member (``None`` if absent).
    surrogate_state: Optional[Dict[str, Any]] = None


def _table_digest_of(session: Any, table: Any) -> str:
    """Simulator-agnostic content digest of a native table.

    Computed over the optimization-layout arrays so one digest function
    covers every registered simulator; the serving cache shards and the
    bundle manifest both key on it.
    """
    from repro.engine.binding import parameter_arrays_digest

    return parameter_arrays_digest(session.adapter.arrays_from_table(table))


def export_bundle(session: Any, path: str, table: Optional[Any] = None,
                  surrogate: Optional[Any] = None) -> BundleManifest:
    """Freeze ``session``'s table (and optionally surrogate) into ``path``.

    ``table`` defaults to the session's resolved table (its ``table_path``,
    a bundle-bound table, or the expert default); ``surrogate`` defaults to
    the surrogate trained by the session's last :meth:`~Session.tune` call,
    when there was one.  Returns the written manifest.
    """
    import repro
    from repro.api.specs import BundleSpec
    from repro.autodiff.serialization import save_parameter_arrays, save_state_dict

    if table is None:
        table = session.load_table_or_default(
            getattr(session.spec, "table_path", None))
    elif isinstance(table, str):
        table = session.load_table(table)
    if surrogate is None:
        surrogate = getattr(session, "_last_surrogate", None)

    arrays = session.adapter.arrays_from_table(table)
    spec = BundleSpec(
        target=session.target_name,
        simulator=session.plugin.name,
        table_path=getattr(session.spec, "table_path", None),
        surrogate=None if surrogate is None else surrogate.config.kind,
        engine_workers=getattr(session.spec, "engine_workers", 0),
        engine_megabatch=getattr(session.spec, "engine_megabatch", True))
    spec.validate()

    members: Dict[str, bytes] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bundle-") as scratch:
        table_path = os.path.join(scratch, TABLE_MEMBER)
        save_parameter_arrays(arrays, table_path)
        with open(table_path, "rb") as handle:
            members[TABLE_MEMBER] = handle.read()
        surrogate_payload: Optional[Dict[str, Any]] = None
        if surrogate is not None:
            surrogate_path = os.path.join(scratch, SURROGATE_MEMBER)
            save_state_dict(surrogate, surrogate_path)
            with open(surrogate_path, "rb") as handle:
                members[SURROGATE_MEMBER] = handle.read()
            surrogate_payload = dataclasses.asdict(surrogate.config)

    manifest = BundleManifest(
        target=session.target_name,
        simulator=session.plugin.name,
        table_digest=_table_digest_of(session, table),
        tool_version=repro.__version__,
        spec=spec.to_dict(),
        surrogate=surrogate_payload,
        contents={name: _member_digest(payload)
                  for name, payload in members.items()})

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        for name, payload in members.items():
            archive.writestr(name, payload)
        archive.writestr(MANIFEST_MEMBER,
                         json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
    return manifest


def read_manifest(path: str) -> BundleManifest:
    """Parse and schema-check a bundle's manifest without loading payloads."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    if not zipfile.is_zipfile(path):
        raise BundleError("archive", f"{path} is not a zip archive")
    with zipfile.ZipFile(path) as archive:
        if MANIFEST_MEMBER not in archive.namelist():
            raise BundleError("manifest", f"{path} has no {MANIFEST_MEMBER}")
        try:
            payload = json.loads(archive.read(MANIFEST_MEMBER))
        except json.JSONDecodeError as error:
            raise BundleError("manifest", f"malformed JSON: {error}") from error
    return BundleManifest.from_dict(payload)


def load_bundle(path: str) -> LoadedBundle:
    """Open, digest-verify, and deserialize a bundle.

    Raises :class:`BundleError` naming the field when any member's bytes do
    not match the manifest digest, when the table content does not match
    ``table_digest``, or when the schema version is unsupported.
    """
    from repro.autodiff.serialization import load_arrays, load_parameter_arrays
    from repro.engine.binding import parameter_arrays_digest

    manifest = read_manifest(path)
    with zipfile.ZipFile(path) as archive:
        names = set(archive.namelist())
        members: Dict[str, bytes] = {}
        for name, expected in manifest.contents.items():
            if name not in names:
                raise BundleError(f"contents[{name}]",
                                  "listed in the manifest but missing from the archive")
            payload = archive.read(name)
            actual = _member_digest(payload)
            if actual != expected:
                raise BundleError(
                    f"contents[{name}]",
                    f"digest mismatch: manifest says {expected}, archive "
                    f"member hashes to {actual} — the bundle is corrupted "
                    f"or was modified after export")
            members[name] = payload

    with tempfile.TemporaryDirectory(prefix="repro-bundle-") as scratch:
        table_path = os.path.join(scratch, TABLE_MEMBER)
        with open(table_path, "wb") as handle:
            handle.write(members[TABLE_MEMBER])
        arrays = load_parameter_arrays(table_path)
        surrogate_state: Optional[Dict[str, Any]] = None
        if SURROGATE_MEMBER in members:
            surrogate_path = os.path.join(scratch, SURROGATE_MEMBER)
            with open(surrogate_path, "wb") as handle:
                handle.write(members[SURROGATE_MEMBER])
            surrogate_state = load_arrays(surrogate_path)

    actual_digest = parameter_arrays_digest(arrays)
    if actual_digest != manifest.table_digest:
        raise BundleError(
            "table_digest",
            f"manifest says {manifest.table_digest}, loaded table arrays "
            f"hash to {actual_digest} — table and manifest disagree")
    return LoadedBundle(manifest=manifest, arrays=arrays,
                        surrogate_state=surrogate_state)


def inspect_bundle(path: str) -> Dict[str, Any]:
    """Plain-data summary for ``repro bundle inspect`` (verifies digests)."""
    bundle = load_bundle(path)
    manifest = bundle.manifest
    return {
        "path": os.path.abspath(path),
        "kind": manifest.kind,
        "schema_version": manifest.schema_version,
        "tool_version": manifest.tool_version,
        "target": manifest.target,
        "simulator": manifest.simulator,
        "table_digest": manifest.table_digest,
        "has_surrogate": bundle.surrogate_state is not None,
        "surrogate": manifest.surrogate,
        "members": sorted(manifest.contents),
        "verified": True,
        "parameters": {
            "global_values": int(bundle.arrays.global_values.size),
            "per_instruction_values": list(bundle.arrays.per_instruction_values.shape),
        },
        "spec": manifest.spec,
    }
