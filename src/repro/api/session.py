"""The :class:`Session` facade: one construction path for the whole system.

A session binds a validated spec (:mod:`repro.api.specs`) to live components
resolved through the registries (:mod:`repro.api.registries`) and exposes
the three verbs the CLI, the pipeline, the benchmark harness, and user code
all need:

* :meth:`Session.tune` — an end-to-end DiffTune run (wrapping the
  checkpointable :class:`~repro.pipeline.pipeline.TuningPipeline`, with
  ``checkpoint_dir``/``resume``/``stop_after`` from the spec);
* :meth:`Session.evaluate` — error / Kendall's tau of a parameter table on a
  dataset split;
* :meth:`Session.predict` — batched ``tables x blocks`` timings through the
  shared :class:`~repro.engine.engine.SimulationEngine`, whose compile and
  result caches persist across calls on the same session.

Everything heavier than the spec is constructed lazily and memoized, so a
session is cheap to create and cheap to interrogate.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.plugins import SimulatorPlugin
from repro.api.registries import PRESETS, SIMULATORS, SURROGATES, TARGETS
from repro.api.specs import (BundleSpec, CorpusSpec, EvaluateSpec, PredictSpec,
                             SpecValidationError, TuneSpec)
from repro.campaigns.spec import CampaignSpec

#: Specs a session can be created from.
AnySpec = Union[TuneSpec, EvaluateSpec, PredictSpec, BundleSpec, CorpusSpec,
                CampaignSpec]


class CapabilityError(RuntimeError):
    """A simulator plugin lacks the capability a call requires."""


@dataclass
class SessionTuneResult:
    """Outcome of one :meth:`Session.tune` call (plain data).

    ``completed=False`` means the run stopped at ``stopped_after`` (the
    spec's ``stop_after`` stage) with its progress checkpointed; re-running
    with ``resume=True`` finishes it.
    """

    completed: bool
    learned_arrays: Optional[Any] = None
    learned_table: Optional[Any] = None
    train_error: Optional[float] = None
    test_error: Optional[float] = None
    default_test_error: Optional[float] = None
    elapsed_seconds: float = 0.0
    resumed_stages: List[str] = field(default_factory=list)
    stopped_after: Optional[str] = None
    #: The underlying :class:`~repro.core.difftune.DiffTuneResult`.
    raw: Optional[Any] = None


class Session:
    """Registry-resolved components behind one typed entry point.

    Create sessions with :meth:`from_spec`; the constructor takes an
    already-validated spec.  All component construction flows through the
    registries, so a third-party target or simulator registered via entry
    points works here, in the CLI, and in the benchmark harness alike.
    """

    def __init__(self, spec: AnySpec,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if not isinstance(spec, (TuneSpec, EvaluateSpec, PredictSpec, BundleSpec,
                                 CorpusSpec, CampaignSpec)):
            raise TypeError(f"expected TuneSpec/EvaluateSpec/PredictSpec/"
                            f"BundleSpec/CorpusSpec/CampaignSpec, "
                            f"got {type(spec).__name__}")
        spec.validate()
        self.spec = spec
        self.log = log or (lambda message: None)
        self._dataset: Any = None
        self._corpus: Any = None
        self._featurization_store: Any = None
        self._adapter: Any = None
        self._config: Any = None
        #: path -> parsed table, so repeated predict/evaluate/timeline calls
        #: on one session do not re-read the table JSON from disk.
        self._table_cache: Dict[str, Any] = {}
        #: Table pinned by :meth:`from_bundle`; preferred over the default
        #: table whenever no explicit table/path is given.
        self._bound_table: Any = None
        #: The manifest of the bundle this session was loaded from, if any.
        self.bundle_manifest: Any = None
        self._bundle_surrogate_state: Any = None
        #: Surrogate trained by the most recent :meth:`tune` on this session
        #: (what :meth:`export_bundle` ships by default).
        self._last_surrogate: Any = None
        self._predict_calls = 0
        self._predicted_blocks = 0
        self._predicted_pairs = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Optional[Union[AnySpec, Dict[str, Any]]] = None,
                  log: Optional[Callable[[str], None]] = None,
                  **overrides: Any) -> "Session":
        """Build a session from a spec, a plain dict, or keyword arguments.

        ``overrides`` update the spec's fields (handy for CLI plumbing)::

            Session.from_spec(TuneSpec(), target="skylake", seed=3)
            Session.from_spec({"target": "zen2", "num_blocks": 100})
            Session.from_spec(simulator="llvm_sim")   # defaults to TuneSpec
        """
        if spec is None:
            spec = TuneSpec.from_dict(dict(overrides))
        elif isinstance(spec, dict):
            payload = dict(spec)
            payload.update(overrides)
            spec = TuneSpec.from_dict(payload)
        elif isinstance(spec, (TuneSpec, EvaluateSpec, PredictSpec, BundleSpec,
                               CorpusSpec, CampaignSpec)):
            if overrides:
                known = {f.name for f in dataclasses.fields(spec)}
                for key in overrides:
                    if key not in known:
                        raise SpecValidationError(
                            key, f"unknown field for {type(spec).__name__}")
                spec = dataclasses.replace(spec, **overrides)
            spec.validate()
        else:
            raise TypeError(f"expected a spec, dict, or keyword arguments; "
                            f"got {type(spec).__name__}")
        return cls(spec, log=log)

    @classmethod
    def from_bundle(cls, path: str,
                    log: Optional[Callable[[str], None]] = None,
                    **overrides: Any) -> "Session":
        """A ready-to-predict session from a deployment bundle.

        Opens the archive written by :meth:`export_bundle`, verifies every
        manifest digest and the schema version, and binds the bundled table
        as the session's default — ``session.predict(blocks)`` then serves
        the learned table with no further setup.  ``overrides`` update the
        engine knobs (``engine_workers``, ``engine_megabatch``).
        """
        from repro.api.bundle import load_bundle

        bundle = load_bundle(path)
        payload: Dict[str, Any] = {
            "target": bundle.manifest.target,
            "simulator": bundle.manifest.simulator,
            "engine_workers": bundle.manifest.spec.get("engine_workers", 0),
            "engine_megabatch": bundle.manifest.spec.get("engine_megabatch", True),
        }
        payload.update(overrides)
        session = cls(PredictSpec.from_dict(payload), log=log)
        session._bound_table = session.adapter.table_from_arrays(bundle.arrays)
        session.bundle_manifest = bundle.manifest
        session._bundle_surrogate_state = bundle.surrogate_state
        return session

    # ------------------------------------------------------------------
    # Resolved components (lazy, memoized)
    # ------------------------------------------------------------------
    def _spec_get(self, name: str, default: Any = None) -> Any:
        return getattr(self.spec, name, default)

    @property
    def target_name(self) -> str:
        """Canonical target key (derived from the dataset file when given)."""
        if self._spec_get("dataset_path") is not None:
            return TARGETS.resolve(self.dataset().uarch_name)
        return TARGETS.resolve(self.spec.target)

    @property
    def uarch(self) -> Any:
        """The resolved :class:`~repro.targets.uarch.UarchSpec`."""
        return TARGETS.get(self.target_name)

    @property
    def plugin(self) -> SimulatorPlugin:
        """The resolved :class:`~repro.api.plugins.SimulatorPlugin`."""
        return SIMULATORS.get(self.spec.simulator)

    @property
    def adapter(self) -> Any:
        """The simulator adapter (shared engine caches live here)."""
        if self._adapter is None:
            kwargs: Dict[str, Any] = {
                "engine_workers": self._spec_get("engine_workers", 0),
                "engine_megabatch": self._spec_get("engine_megabatch", True),
            }
            narrow = self._spec_get("narrow_sampling")
            if narrow is not None:
                kwargs["narrow_sampling"] = narrow
            learn_fields = self._spec_get("learn_fields")
            if learn_fields is not None:
                kwargs["learn_fields"] = list(learn_fields)
            self._adapter = self.plugin.create_adapter(self.uarch, **kwargs)
        return self._adapter

    @property
    def config(self) -> Any:
        """The :class:`~repro.core.difftune.DiffTuneConfig` from the preset."""
        if self._config is None:
            preset = PRESETS.get(self._spec_get("preset", "fast"))
            config = preset(self._spec_get("seed", 0))
            surrogate = self._spec_get("surrogate")
            if surrogate is not None:
                config.surrogate.kind = SURROGATES.resolve(surrogate)
            config.surrogate_training.batched = self._spec_get("batch_training", True)
            config.table_optimization.batched = \
                self._spec_get("batch_table_optimization", True)
            self._config = config
        return self._config

    def dataset(self) -> Any:
        """The measured dataset: loaded from ``dataset_path`` or generated."""
        if self._dataset is None:
            from repro.bhive import BasicBlockDataset, build_dataset

            path = self._spec_get("dataset_path")
            if path is not None:
                self._dataset = BasicBlockDataset.load_json(path)
            else:
                self._dataset = build_dataset(
                    self.target_name, num_blocks=self._spec_get("num_blocks", 300),
                    seed=self._spec_get("seed", 0))
        return self._dataset

    # ------------------------------------------------------------------
    # Sharded corpora
    # ------------------------------------------------------------------
    def _corpus_directory(self) -> Optional[str]:
        if isinstance(self.spec, CorpusSpec):
            return self.spec.directory
        return self._spec_get("corpus_path")

    def corpus(self) -> Any:
        """The session's sharded corpus, opened lazily (``None`` without one).

        Available on :class:`~repro.api.specs.CorpusSpec` sessions and on
        tune/evaluate specs carrying ``corpus_path``.  The on-disk uarch must
        match the spec's target.
        """
        if self._corpus is None:
            directory = self._corpus_directory()
            if directory is None:
                return None
            from repro.corpus import ShardedCorpus

            corpus = ShardedCorpus(directory)
            from repro.api.registries import same_target

            if not same_target(corpus.uarch_name, self.target_name):
                raise SpecValidationError(
                    "corpus_path", f"corpus at {directory!r} was generated for "
                                   f"{corpus.uarch_name!r}, not "
                                   f"{self.target_name!r}")
            self._corpus = corpus
        return self._corpus

    def build_corpus(self, progress: Optional[Callable] = None) -> Any:
        """Build (or resume, or just open) the spec's corpus on disk.

        Requires a :class:`~repro.api.specs.CorpusSpec`.  A complete corpus
        with matching parameters is opened as-is; an interrupted build
        continues bit-identically when the spec says ``resume=True``.  With
        ``featurize=True`` the memory-mapped featurization store is
        materialized next to the shards as well.
        """
        if not isinstance(self.spec, CorpusSpec):
            raise TypeError("build_corpus() requires a CorpusSpec session")
        from repro.corpus import ShardedCorpus

        self._corpus = ShardedCorpus.build(
            self.spec.directory, uarch_name=self.target_name,
            num_blocks=self.spec.num_blocks, seed=self.spec.seed,
            shard_size=self.spec.shard_size, resume=self.spec.resume,
            progress=progress)
        if self.spec.featurize:
            self.featurization_store()
        return self._corpus

    def featurization_store(self) -> Any:
        """The corpus's mmap featurization store, built/extended on first use."""
        if self._featurization_store is None:
            corpus = self.corpus()
            if corpus is None:
                return None
            import os

            from repro.core.surrogate import BlockFeaturizer
            from repro.corpus import ShardedFeaturizationStore

            self._featurization_store = ShardedFeaturizationStore(
                os.path.join(corpus.directory, "featurization"),
                BlockFeaturizer(self.adapter.opcode_table)).ensure(corpus)
        return self._featurization_store

    def split(self, which: str = "test") -> Tuple[List[Any], np.ndarray]:
        """``(blocks, timings)`` of one dataset split.

        Corpus-backed sessions return a lazy
        :class:`~repro.corpus.sharded.CorpusView` (and support the
        ``validation`` split); plain sessions materialize block lists from
        the generated/loaded dataset.
        """
        corpus = self.corpus()
        if corpus is not None:
            view = corpus.split_view(which)
            return view, view.timings()
        if which not in ("train", "test"):
            raise ValueError(f"expected 'train' or 'test', got {which!r}")
        examples = (self.dataset().train_examples if which == "train"
                    else self.dataset().test_examples)
        return ([example.block for example in examples],
                np.array([example.timing for example in examples]))

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def default_table(self) -> Any:
        """The expert default parameter table for this target/simulator."""
        return self.adapter.default_table()

    def load_table(self, path: str) -> Any:
        """Load a learned table JSON through the simulator plugin.

        Memoized per path on this session; callers that mutate the result
        should ``copy()`` it first (as :meth:`sweep_tables` does).
        """
        table = self._table_cache.get(path)
        if table is None:
            table = self.plugin.load_table(path, self.adapter.opcode_table)
            self._table_cache[path] = table
        return table

    def load_table_or_default(self, path: Optional[str]) -> Any:
        """``load_table(path)``, the bundle-bound table, or the default.

        Precedence: an explicit ``path`` wins; a session created by
        :meth:`from_bundle` then serves its bundled table; everything else
        falls back to the expert default table.
        """
        if path:
            return self.load_table(path)
        if self._bound_table is not None:
            return self._bound_table
        return self.default_table()

    def table_from_arrays(self, arrays: Any) -> Any:
        """Convert optimization-layout arrays to a native table."""
        return self.adapter.table_from_arrays(arrays)

    # ------------------------------------------------------------------
    # The three verbs
    # ------------------------------------------------------------------
    def tune(self, blocks: Optional[Sequence[Any]] = None,
             timings: Optional[np.ndarray] = None) -> SessionTuneResult:
        """Run DiffTune end to end; bit-identical to the pre-facade path.

        Without arguments, tunes on the session dataset's train split and
        reports test-split errors.  With explicit ``blocks``/``timings``,
        tunes on those and skips the test metrics.  ``checkpoint_dir`` /
        ``resume`` / ``stop_after`` come from the spec.
        """
        from repro.core.difftune import DiffTune
        from repro.eval.metrics import error_and_tau

        own_dataset = blocks is None
        if own_dataset:
            blocks, timings = self.split("train")
        if timings is None:
            raise ValueError("timings must accompany explicit blocks")
        start_time = time.time()
        difftune = DiffTune(self.adapter, self.config, log=self.log)
        store = (self.featurization_store()
                 if own_dataset and self._corpus_directory() is not None else None)
        result = difftune.learn(blocks, np.asarray(timings, dtype=np.float64),
                                checkpoint_dir=self._spec_get("checkpoint_dir"),
                                resume=self._spec_get("resume", False),
                                stop_after=self._spec_get("stop_after"),
                                featurization_store=store)
        elapsed = time.time() - start_time
        if result is None:
            return SessionTuneResult(completed=False, elapsed_seconds=elapsed,
                                     stopped_after=self._spec_get("stop_after"))
        self._last_surrogate = getattr(result, "surrogate", None)
        outcome = SessionTuneResult(
            completed=True,
            learned_arrays=result.learned_arrays,
            learned_table=self.adapter.table_from_arrays(result.learned_arrays),
            train_error=result.train_error,
            elapsed_seconds=elapsed,
            resumed_stages=list(result.resumed_stages),
            raw=result)
        if own_dataset:
            test_blocks, test_timings = self.split("test")
            outcome.test_error = float(error_and_tau(
                self.adapter.predict_timings(result.learned_arrays, test_blocks),
                test_timings)[0])
            outcome.default_test_error = float(error_and_tau(
                self.adapter.predict_timings(self.adapter.default_arrays(),
                                             test_blocks),
                test_timings)[0])
        return outcome

    def evaluate(self, table: Optional[Any] = None,
                 split: Optional[str] = None) -> Dict[str, Any]:
        """Error and Kendall's tau of ``table`` on a dataset split.

        ``table`` may be a native table, a path to a table JSON, or ``None``
        (spec's ``table_path``, falling back to the default table).
        """
        from repro.eval.metrics import error_and_tau

        if table is None:
            table = self.load_table_or_default(self._spec_get("table_path"))
        elif isinstance(table, str):
            table = self.load_table(table)
        split = split or self._spec_get("split", "test")
        blocks, timings = self.split(split)
        predictions = self.predict(blocks, table)
        error, tau = error_and_tau(predictions, timings)
        return {
            "target": self.target_name,
            "simulator": SIMULATORS.resolve(self.spec.simulator),
            "split": split,
            "num_blocks": len(blocks),
            "error": float(error),
            "tau": float(tau),
        }

    def predict(self, blocks: Sequence[Any],
                tables: Optional[Any] = None) -> np.ndarray:
        """Simulated timings of ``blocks``, batched through the engine.

        ``tables`` may be ``None`` (spec's ``table_path``, a bundle-bound
        table, or the default table), one native table — returning shape
        ``(len(blocks),)`` — or a sequence of tables, returning
        ``(len(tables), len(blocks))``.  The engine's compile and result
        caches persist across calls on this session, so sweeps and repeated
        evaluations share work.  An empty block list short-circuits to an
        empty array without touching the engine.
        """
        blocks = list(blocks)
        self._predict_calls += 1
        self._predicted_blocks += len(blocks)
        if not blocks:
            if isinstance(tables, (list, tuple)):
                return np.empty((len(tables), 0), dtype=np.float64)
            return np.empty(0, dtype=np.float64)
        if tables is None:
            tables = self.load_table_or_default(self._spec_get("table_path"))
        if isinstance(tables, (list, tuple)):
            self._predicted_pairs += len(tables) * len(blocks)
            return self.adapter.engine.run(list(tables), blocks)
        self._predicted_pairs += len(blocks)
        return self.adapter.engine.run_one(tables, blocks)

    # ------------------------------------------------------------------
    # Simulator capabilities
    # ------------------------------------------------------------------
    def timeline(self, block: Any, table: Optional[Any] = None) -> str:
        """The per-cycle timeline / bottleneck report for one basic block.

        ``block`` may be a :class:`~repro.isa.basic_block.BasicBlock` or
        assembly text (``;`` separates instructions).  Raises
        :class:`CapabilityError` for simulators without a timeline view.
        """
        plugin = self.plugin
        if plugin.timeline_factory is None:
            supported = [name for name, candidate in SIMULATORS.items()
                         if candidate.timeline_factory is not None]
            raise CapabilityError(
                f"simulator {plugin.name!r} has no timeline view; "
                f"simulators with one: {', '.join(supported) or '<none>'}")
        if isinstance(block, str):
            from repro.isa.parser import parse_block

            block = parse_block(block.replace(";", "\n"), self.adapter.opcode_table)
        if table is None:
            table = self.load_table_or_default(self._spec_get("table_path"))
        return plugin.timeline_factory(table).summary(block)

    def run_campaign(self, spec: Optional[Union["CampaignSpec", Dict[str, Any]]] = None,
                     **overrides: Any) -> Any:
        """Run a declarative sweep campaign on this session's components.

        ``spec`` may be a :class:`~repro.campaigns.spec.CampaignSpec`, a
        plain spec dict, or ``None`` (campaign fields come entirely from
        ``overrides``, with the dataset/simulator identity inherited from
        this session's spec).  The campaign shares this session's adapter,
        so its engine compile/result caches carry across campaigns and
        :meth:`predict` calls.  Returns a
        :class:`~repro.campaigns.runner.CampaignResult`.
        """
        from repro.campaigns.runner import CampaignRunner

        if spec is None or isinstance(spec, dict):
            payload: Dict[str, Any] = {
                "simulator": SIMULATORS.resolve(self.spec.simulator)}
            for name in ("target", "dataset_path", "corpus_path", "num_blocks",
                         "seed", "table_path", "narrow_sampling",
                         "engine_workers", "engine_megabatch"):
                value = self._spec_get(name)
                if value is not None:
                    payload[name] = value
            payload.update(spec or {})
            payload.update(overrides)
            spec = CampaignSpec.from_dict(payload)
        elif isinstance(spec, CampaignSpec):
            if overrides:
                known = {f.name for f in dataclasses.fields(spec)}
                for key in overrides:
                    if key not in known:
                        raise SpecValidationError(
                            key, "unknown field for CampaignSpec")
                spec = dataclasses.replace(spec, **overrides)
            spec.validate()
        else:
            raise TypeError(f"expected a CampaignSpec, dict, or keyword "
                            f"arguments; got {type(spec).__name__}")
        return CampaignRunner(spec, session=self, log=self.log).run()

    def run_matrix(self, spec: Optional[Union[Any, Dict[str, Any]]] = None,
                   **overrides: Any) -> Any:
        """Fan one campaign across a ``(target, simulator)`` cell matrix.

        ``spec`` may be a
        :class:`~repro.distributed.spec.MatrixCampaignSpec`, a plain spec
        dict, or ``None`` (fields come entirely from ``overrides``).  Unlike
        :meth:`run_campaign` nothing is inherited from this session's
        identity — a matrix spans targets and simulators, so each cell
        builds its own session — but the scheduler logs through this
        session's log.  Returns a
        :class:`~repro.distributed.scheduler.MatrixResult`.
        """
        from repro.distributed.scheduler import run_matrix
        from repro.distributed.spec import MatrixCampaignSpec

        if spec is None or isinstance(spec, dict):
            payload = dict(spec or {})
            payload.update(overrides)
            spec = MatrixCampaignSpec.from_dict(payload)
        elif isinstance(spec, MatrixCampaignSpec):
            if overrides:
                known = {f.name for f in dataclasses.fields(spec)}
                for key in overrides:
                    if key not in known:
                        raise SpecValidationError(
                            key, "unknown field for MatrixCampaignSpec")
                spec = dataclasses.replace(spec, **overrides)
        else:
            raise TypeError(f"expected a MatrixCampaignSpec, dict, or "
                            f"keyword arguments; got {type(spec).__name__}")
        return run_matrix(spec, log=self.log)

    def sweep_tables(self, field_name: str, values: Sequence[int],
                     table: Optional[Any] = None) -> List[Any]:
        """Deprecated: candidate tables varying one global parameter.

        Thin shim over the campaign axis machinery
        (:func:`repro.campaigns.spec.resolve_axis`): the base table is
        resolved once and each candidate applies the plugin's setter to a
        copy, exactly as a single-axis grid campaign materializes its
        variants.  Use :meth:`run_campaign` with a grid axis instead.

        Raises :class:`CapabilityError` when the simulator does not expose
        ``field_name`` as a sweepable global parameter.
        """
        warnings.warn(
            "Session.sweep_tables() is deprecated; use Session.run_campaign() "
            "with a single grid axis (repro.campaigns)",
            DeprecationWarning, stacklevel=2)
        from repro.campaigns.spec import AxisSpec, resolve_axis

        plugin = self.plugin
        if field_name not in plugin.sweep_fields:
            supported = ", ".join(sorted(plugin.sweep_fields)) or "<none>"
            raise CapabilityError(
                f"simulator {plugin.name!r} cannot sweep {field_name!r}; "
                f"sweepable fields: {supported}")
        axis = resolve_axis(AxisSpec(field=field_name,
                                     values=[int(value) for value in values]),
                            plugin)
        if table is None:
            table = self.load_table_or_default(self._spec_get("table_path"))
        candidates = []
        for value in axis.values:
            candidate = table.copy()
            axis.apply(candidate, value)
            candidates.append(candidate)
        return candidates

    def stats(self) -> Dict[str, Any]:
        """One stats surface for the whole session.

        ``engine`` holds the shared engine's cache/execution counters
        (``None`` for adapters without an engine); ``featurization`` the
        process-wide :class:`~repro.core.surrogate.FeaturizationCache`
        hit/miss/eviction counters; the ``predict_*`` counters track this
        session's :meth:`predict` traffic.  The serving layer's ``/stats``
        endpoint re-exports exactly this payload.
        """
        from repro.core.surrogate import featurization_cache_stats

        try:
            engine: Optional[Dict[str, int]] = dict(self.adapter.engine.stats)
        except NotImplementedError:
            engine = None
        return {
            "engine": engine,
            "featurization": featurization_cache_stats(),
            "predict_calls": self._predict_calls,
            "predicted_blocks": self._predicted_blocks,
            "predicted_pairs": self._predicted_pairs,
        }

    def engine_stats(self) -> Optional[Dict[str, int]]:
        """Deprecated: use ``Session.stats()["engine"]``."""
        warnings.warn(
            "Session.engine_stats() is deprecated; use "
            "Session.stats()['engine'] (the engine counters are one section "
            "of the unified stats surface)",
            DeprecationWarning, stacklevel=2)
        return self.stats()["engine"]

    # ------------------------------------------------------------------
    # Deployment bundles
    # ------------------------------------------------------------------
    def export_bundle(self, path: str, table: Optional[Any] = None,
                      surrogate: Optional[Any] = None) -> Any:
        """Write a single-file deployment bundle of this session's model.

        ``table`` (native table or a table-JSON path) defaults to the
        session's resolved table; ``surrogate`` defaults to the surrogate
        trained by this session's last :meth:`tune` call, when any.  Returns
        the written :class:`~repro.api.bundle.BundleManifest`.
        """
        from repro.api.bundle import export_bundle

        return export_bundle(self, path, table=table, surrogate=surrogate)

    def bundle_surrogate(self) -> Any:
        """Rebuild the surrogate shipped in this session's bundle.

        Only available on sessions created by :meth:`from_bundle` from a
        bundle that embedded surrogate weights; raises ``ValueError``
        otherwise.
        """
        if self._bundle_surrogate_state is None:
            raise ValueError("this session has no bundled surrogate weights "
                             "(load a bundle exported with a surrogate)")
        from repro.core.surrogate import (BlockFeaturizer, SurrogateConfig,
                                          build_surrogate)

        config = SurrogateConfig(**(self.bundle_manifest.surrogate or {}))
        surrogate = build_surrogate(self.adapter.parameter_spec(),
                                    BlockFeaturizer(self.adapter.opcode_table),
                                    config)
        surrogate.load_state_dict(self._bundle_surrogate_state)
        return surrogate

    def __repr__(self) -> str:
        return (f"Session(target={self._spec_get('target')!r}, "
                f"simulator={self.spec.simulator!r}, "
                f"spec={type(self.spec).__name__})")
