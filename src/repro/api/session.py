"""The :class:`Session` facade: one construction path for the whole system.

A session binds a validated spec (:mod:`repro.api.specs`) to live components
resolved through the registries (:mod:`repro.api.registries`) and exposes
the three verbs the CLI, the pipeline, the benchmark harness, and user code
all need:

* :meth:`Session.tune` — an end-to-end DiffTune run (wrapping the
  checkpointable :class:`~repro.pipeline.pipeline.TuningPipeline`, with
  ``checkpoint_dir``/``resume``/``stop_after`` from the spec);
* :meth:`Session.evaluate` — error / Kendall's tau of a parameter table on a
  dataset split;
* :meth:`Session.predict` — batched ``tables x blocks`` timings through the
  shared :class:`~repro.engine.engine.SimulationEngine`, whose compile and
  result caches persist across calls on the same session.

Everything heavier than the spec is constructed lazily and memoized, so a
session is cheap to create and cheap to interrogate.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.plugins import SimulatorPlugin
from repro.api.registries import PRESETS, SIMULATORS, SURROGATES, TARGETS
from repro.api.specs import EvaluateSpec, PredictSpec, SpecValidationError, TuneSpec

#: Specs a session can be created from.
AnySpec = Union[TuneSpec, EvaluateSpec, PredictSpec]


class CapabilityError(RuntimeError):
    """A simulator plugin lacks the capability a call requires."""


@dataclass
class SessionTuneResult:
    """Outcome of one :meth:`Session.tune` call (plain data).

    ``completed=False`` means the run stopped at ``stopped_after`` (the
    spec's ``stop_after`` stage) with its progress checkpointed; re-running
    with ``resume=True`` finishes it.
    """

    completed: bool
    learned_arrays: Optional[Any] = None
    learned_table: Optional[Any] = None
    train_error: Optional[float] = None
    test_error: Optional[float] = None
    default_test_error: Optional[float] = None
    elapsed_seconds: float = 0.0
    resumed_stages: List[str] = field(default_factory=list)
    stopped_after: Optional[str] = None
    #: The underlying :class:`~repro.core.difftune.DiffTuneResult`.
    raw: Optional[Any] = None


class Session:
    """Registry-resolved components behind one typed entry point.

    Create sessions with :meth:`from_spec`; the constructor takes an
    already-validated spec.  All component construction flows through the
    registries, so a third-party target or simulator registered via entry
    points works here, in the CLI, and in the benchmark harness alike.
    """

    def __init__(self, spec: AnySpec,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if not isinstance(spec, (TuneSpec, EvaluateSpec, PredictSpec)):
            raise TypeError(f"expected TuneSpec/EvaluateSpec/PredictSpec, "
                            f"got {type(spec).__name__}")
        spec.validate()
        self.spec = spec
        self.log = log or (lambda message: None)
        self._dataset: Any = None
        self._adapter: Any = None
        self._config: Any = None
        #: path -> parsed table, so repeated predict/evaluate/timeline calls
        #: on one session do not re-read the table JSON from disk.
        self._table_cache: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Optional[Union[AnySpec, Dict[str, Any]]] = None,
                  log: Optional[Callable[[str], None]] = None,
                  **overrides: Any) -> "Session":
        """Build a session from a spec, a plain dict, or keyword arguments.

        ``overrides`` update the spec's fields (handy for CLI plumbing)::

            Session.from_spec(TuneSpec(), target="skylake", seed=3)
            Session.from_spec({"target": "zen2", "num_blocks": 100})
            Session.from_spec(simulator="llvm_sim")   # defaults to TuneSpec
        """
        if spec is None:
            spec = TuneSpec.from_dict(dict(overrides))
        elif isinstance(spec, dict):
            payload = dict(spec)
            payload.update(overrides)
            spec = TuneSpec.from_dict(payload)
        elif isinstance(spec, (TuneSpec, EvaluateSpec, PredictSpec)):
            if overrides:
                known = {f.name for f in dataclasses.fields(spec)}
                for key in overrides:
                    if key not in known:
                        raise SpecValidationError(
                            key, f"unknown field for {type(spec).__name__}")
                spec = dataclasses.replace(spec, **overrides)
            spec.validate()
        else:
            raise TypeError(f"expected a spec, dict, or keyword arguments; "
                            f"got {type(spec).__name__}")
        return cls(spec, log=log)

    # ------------------------------------------------------------------
    # Resolved components (lazy, memoized)
    # ------------------------------------------------------------------
    def _spec_get(self, name: str, default: Any = None) -> Any:
        return getattr(self.spec, name, default)

    @property
    def target_name(self) -> str:
        """Canonical target key (derived from the dataset file when given)."""
        if self._spec_get("dataset_path") is not None:
            return TARGETS.resolve(self.dataset().uarch_name)
        return TARGETS.resolve(self.spec.target)

    @property
    def uarch(self) -> Any:
        """The resolved :class:`~repro.targets.uarch.UarchSpec`."""
        return TARGETS.get(self.target_name)

    @property
    def plugin(self) -> SimulatorPlugin:
        """The resolved :class:`~repro.api.plugins.SimulatorPlugin`."""
        return SIMULATORS.get(self.spec.simulator)

    @property
    def adapter(self) -> Any:
        """The simulator adapter (shared engine caches live here)."""
        if self._adapter is None:
            kwargs: Dict[str, Any] = {
                "engine_workers": self._spec_get("engine_workers", 0),
                "engine_megabatch": self._spec_get("engine_megabatch", True),
            }
            narrow = self._spec_get("narrow_sampling")
            if narrow is not None:
                kwargs["narrow_sampling"] = narrow
            learn_fields = self._spec_get("learn_fields")
            if learn_fields is not None:
                kwargs["learn_fields"] = list(learn_fields)
            self._adapter = self.plugin.create_adapter(self.uarch, **kwargs)
        return self._adapter

    @property
    def config(self) -> Any:
        """The :class:`~repro.core.difftune.DiffTuneConfig` from the preset."""
        if self._config is None:
            preset = PRESETS.get(self._spec_get("preset", "fast"))
            config = preset(self._spec_get("seed", 0))
            surrogate = self._spec_get("surrogate")
            if surrogate is not None:
                config.surrogate.kind = SURROGATES.resolve(surrogate)
            config.surrogate_training.batched = self._spec_get("batch_training", True)
            config.table_optimization.batched = \
                self._spec_get("batch_table_optimization", True)
            self._config = config
        return self._config

    def dataset(self) -> Any:
        """The measured dataset: loaded from ``dataset_path`` or generated."""
        if self._dataset is None:
            from repro.bhive import BasicBlockDataset, build_dataset

            path = self._spec_get("dataset_path")
            if path is not None:
                self._dataset = BasicBlockDataset.load_json(path)
            else:
                self._dataset = build_dataset(
                    self.target_name, num_blocks=self._spec_get("num_blocks", 300),
                    seed=self._spec_get("seed", 0))
        return self._dataset

    def split(self, which: str = "test") -> Tuple[List[Any], np.ndarray]:
        """``(blocks, timings)`` of one dataset split."""
        if which not in ("train", "test"):
            raise ValueError(f"expected 'train' or 'test', got {which!r}")
        examples = (self.dataset().train_examples if which == "train"
                    else self.dataset().test_examples)
        return ([example.block for example in examples],
                np.array([example.timing for example in examples]))

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def default_table(self) -> Any:
        """The expert default parameter table for this target/simulator."""
        return self.adapter.default_table()

    def load_table(self, path: str) -> Any:
        """Load a learned table JSON through the simulator plugin.

        Memoized per path on this session; callers that mutate the result
        should ``copy()`` it first (as :meth:`sweep_tables` does).
        """
        table = self._table_cache.get(path)
        if table is None:
            table = self.plugin.load_table(path, self.adapter.opcode_table)
            self._table_cache[path] = table
        return table

    def load_table_or_default(self, path: Optional[str]) -> Any:
        """``load_table(path)`` when a path is given, else the default table."""
        return self.load_table(path) if path else self.default_table()

    def table_from_arrays(self, arrays: Any) -> Any:
        """Convert optimization-layout arrays to a native table."""
        return self.adapter.table_from_arrays(arrays)

    # ------------------------------------------------------------------
    # The three verbs
    # ------------------------------------------------------------------
    def tune(self, blocks: Optional[Sequence[Any]] = None,
             timings: Optional[np.ndarray] = None) -> SessionTuneResult:
        """Run DiffTune end to end; bit-identical to the pre-facade path.

        Without arguments, tunes on the session dataset's train split and
        reports test-split errors.  With explicit ``blocks``/``timings``,
        tunes on those and skips the test metrics.  ``checkpoint_dir`` /
        ``resume`` / ``stop_after`` come from the spec.
        """
        from repro.core.difftune import DiffTune
        from repro.eval.metrics import error_and_tau

        own_dataset = blocks is None
        if own_dataset:
            blocks, timings = self.split("train")
        if timings is None:
            raise ValueError("timings must accompany explicit blocks")
        start_time = time.time()
        difftune = DiffTune(self.adapter, self.config, log=self.log)
        result = difftune.learn(blocks, np.asarray(timings, dtype=np.float64),
                                checkpoint_dir=self._spec_get("checkpoint_dir"),
                                resume=self._spec_get("resume", False),
                                stop_after=self._spec_get("stop_after"))
        elapsed = time.time() - start_time
        if result is None:
            return SessionTuneResult(completed=False, elapsed_seconds=elapsed,
                                     stopped_after=self._spec_get("stop_after"))
        outcome = SessionTuneResult(
            completed=True,
            learned_arrays=result.learned_arrays,
            learned_table=self.adapter.table_from_arrays(result.learned_arrays),
            train_error=result.train_error,
            elapsed_seconds=elapsed,
            resumed_stages=list(result.resumed_stages),
            raw=result)
        if own_dataset:
            test_blocks, test_timings = self.split("test")
            outcome.test_error = float(error_and_tau(
                self.adapter.predict_timings(result.learned_arrays, test_blocks),
                test_timings)[0])
            outcome.default_test_error = float(error_and_tau(
                self.adapter.predict_timings(self.adapter.default_arrays(),
                                             test_blocks),
                test_timings)[0])
        return outcome

    def evaluate(self, table: Optional[Any] = None,
                 split: Optional[str] = None) -> Dict[str, Any]:
        """Error and Kendall's tau of ``table`` on a dataset split.

        ``table`` may be a native table, a path to a table JSON, or ``None``
        (spec's ``table_path``, falling back to the default table).
        """
        from repro.eval.metrics import error_and_tau

        if table is None:
            table = self.load_table_or_default(self._spec_get("table_path"))
        elif isinstance(table, str):
            table = self.load_table(table)
        split = split or self._spec_get("split", "test")
        blocks, timings = self.split(split)
        predictions = self.predict(blocks, table)
        error, tau = error_and_tau(predictions, timings)
        return {
            "target": self.target_name,
            "simulator": SIMULATORS.resolve(self.spec.simulator),
            "split": split,
            "num_blocks": len(blocks),
            "error": float(error),
            "tau": float(tau),
        }

    def predict(self, blocks: Sequence[Any],
                tables: Optional[Any] = None) -> np.ndarray:
        """Simulated timings of ``blocks``, batched through the engine.

        ``tables`` may be ``None`` (spec's ``table_path`` or the default
        table), one native table — returning shape ``(len(blocks),)`` — or a
        sequence of tables, returning ``(len(tables), len(blocks))``.  The
        engine's compile and result caches persist across calls on this
        session, so sweeps and repeated evaluations share work.
        """
        if tables is None:
            tables = self.load_table_or_default(self._spec_get("table_path"))
        if isinstance(tables, (list, tuple)):
            return self.adapter.engine.run(list(tables), list(blocks))
        return self.adapter.engine.run_one(tables, list(blocks))

    # ------------------------------------------------------------------
    # Simulator capabilities
    # ------------------------------------------------------------------
    def timeline(self, block: Any, table: Optional[Any] = None) -> str:
        """The per-cycle timeline / bottleneck report for one basic block.

        ``block`` may be a :class:`~repro.isa.basic_block.BasicBlock` or
        assembly text (``;`` separates instructions).  Raises
        :class:`CapabilityError` for simulators without a timeline view.
        """
        plugin = self.plugin
        if plugin.timeline_factory is None:
            supported = [name for name, candidate in SIMULATORS.items()
                         if candidate.timeline_factory is not None]
            raise CapabilityError(
                f"simulator {plugin.name!r} has no timeline view; "
                f"simulators with one: {', '.join(supported) or '<none>'}")
        if isinstance(block, str):
            from repro.isa.parser import parse_block

            block = parse_block(block.replace(";", "\n"), self.adapter.opcode_table)
        if table is None:
            table = self.load_table_or_default(self._spec_get("table_path"))
        return plugin.timeline_factory(table).summary(block)

    def sweep_tables(self, field_name: str, values: Sequence[int],
                     table: Optional[Any] = None) -> List[Any]:
        """Candidate tables varying one global parameter (Figure 5 sweeps).

        Raises :class:`CapabilityError` when the simulator does not expose
        ``field_name`` as a sweepable global parameter.
        """
        plugin = self.plugin
        setter = plugin.sweep_fields.get(field_name)
        if setter is None:
            supported = ", ".join(sorted(plugin.sweep_fields)) or "<none>"
            raise CapabilityError(
                f"simulator {plugin.name!r} cannot sweep {field_name!r}; "
                f"sweepable fields: {supported}")
        if table is None:
            table = self.load_table_or_default(self._spec_get("table_path"))
        candidates = []
        for value in values:
            candidate = table.copy()
            setter(candidate, int(value))
            candidates.append(candidate)
        return candidates

    def engine_stats(self) -> Optional[Dict[str, int]]:
        """The shared engine's cache statistics (``None`` off-engine)."""
        try:
            return dict(self.adapter.engine.stats)
        except NotImplementedError:
            return None

    def __repr__(self) -> str:
        return (f"Session(target={self._spec_get('target')!r}, "
                f"simulator={self.spec.simulator!r}, "
                f"spec={type(self.spec).__name__})")
