"""A generic string-keyed component registry.

This is the substrate of :mod:`repro.api`: one :class:`Registry` instance per
component kind (targets, simulators, surrogates, baselines, presets) maps
stable string keys to the objects implementing them.  The registry owns the
three concerns every keyed component system needs and that were previously
re-implemented ad hoc (or not at all) per subsystem:

* **registration** — :meth:`Registry.register` works both as a decorator and
  as a direct call, accepts aliases, is idempotent for re-imports, and raises
  :class:`DuplicateKeyError` when two *different* objects claim one key;
* **diagnostics** — :meth:`Registry.get` on an unknown key raises
  :class:`UnknownKeyError` (a :class:`KeyError` subclass, so existing
  ``except KeyError`` call sites keep working) listing the known keys and a
  did-you-mean suggestion from :mod:`difflib`;
* **extension** — :meth:`Registry.load_entry_points` discovers third-party
  plugins through :mod:`importlib.metadata` entry points, so external
  packages can add targets or simulators without touching this repository.

This module deliberately imports nothing from the rest of the package: it
must stay importable from any component module that self-registers at import
time without creating a cycle.
"""

from __future__ import annotations

import difflib
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)


class RegistryError(Exception):
    """Base class for registry failures."""


class DuplicateKeyError(RegistryError):
    """Two different objects claimed the same registry key."""


class UnknownKeyError(RegistryError, KeyError):
    """A lookup named a key no component registered.

    Subclasses :class:`KeyError` so call sites written against plain dict
    lookups (``except KeyError``) continue to work, but overrides ``__str__``
    — ``KeyError`` would repr-quote the whole diagnostic message.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


def _default_normalize(key: str) -> str:
    return key.strip().lower()


class RegistryEntry:
    """One registered component: its canonical key, value, and provenance."""

    __slots__ = ("key", "value", "aliases", "summary", "source")

    def __init__(self, key: str, value: Any, aliases: Tuple[str, ...],
                 summary: str, source: str) -> None:
        self.key = key
        self.value = value
        self.aliases = aliases
        self.summary = summary
        self.source = source

    def __repr__(self) -> str:
        return f"RegistryEntry({self.key!r}, {self.value!r}, source={self.source!r})"


_MISSING = object()


class Registry:
    """Name-keyed collection of components of one kind.

    Args:
        kind: Singular human-readable component kind (``"target"``,
            ``"simulator"``, ...) used in diagnostics.
        entry_point_group: Optional :mod:`importlib.metadata` entry-point
            group to scan for third-party plugins on first lookup
            (e.g. ``"repro.simulators"``).
        bootstrap: Optional zero-argument callable invoked once before the
            first lookup; used to import the in-tree modules that register
            the built-in components, so merely importing :mod:`repro.api`
            stays cheap.
        normalize: Key canonicalization applied to registration and lookup
            keys alike (default: strip + lowercase).
    """

    def __init__(self, kind: str, entry_point_group: Optional[str] = None,
                 bootstrap: Optional[Callable[[], None]] = None,
                 normalize: Callable[[str], str] = _default_normalize) -> None:
        self.kind = kind
        self.entry_point_group = entry_point_group
        self._bootstrap = bootstrap
        self._normalize = normalize
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}
        self._bootstrapped = bootstrap is None
        self._entry_points_loaded = entry_point_group is None
        #: Entry-point names already processed successfully, so a retried
        #: scan after a partial failure never re-runs a plugin's hook.
        self._completed_entry_points: set = set()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, key: str, value: Any = _MISSING, *,
                 aliases: Iterable[str] = (), summary: str = "",
                 source: str = "builtin", replace: bool = False) -> Any:
        """Register ``value`` under ``key``; usable directly or as a decorator.

        Direct call::

            TARGETS.register("haswell", HASWELL, aliases=("hsw",))

        Decorator (the decorated object is returned unchanged)::

            @SURROGATES.register("pooled")
            class PooledSurrogate: ...

        Re-registering the *same* object under the same key is a no-op, so a
        module that registers at import time can safely be imported twice.
        Registering a *different* object under a taken key raises
        :class:`DuplicateKeyError` unless ``replace=True``.
        """
        if value is _MISSING:
            def decorate(decorated: Any) -> Any:
                self.register(key, decorated, aliases=aliases, summary=summary,
                              source=source, replace=replace)
                return decorated
            return decorate

        canonical = self._normalize(key)
        existing = self._entries.get(canonical)
        if existing is not None:
            if not replace:
                if existing.value is value:  # idempotent re-import
                    return value
                raise DuplicateKeyError(
                    f"{self.kind} {canonical!r} is already registered "
                    f"(existing source: {existing.source}, new source: {source}); "
                    f"{self.kind} keys must be unique — pass replace=True to override")
            # Replacement drops the old entry's aliases so the alias map
            # never points at a key whose entry no longer declares it.
            for alias in existing.aliases:
                self._aliases.pop(alias, None)
        # A canonical key may not shadow another entry's alias: a plugin
        # registering target "hsw" must not silently hijack haswell's alias.
        alias_owner = self._aliases.get(canonical)
        if alias_owner is not None:
            if not replace:
                raise DuplicateKeyError(
                    f"{self.kind} key {canonical!r} collides with an alias of "
                    f"{alias_owner!r}; pass replace=True to take it over")
            self._drop_alias_from(alias_owner, canonical)
        if not summary:
            doc = getattr(value, "__doc__", None) or ""
            summary = doc.strip().splitlines()[0] if doc.strip() else ""
        alias_keys = tuple(self._normalize(alias) for alias in aliases)
        for alias in alias_keys:
            if alias in self._entries and alias != canonical:
                # An alias shadowing a canonical key would never resolve.
                raise DuplicateKeyError(
                    f"alias {alias!r} for {self.kind} {canonical!r} collides "
                    f"with the registered {self.kind} {alias!r}")
            owner = self._aliases.get(alias)
            if owner is not None and owner != canonical:
                if not replace:
                    raise DuplicateKeyError(
                        f"alias {alias!r} for {self.kind} {canonical!r} is already "
                        f"an alias of {owner!r}")
                self._drop_alias_from(owner, alias)
        self._entries[canonical] = RegistryEntry(canonical, value, alias_keys,
                                                 summary, source)
        for alias in alias_keys:
            self._aliases[alias] = canonical
        return value

    def _drop_alias_from(self, owner_key: str, alias: str) -> None:
        """Remove ``alias`` from the alias map *and* its owner's declaration."""
        self._aliases.pop(alias, None)
        owner = self._entries.get(owner_key)
        if owner is not None and alias in owner.aliases:
            owner.aliases = tuple(item for item in owner.aliases if item != alias)

    def unregister(self, key: str) -> None:
        """Remove a key (tests and plugin teardown); unknown keys raise."""
        self._ensure_ready()
        canonical = self._resolve(self._normalize(key))
        entry = self._entries.pop(canonical)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _ensure_ready(self) -> None:
        if not self._bootstrapped:
            # Flip the flag *first*: the bootstrap imports component modules,
            # and any registry lookup they perform at import time must not
            # re-enter the bootstrap.  On failure the flag is reset so the
            # next lookup retries and resurfaces the real error instead of
            # serving a silently half-initialized registry.
            self._bootstrapped = True
            try:
                self._bootstrap()
            except BaseException:
                self._bootstrapped = False
                raise
        if not self._entry_points_loaded:
            self._entry_points_loaded = True
            try:
                self.load_entry_points()
            except BaseException:
                self._entry_points_loaded = False
                raise

    def _resolve(self, canonical: str) -> str:
        if canonical in self._entries:
            return canonical
        if canonical in self._aliases:
            return self._aliases[canonical]
        known = sorted(self._entries)
        candidates = known + sorted(self._aliases)
        suggestions = difflib.get_close_matches(canonical, candidates, n=1)
        hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
        raise UnknownKeyError(
            f"unknown {self.kind} {canonical!r}{hint} "
            f"(registered {self.kind}s: {', '.join(known) or '<none>'})")

    def resolve(self, key: str) -> str:
        """The canonical key ``key`` refers to (follows aliases)."""
        self._ensure_ready()
        return self._resolve(self._normalize(key))

    def get(self, key: str) -> Any:
        """The component registered under ``key`` (or one of its aliases)."""
        self._ensure_ready()
        return self._entries[self._resolve(self._normalize(key))].value

    def entry(self, key: str) -> RegistryEntry:
        """The full :class:`RegistryEntry` for ``key``."""
        self._ensure_ready()
        return self._entries[self._resolve(self._normalize(key))]

    def __contains__(self, key: str) -> bool:
        self._ensure_ready()
        canonical = self._normalize(key)
        return canonical in self._entries or canonical in self._aliases

    def __len__(self) -> int:
        self._ensure_ready()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def names(self) -> List[str]:
        """Sorted canonical keys."""
        self._ensure_ready()
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, Any]]:
        """Sorted ``(key, value)`` pairs."""
        self._ensure_ready()
        return [(name, self._entries[name].value) for name in self.names()]

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data description of every entry (keys, aliases, summaries)."""
        self._ensure_ready()
        return {
            name: {
                "aliases": list(self._entries[name].aliases),
                "summary": self._entries[name].summary,
                "source": self._entries[name].source,
            }
            for name in self.names()
        }

    # ------------------------------------------------------------------
    # Plugin discovery
    # ------------------------------------------------------------------
    def load_entry_points(self, group: Optional[str] = None,
                          entries: Optional[Iterable[Any]] = None) -> List[str]:
        """Load third-party plugins from :mod:`importlib.metadata` entry points.

        Each entry point's ``load()`` result is handled in one of two ways:

        * a callable named ``register`` (or any callable explicitly exposing
          ``__registry_hook__ = True``) is invoked with this registry, letting
          a plugin register several components or aliases at once;
        * any other object is registered directly under the entry point's
          name.

        Args:
            group: Entry-point group to scan; defaults to the registry's
                configured ``entry_point_group``.
            entries: Explicit iterable of entry-point-like objects (anything
                with ``.name`` and ``.load()``); used by tests and by callers
                that already hold the entry points.  Skips the metadata scan.

        Returns:
            The canonical keys added by this call.
        """
        group = group or self.entry_point_group
        if entries is None:
            if group is None:
                return []
            from importlib import metadata

            entries = metadata.entry_points(group=group)
        added: List[str] = []
        before = set(self._entries)
        for entry_point in entries:
            name = getattr(entry_point, "name", None)
            if name is not None and name in self._completed_entry_points:
                # Already processed in an earlier (partially failed) scan;
                # re-running a register hook would double-register.
                continue
            loaded = entry_point.load()
            source = f"entry point {name!r}"
            is_hook = (callable(loaded)
                       and (getattr(loaded, "__name__", "") == "register"
                            or getattr(loaded, "__registry_hook__", False)))
            if is_hook:
                loaded(self)
            else:
                self.register(name, loaded, source=source)
            if name is not None:
                self._completed_entry_points.add(name)
        added.extend(sorted(set(self._entries) - before))
        return added

    def __repr__(self) -> str:
        ready = "+".join(filter(None, [
            "pending-bootstrap" if not self._bootstrapped else "",
            "pending-entry-points" if not self._entry_points_loaded else ""]))
        state = f", {ready}" if ready else ""
        return (f"Registry(kind={self.kind!r}, "
                f"entries={sorted(self._entries)}{state})")
