"""Typed specification objects for the public API.

A spec is a plain dataclass describing *what* to run — which target,
simulator, preset, dataset, and knobs — without constructing anything.
Specs replace the loose kwarg plumbing that previously threaded through the
CLI, the pipeline, and the benchmark harness:

* they round-trip through JSON (:meth:`_SpecBase.to_dict` /
  :meth:`_SpecBase.from_dict`), so a CLI invocation, a config file, and a
  programmatic call are the same object;
* they validate eagerly with errors that *name the bad field*
  (:class:`SpecValidationError`), including the registry's did-you-mean
  suggestion for misspelled component keys.

:class:`~repro.api.session.Session` consumes them:
``Session.from_spec(TuneSpec(target="skylake")).tune()``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Type, TypeVar

from repro.api.registries import PRESETS, SIMULATORS, SURROGATES, TARGETS
from repro.api.registry import UnknownKeyError


class SpecValidationError(ValueError):
    """A spec field failed validation; ``field`` names the offender."""

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


_SpecT = TypeVar("_SpecT", bound="_SpecBase")

#: Types a spec field may hold in its JSON form.
_ATOMIC_TYPES = (bool, int, float, str)


@dataclass
class _SpecBase:
    """Shared JSON round-trip and validation machinery."""

    @classmethod
    def from_dict(cls: Type[_SpecT], payload: Dict[str, Any]) -> _SpecT:
        """Build a validated spec from a plain dict (JSON/CLI round-trip).

        Unknown keys raise :class:`SpecValidationError` naming the key and,
        when close to a real field, suggesting it.
        """
        if not isinstance(payload, dict):
            raise SpecValidationError(
                "<payload>", f"expected a dict for {cls.__name__}, "
                             f"got {type(payload).__name__}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        for key in payload:
            if key not in known:
                import difflib

                close = difflib.get_close_matches(str(key), sorted(known), n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise SpecValidationError(
                    str(key), f"unknown field for {cls.__name__}{hint} "
                              f"(known fields: {', '.join(sorted(known))})")
        spec = cls(**payload)
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dict; ``from_dict(to_dict())`` round-trips."""
        return dataclasses.asdict(self)

    # ------------------------------------------------------------------
    # Field checks shared by the concrete specs
    # ------------------------------------------------------------------
    def _check_type(self, name: str, expected: tuple, allow_none: bool = False) -> None:
        value = getattr(self, name)
        if value is None:
            if allow_none:
                return
            raise SpecValidationError(name, "must not be None")
        # bool is an int subclass; reject True where an int count is expected.
        if int in expected and bool not in expected and isinstance(value, bool):
            raise SpecValidationError(name, f"expected int, got bool ({value!r})")
        if not isinstance(value, expected):
            names = "/".join(kind.__name__ for kind in expected)
            raise SpecValidationError(
                name, f"expected {names}, got {type(value).__name__} ({value!r})")

    def _check_registry(self, name: str, registry: Any,
                        allow_none: bool = False) -> None:
        value = getattr(self, name)
        if value is None and allow_none:
            return
        self._check_type(name, (str,))
        try:
            registry.resolve(value)
        except UnknownKeyError as error:
            raise SpecValidationError(name, str(error)) from error

    def _check_positive(self, name: str) -> None:
        self._check_type(name, (int,))
        if getattr(self, name) < 1:
            raise SpecValidationError(name, f"must be >= 1, got {getattr(self, name)}")

    def _check_non_negative(self, name: str) -> None:
        self._check_type(name, (int,))
        if getattr(self, name) < 0:
            raise SpecValidationError(name, f"must be >= 0, got {getattr(self, name)}")

    def _check_common(self) -> None:
        self._check_registry("target", TARGETS)
        self._check_registry("simulator", SIMULATORS)
        self._check_non_negative("engine_workers")
        self._check_type("engine_megabatch", (bool,))

    def validate(self) -> None:
        raise NotImplementedError


@dataclass
class TuneSpec(_SpecBase):
    """One end-to-end tuning run: dataset + simulator + DiffTune knobs.

    ``dataset_path`` takes precedence over ``num_blocks``/``seed`` dataset
    generation (the seed still seeds the optimization itself).
    """

    target: str = "haswell"
    simulator: str = "mca"
    preset: str = "fast"
    #: Optional surrogate-kind override of the preset's choice.
    surrogate: Optional[str] = None
    num_blocks: int = 300
    seed: int = 0
    dataset_path: Optional[str] = None
    #: Directory of a pre-built sharded corpus (see :class:`CorpusSpec` /
    #: ``repro corpus build``).  Mutually exclusive with ``dataset_path``;
    #: collection and surrogate training then stream from disk.
    corpus_path: Optional[str] = None
    learn_fields: Optional[List[str]] = None
    narrow_sampling: bool = True
    batch_training: bool = True
    batch_table_optimization: bool = True
    engine_workers: int = 0
    #: Route engine cache misses through the vectorized megabatch kernels
    #: (bit-identical to the scalar path; ``False`` is a debugging escape
    #: hatch).
    engine_megabatch: bool = True
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    stop_after: Optional[str] = None

    def validate(self) -> None:
        self._check_common()
        self._check_registry("preset", PRESETS)
        self._check_registry("surrogate", SURROGATES, allow_none=True)
        self._check_positive("num_blocks")
        self._check_type("seed", (int,))
        self._check_type("dataset_path", (str,), allow_none=True)
        self._check_type("corpus_path", (str,), allow_none=True)
        if self.dataset_path is not None and self.corpus_path is not None:
            raise SpecValidationError(
                "corpus_path", "mutually exclusive with dataset_path; a corpus "
                               "carries its own blocks and timings")
        if self.learn_fields is not None:
            if (not isinstance(self.learn_fields, (list, tuple))
                    or not all(isinstance(item, str) for item in self.learn_fields)):
                raise SpecValidationError(
                    "learn_fields", f"expected a list of field names, "
                                    f"got {self.learn_fields!r}")
            plugin = SIMULATORS.get(self.simulator)
            if not getattr(plugin, "supports_partial_learning", True):
                supported = [name for name, candidate in SIMULATORS.items()
                             if getattr(candidate, "supports_partial_learning", True)]
                raise SpecValidationError(
                    "learn_fields",
                    f"simulator {self.simulator!r} learns its full parameter "
                    f"set and does not support learn_fields; simulators that "
                    f"do: {', '.join(supported)}")
        for flag in ("narrow_sampling", "batch_training",
                     "batch_table_optimization", "resume"):
            self._check_type(flag, (bool,))
        self._check_type("checkpoint_dir", (str,), allow_none=True)
        self._check_type("stop_after", (str,), allow_none=True)
        if self.resume and self.checkpoint_dir is None:
            raise SpecValidationError("resume", "requires checkpoint_dir to be set")
        if self.stop_after is not None and self.checkpoint_dir is None:
            raise SpecValidationError("stop_after",
                                      "requires checkpoint_dir to be set")


@dataclass
class EvaluateSpec(_SpecBase):
    """Evaluate a parameter table (learned or default) on a dataset split."""

    target: str = "haswell"
    simulator: str = "mca"
    num_blocks: int = 300
    seed: int = 0
    dataset_path: Optional[str] = None
    #: Directory of a pre-built sharded corpus; mutually exclusive with
    #: ``dataset_path``.
    corpus_path: Optional[str] = None
    #: Learned table JSON; ``None`` evaluates the expert default table.
    table_path: Optional[str] = None
    split: str = "test"
    engine_workers: int = 0
    engine_megabatch: bool = True

    def validate(self) -> None:
        self._check_common()
        self._check_positive("num_blocks")
        self._check_type("seed", (int,))
        self._check_type("dataset_path", (str,), allow_none=True)
        self._check_type("corpus_path", (str,), allow_none=True)
        if self.dataset_path is not None and self.corpus_path is not None:
            raise SpecValidationError(
                "corpus_path", "mutually exclusive with dataset_path; a corpus "
                               "carries its own blocks and timings")
        self._check_type("table_path", (str,), allow_none=True)
        if self.corpus_path is not None:
            if self.split not in ("train", "validation", "test"):
                raise SpecValidationError(
                    "split", f"expected 'train', 'validation', or 'test', "
                             f"got {self.split!r}")
        elif self.split not in ("train", "test"):
            raise SpecValidationError(
                "split", f"expected 'train' or 'test' ('validation' needs a "
                         f"corpus_path), got {self.split!r}")


@dataclass
class CorpusSpec(_SpecBase):
    """Build (or open) a sharded on-disk block corpus for one target.

    Describes the output of ``repro corpus build``: ``num_blocks`` synthetic
    blocks with simulated-hardware timings, streamed into ``shard_size``-block
    shards under ``directory`` with a digest-carrying manifest.  Building is
    resumable at every shard boundary (``resume=True`` continues a killed
    build bit-identically); ``featurize=True`` additionally materializes the
    memory-mapped featurization store next to the shards.  A corpus directory
    plugs into :class:`TuneSpec`/:class:`EvaluateSpec` via ``corpus_path``.
    """

    target: str = "haswell"
    simulator: str = "mca"
    directory: str = ""
    num_blocks: int = 2000
    shard_size: int = 1024
    seed: int = 0
    featurize: bool = False
    resume: bool = False
    engine_workers: int = 0
    engine_megabatch: bool = True

    def validate(self) -> None:
        self._check_common()
        self._check_type("directory", (str,))
        if not self.directory:
            raise SpecValidationError("directory", "must name the corpus directory")
        self._check_positive("num_blocks")
        self._check_positive("shard_size")
        self._check_type("seed", (int,))
        self._check_type("featurize", (bool,))
        self._check_type("resume", (bool,))


@dataclass
class PredictSpec(_SpecBase):
    """Batched timing prediction: blocks x tables through the engine."""

    target: str = "haswell"
    simulator: str = "mca"
    #: Learned table JSON; ``None`` predicts under the expert default table.
    table_path: Optional[str] = None
    engine_workers: int = 0
    engine_megabatch: bool = True

    def validate(self) -> None:
        self._check_common()
        self._check_type("table_path", (str,), allow_none=True)


@dataclass
class BundleSpec(_SpecBase):
    """What goes into a single-file deployment bundle (see :mod:`repro.api.bundle`).

    A bundle freezes one (target, simulator, parameter table) triple — plus,
    optionally, the trained surrogate — into an archive that
    :meth:`~repro.api.session.Session.from_bundle` and the serving layer load
    without the tuning stack.  ``table_path=None`` bundles the expert default
    table; ``surrogate`` names the surrogate kind whose weights ride along
    (``None`` ships the table only).
    """

    target: str = "haswell"
    simulator: str = "mca"
    #: Learned table JSON to bundle; ``None`` bundles the expert default table.
    table_path: Optional[str] = None
    #: Surrogate kind of the embedded weights (``None``: no surrogate member).
    surrogate: Optional[str] = None
    engine_workers: int = 0
    engine_megabatch: bool = True

    def validate(self) -> None:
        self._check_common()
        self._check_type("table_path", (str,), allow_none=True)
        self._check_registry("surrogate", SURROGATES, allow_none=True)


@dataclass
class ServeSpec(_SpecBase):
    """One inference-server deployment: what to load and how to batch.

    Either ``bundle_path`` (a deployment bundle, which pins target, simulator
    and table) or the ``target``/``simulator``/``table_path`` triple describes
    the model; the remaining fields are the server knobs.  Consumed by
    :class:`repro.serving.InferenceServer` and the ``repro serve`` CLI.
    """

    target: str = "haswell"
    simulator: str = "mca"
    #: Deployment bundle to serve; overrides target/simulator/table_path.
    bundle_path: Optional[str] = None
    #: Learned table JSON; ``None`` serves the expert default table.
    table_path: Optional[str] = None
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (reported once the server is up).
    port: int = 8000
    #: Most blocks coalesced into one engine megabatch.
    max_batch_size: int = 64
    #: How long the coalescer holds the first request of a batch open for
    #: company, in milliseconds.  ``0`` executes every request immediately.
    max_batch_wait_ms: float = 2.0
    #: Capacity of each per-table-digest LRU result shard.
    cache_size: int = 4096
    engine_workers: int = 0
    engine_megabatch: bool = True

    def validate(self) -> None:
        self._check_common()
        self._check_type("bundle_path", (str,), allow_none=True)
        self._check_type("table_path", (str,), allow_none=True)
        self._check_type("host", (str,))
        self._check_type("port", (int,))
        if not 0 <= self.port <= 65535:
            raise SpecValidationError("port", f"must be in [0, 65535], got {self.port}")
        self._check_positive("max_batch_size")
        self._check_type("max_batch_wait_ms", (int, float))
        if self.max_batch_wait_ms < 0:
            raise SpecValidationError(
                "max_batch_wait_ms", f"must be >= 0, got {self.max_batch_wait_ms}")
        self._check_positive("cache_size")
        if self.bundle_path is not None and self.table_path is not None:
            raise SpecValidationError(
                "table_path", "a bundle pins its own table; pass either "
                              "bundle_path or table_path, not both")
