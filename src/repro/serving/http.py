"""A minimal stdlib asyncio HTTP/1.1 server base for JSON endpoints.

:class:`JsonHttpServer` is the plumbing half of what used to live inside
:class:`~repro.serving.server.InferenceServer`: request parsing with header
and body limits, keep-alive connection handling, JSON response encoding,
graceful drain on shutdown, and the ``serve()`` / ``start_in_thread()``
lifecycle.  Subclasses implement one coroutine::

    async def _dispatch(self, method, path, body) -> (status, payload)

and may override the narrow hooks (``_clock``, ``_record_request``,
``_on_drain``, ``_startup_message``) to attach stats or drain extra
machinery.  Both the inference server and the distributed campaign worker
(:mod:`repro.distributed.worker`) are built on this class, so they share
one tested implementation of the wire protocol.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

#: Request bodies above this are refused with 413 (a DoS guard, not a limit
#: any legitimate block corpus approaches).
MAX_BODY_BYTES = 8 << 20

#: Longest request line / header section we accept.
MAX_HEADER_BYTES = 64 << 10

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServingError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServerHandle:
    """A running server on a background thread (see ``start_in_thread``)."""

    def __init__(self, server: "JsonHttpServer",
                 thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Request graceful shutdown and wait for the server thread."""
        self.server.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("server thread did not stop within "
                               f"{timeout} seconds")


class JsonHttpServer:
    """Asyncio TCP server speaking just enough HTTP/1.1 for JSON endpoints."""

    #: Thread name used by :meth:`start_in_thread`.
    thread_name = "repro-http"

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8000,
                 log: Optional[Any] = None,
                 drain_seconds: float = 10.0) -> None:
        self.host = host
        self.requested_port = port
        #: The bound port — equals ``requested_port`` unless that was 0
        #: (ephemeral); set once the listening socket exists.
        self.port: Optional[int] = None
        self.log = log or (lambda message: None)
        #: How long shutdown waits for in-flight requests before closing
        #: their connections anyway.
        self.drain_seconds = drain_seconds
        self._draining = False
        self._active_requests = 0
        self._connections: Set[asyncio.StreamWriter] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict[str, Any]]:
        raise NotImplementedError

    def _clock(self) -> float:
        """Monotonic clock used for per-request timing (stats hook)."""
        return time.perf_counter()

    def _record_request(self, path: str, seconds: float,
                        payload: Any, status: int) -> None:
        """Called once per handled request; default is a no-op."""

    async def _on_drain(self) -> None:
        """Called during shutdown after the listener closes; default no-op."""

    def _startup_message(self) -> str:
        return f"listening on http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One HTTP/1.1 request, or ``None`` on clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise ServingError(400, "truncated HTTP request")
        except asyncio.LimitOverrunError:
            raise ServingError(400, "request headers too large")
        if len(head) > MAX_HEADER_BYTES:
            raise ServingError(400, "request headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ServingError(400, f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _separator, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServingError(400, "malformed Content-Length header")
        if content_length > MAX_BODY_BYTES:
            raise ServingError(
                413, f"request body of {content_length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path.split("?", 1)[0], headers, body

    @staticmethod
    def _encode_response(status: int, payload: Dict[str, Any],
                         keep_alive: bool) -> bytes:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                f"\r\n")
        return head.encode("latin-1") + body

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServingError as error:
                    writer.write(self._encode_response(
                        error.status, {"error": str(error)}, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (headers.get("connection", "keep-alive").lower()
                              != "close")
                self._active_requests += 1
                started = self._clock()
                try:
                    status, payload = await self._dispatch(method, path, body)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - last-resort 500
                    status, payload = 500, {"error": f"internal error: {error}"}
                finally:
                    self._active_requests -= 1
                self._record_request(path, self._clock() - started,
                                     payload, status)
                if self._draining:
                    keep_alive = False
                writer.write(self._encode_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError here means the loop is tearing the handler
                # down during shutdown; the connection is closed either way.
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Trigger graceful shutdown (safe to call from any thread)."""
        loop, stop_event = self._loop, self._stop_event
        if loop is None or stop_event is None:
            return
        if loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)

    async def _serve_async(
            self, ready: Optional[threading.Event] = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port)
        self.port = server.sockets[0].getsockname()[1]
        if threading.current_thread() is threading.main_thread():
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(signum,
                                                  self._stop_event.set)
                except (NotImplementedError, RuntimeError):
                    break
        self.log(self._startup_message())
        if ready is not None:
            ready.set()
        try:
            await self._stop_event.wait()
        finally:
            # Graceful shutdown: stop accepting, finish everything already
            # submitted (up to drain_seconds), then close connections.
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._on_drain()
            deadline = self._loop.time() + self.drain_seconds
            while self._active_requests > 0 and self._loop.time() < deadline:
                await asyncio.sleep(0.005)
            for writer in list(self._connections):
                writer.close()
            self.log("server stopped")

    def serve(self) -> None:
        """Run the server on this thread until SIGINT/SIGTERM (blocking)."""
        try:
            asyncio.run(self._serve_async())
        except KeyboardInterrupt:
            pass

    def start_in_thread(self) -> ServerHandle:
        """Run the server on a daemon thread; returns once the port is bound."""
        ready = threading.Event()

        def _run() -> None:
            try:
                asyncio.run(self._serve_async(ready))
            except BaseException as error:  # noqa: BLE001 - reported to caller
                self._startup_error = error
            finally:
                ready.set()

        thread = threading.Thread(target=_run, name=self.thread_name,
                                  daemon=True)
        thread.start()
        if not ready.wait(timeout=30.0):
            raise RuntimeError("server did not start within 30 seconds")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}")
        return ServerHandle(self, thread)
