"""Serving-side observability: the counters behind ``/stats``.

Everything is updated from the server's event-loop thread only, so plain
attributes suffice — no locks.  Latencies are kept in a bounded ring so a
long-lived server reports *recent* p50/p99 rather than a lifetime average;
batch sizes are a sparse exact histogram (``size -> count``), which is
cheap because sizes are bounded by the coalescer's ``max_batch_size``.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Any, Deque, Dict, Optional


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class ServerStats:
    """Request/batch/latency accounting for one server instance."""

    #: Ring capacity for per-request latencies (recent-window percentiles).
    LATENCY_WINDOW = 4096

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._started = clock()
        self.started_unix = time.time()
        self.requests_total = 0
        self.predict_requests = 0
        self.predict_blocks = 0
        self.errors = 0
        self.batches = 0
        self.batched_blocks = 0
        self.batch_sizes: Counter = Counter()
        self._latencies: Deque[float] = deque(maxlen=self.LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, path: str, latency_seconds: float,
                       num_blocks: int = 0, error: bool = False) -> None:
        self.requests_total += 1
        if error:
            self.errors += 1
        if path == "/predict" and not error:
            self.predict_requests += 1
            self.predict_blocks += num_blocks
            self._latencies.append(latency_seconds)

    def record_batch(self, num_blocks: int, num_requests: int) -> None:
        self.batches += 1
        self.batched_blocks += num_blocks
        self.batch_sizes[num_blocks] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self, cache: Optional[Any] = None) -> Dict[str, Any]:
        """The plain-data payload ``/stats`` serves."""
        uptime = max(self.uptime_seconds, 1e-9)
        latencies = sorted(self._latencies)
        payload: Dict[str, Any] = {
            "uptime_seconds": self.uptime_seconds,
            "started_unix": self.started_unix,
            "requests_total": self.requests_total,
            "predict_requests": self.predict_requests,
            "predict_blocks": self.predict_blocks,
            "errors": self.errors,
            "qps": self.predict_requests / uptime,
            "blocks_per_sec": self.predict_blocks / uptime,
            "batches": self.batches,
            "mean_batch_size": (self.batched_blocks / self.batches
                                if self.batches else 0.0),
            "batch_size_histogram": {str(size): count for size, count
                                     in sorted(self.batch_sizes.items())},
            "latency_ms": {
                "count": len(latencies),
                "p50": percentile(latencies, 0.50) * 1e3,
                "p99": percentile(latencies, 0.99) * 1e3,
                "max": (latencies[-1] * 1e3 if latencies else 0.0),
            },
        }
        if cache is not None:
            payload["result_cache"] = cache.stats()
        return payload
