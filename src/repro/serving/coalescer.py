"""Request coalescing: concurrent predict calls become engine megabatches.

The engine's megabatch kernels (PR 6) are an order of magnitude faster than
per-block simulation, but only when fed batches — and an HTTP server
naturally receives single small requests.  The :class:`RequestCoalescer`
closes that gap: concurrent ``submit()`` calls enqueue their blocks, and a
single worker drains the queue into one batched execution at a time under a
``max_batch_size`` / ``max_wait`` policy:

* the worker picks up a new batch the moment a request arrives;
* it holds the batch open up to ``max_wait`` seconds for company (skipped
  once ``max_batch_size`` blocks are pending — a full batch leaves early);
* while a batch *executes* (in a thread-pool executor, so the event loop
  keeps serving health checks), new arrivals accumulate — so under load the
  effective batch size adapts upward with no tuning.

Results are matched back to requests by construction (each request owns a
future covering its slice of the batch), so responses are deterministic and
independent of how requests happened to be batched — the engine paths are
bit-identical batched or not.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Sequence, Tuple


class RequestCoalescer:
    """Batches concurrent ``submit()`` calls into single batched executions.

    Args:
        run_batch: Synchronous ``(items) -> sequence of floats`` executed in
            the event loop's default executor; one call per coalesced batch.
        max_batch_size: Most items per execution.  A single request larger
            than this still executes (in one oversized batch of its own).
        max_wait: Seconds the worker holds a non-full batch open for more
            requests.  ``0`` executes whatever is pending immediately.
        on_batch: Optional ``(num_items, num_requests)`` callback per
            executed batch (the stats hook).
    """

    def __init__(self, run_batch: Callable[[List[Any]], Sequence[float]],
                 max_batch_size: int = 64, max_wait: float = 0.002,
                 on_batch: Optional[Callable[[int, int], None]] = None) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self._run_batch = run_batch
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.on_batch = on_batch
        self._pending: Deque[Tuple[List[Any], asyncio.Future]] = deque()
        self._pending_items = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._worker: Optional[asyncio.Task] = None
        self._closing = False
        self.batches_executed = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def pending_items(self) -> int:
        return self._pending_items

    async def submit(self, items: Sequence[Any]) -> List[float]:
        """Enqueue ``items`` and await their results (in input order)."""
        if self._closing:
            raise RuntimeError("coalescer is draining; not accepting new requests")
        items = list(items)
        if not items:
            return []
        loop = asyncio.get_running_loop()
        if self._worker is None or self._worker.done():
            self._wakeup = asyncio.Event()
            self._worker = loop.create_task(self._serve())
        future: asyncio.Future = loop.create_future()
        self._pending.append((items, future))
        self._pending_items += len(items)
        self._wakeup.set()
        return list(await future)

    # ------------------------------------------------------------------
    # The single batch worker
    # ------------------------------------------------------------------
    async def _wait_for_company(self, loop: asyncio.AbstractEventLoop) -> None:
        """Hold the batch open up to ``max_wait`` or until it is full."""
        deadline = loop.time() + self.max_wait
        while (self._pending_items < self.max_batch_size and not self._closing):
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), remaining)
            except (asyncio.TimeoutError, TimeoutError):
                break

    def _take_batch(self) -> List[Tuple[List[Any], asyncio.Future]]:
        """Pop whole requests until the batch is full (always at least one)."""
        batch: List[Tuple[List[Any], asyncio.Future]] = []
        taken = 0
        while self._pending:
            items, _future = self._pending[0]
            if batch and taken + len(items) > self.max_batch_size:
                break
            batch.append(self._pending.popleft())
            taken += len(items)
            self._pending_items -= len(items)
        return batch

    async def _serve(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not self._pending:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            if self.max_wait > 0:
                await self._wait_for_company(loop)
            batch = self._take_batch()
            flat: List[Any] = []
            for items, _future in batch:
                flat.extend(items)
            self.batches_executed += 1
            if self.on_batch is not None:
                self.on_batch(len(flat), len(batch))
            try:
                values = list(await loop.run_in_executor(
                    None, self._run_batch, flat))
            except Exception as error:  # noqa: BLE001 - propagated per request
                for _items, future in batch:
                    if not future.done():
                        future.set_exception(error)
                continue
            if len(values) != len(flat):
                error = RuntimeError(
                    f"batch runner returned {len(values)} results for "
                    f"{len(flat)} items")
                for _items, future in batch:
                    if not future.done():
                        future.set_exception(error)
                continue
            offset = 0
            for items, future in batch:
                chunk = values[offset:offset + len(items)]
                offset += len(items)
                if not future.done():
                    future.set_result(chunk)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Refuse new submissions, finish everything pending, stop the worker."""
        self._closing = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._worker is not None and not self._worker.done():
            await self._worker
