"""The stdlib-only inference server: deployment bundles behind HTTP/JSON.

:class:`InferenceServer` binds a :class:`~repro.api.session.Session` (built
from a deployment bundle or a spec) to the shared
:class:`~repro.serving.http.JsonHttpServer` plumbing, speaking just enough
HTTP/1.1 for three endpoints:

* ``POST /predict`` — ``{"blocks": ["add rax, rbx; ..."]}`` in, predicted
  timings out.  Requests hitting the sharded result cache are answered
  inline; misses are parsed and funneled through the
  :class:`~repro.serving.coalescer.RequestCoalescer` so concurrent clients
  share engine megabatches.
* ``GET /healthz`` — liveness plus drain state.
* ``GET /stats`` — uptime, QPS, batch-size histogram, cache hit rate,
  p50/p99 latency, and the session's own engine counters.

Shutdown is graceful: the listener closes first, in-flight requests finish
through a coalescer drain, responses are written, and only then do
connections die.  Everything here is standard library — ``asyncio``,
``json``, ``threading`` — on top of the package itself.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.api.session import Session
from repro.api.specs import PredictSpec, ServeSpec
from repro.engine.binding import parameter_arrays_digest
from repro.isa.parser import ParseError, parse_block
from repro.serving.cache import ShardedResultCache
from repro.serving.coalescer import RequestCoalescer
# Re-exported for compatibility: these names lived here before the generic
# HTTP plumbing moved to repro.serving.http.
from repro.serving.http import (MAX_BODY_BYTES, MAX_HEADER_BYTES,  # noqa: F401
                                _STATUS_TEXT, JsonHttpServer, ServerHandle,
                                ServingError)
from repro.serving.stats import ServerStats


class InferenceServer(JsonHttpServer):
    """Serves one session's predictions over HTTP/JSON (see module doc)."""

    thread_name = "repro-serving"

    def __init__(self, session: Session, *, host: str = "127.0.0.1",
                 port: int = 8000, max_batch_size: int = 64,
                 max_batch_wait_ms: float = 2.0, cache_size: int = 4096,
                 log: Optional[Callable[[str], None]] = None) -> None:
        super().__init__(host=host, port=port, log=log)
        self.session = session
        self._table = session.load_table_or_default(
            getattr(session.spec, "table_path", None))
        self.table_digest = parameter_arrays_digest(
            session.adapter.arrays_from_table(self._table))
        self.cache = ShardedResultCache(shard_capacity=cache_size)
        self.stats = ServerStats()
        self.coalescer = RequestCoalescer(
            self._simulate_batch, max_batch_size=max_batch_size,
            max_wait=max_batch_wait_ms / 1e3,
            on_batch=self.stats.record_batch)

    # ------------------------------------------------------------------
    # Construction from specs / bundles
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Union[ServeSpec, Dict[str, Any]],
                  log: Optional[Callable[[str], None]] = None,
                  **overrides: Any) -> "InferenceServer":
        """Build server + session from a :class:`~repro.api.specs.ServeSpec`.

        With ``bundle_path`` the session comes from
        :meth:`Session.from_bundle` (serving the bundled table); otherwise a
        :class:`PredictSpec` session serves ``table_path`` or the default
        table.
        """
        import dataclasses

        if isinstance(spec, dict):
            payload = dict(spec)
            payload.update(overrides)
            spec = ServeSpec.from_dict(payload)
        elif overrides:
            spec = dataclasses.replace(spec, **overrides)
        spec.validate()
        if spec.bundle_path is not None:
            session = Session.from_bundle(
                spec.bundle_path, log=log,
                engine_workers=spec.engine_workers,
                engine_megabatch=spec.engine_megabatch)
        else:
            session = Session.from_spec(PredictSpec(
                target=spec.target, simulator=spec.simulator,
                table_path=spec.table_path,
                engine_workers=spec.engine_workers,
                engine_megabatch=spec.engine_megabatch), log=log)
        return cls(session, host=spec.host, port=spec.port,
                   max_batch_size=spec.max_batch_size,
                   max_batch_wait_ms=spec.max_batch_wait_ms,
                   cache_size=spec.cache_size, log=log)

    # ------------------------------------------------------------------
    # Prediction path
    # ------------------------------------------------------------------
    def _simulate_batch(self, blocks: List[Any]) -> List[float]:
        """Synchronous batch prediction; runs in the loop's executor."""
        return [float(value)
                for value in self.session.predict(blocks, self._table)]

    @staticmethod
    def _cache_key(text: str) -> str:
        return " ".join(text.split())

    async def _predict(self, texts: List[str]) -> Dict[str, Any]:
        timings: List[Optional[float]] = [None] * len(texts)
        miss_positions: List[int] = []
        miss_keys: List[str] = []
        miss_blocks: List[Any] = []
        for position, text in enumerate(texts):
            if not isinstance(text, str):
                raise ServingError(
                    400, f"blocks[{position}]: expected a string, "
                         f"got {type(text).__name__}")
            key = self._cache_key(text)
            cached = self.cache.get(self.table_digest, key)
            if cached is not None:
                timings[position] = cached
                continue
            try:
                block = parse_block(text, self.session.adapter.opcode_table)
            except ParseError as error:
                raise ServingError(400, f"blocks[{position}]: {error}")
            miss_positions.append(position)
            miss_keys.append(key)
            miss_blocks.append(block)
        if miss_blocks:
            try:
                values = await self.coalescer.submit(miss_blocks)
            except RuntimeError as error:
                raise ServingError(503, str(error))
            for position, key, value in zip(miss_positions, miss_keys, values):
                timings[position] = value
                self.cache.put(self.table_digest, key, value)
        return {
            "timings": timings,
            "table_digest": self.table_digest,
            "cache_hits": len(texts) - len(miss_blocks),
        }

    # ------------------------------------------------------------------
    # Endpoint payloads
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": self.stats.uptime_seconds,
            "target": self.session.target_name,
            "simulator": self.session.spec.simulator,
            "table_digest": self.table_digest,
            "draining": self._draining,
        }

    def stats_payload(self) -> Dict[str, Any]:
        payload = self.stats.snapshot(self.cache)
        payload["table_digest"] = self.table_digest
        payload["draining"] = self._draining
        payload["coalescer"] = {
            "max_batch_size": self.coalescer.max_batch_size,
            "max_batch_wait_ms": self.coalescer.max_wait * 1e3,
            "batches_executed": self.coalescer.batches_executed,
        }
        payload["session"] = self.session.stats()
        return payload

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": f"{path} only supports GET"}
            return 200, self.health_payload()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": f"{path} only supports GET"}
            return 200, self.stats_payload()
        if path == "/predict":
            if method != "POST":
                return 405, {"error": f"{path} only supports POST"}
            if self._draining:
                return 503, {"error": "server is draining"}
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {"error": f"request body is not JSON: {error}"}
            if not isinstance(payload, dict) or "blocks" not in payload:
                return 400, {"error": 'request body must be an object with '
                                      'a "blocks" list'}
            texts = payload["blocks"]
            if not isinstance(texts, list):
                return 400, {"error": '"blocks" must be a list of strings'}
            try:
                return 200, await self._predict(texts)
            except ServingError as error:
                return error.status, {"error": str(error)}
        return 404, {"error": f"unknown path {path!r} (have /predict, "
                              f"/healthz, /stats)"}

    # ------------------------------------------------------------------
    # JsonHttpServer hooks
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return self.stats._clock()

    def _record_request(self, path: str, seconds: float,
                        payload: Any, status: int) -> None:
        num_blocks = (len(payload.get("timings", []))
                      if isinstance(payload, dict) else 0)
        self.stats.record_request(path, seconds, num_blocks=num_blocks,
                                  error=status >= 400)

    async def _on_drain(self) -> None:
        # Refuse new predict work but finish everything already coalesced.
        await self.coalescer.drain()

    def _startup_message(self) -> str:
        return (f"serving {self.session.target_name}/"
                f"{self.session.spec.simulator} on "
                f"http://{self.host}:{self.port} "
                f"(table {self.table_digest[:12]}...)")
