"""The stdlib-only inference server: deployment bundles behind HTTP/JSON.

:class:`InferenceServer` binds a :class:`~repro.api.session.Session` (built
from a deployment bundle or a spec) to an ``asyncio`` TCP server speaking
just enough HTTP/1.1 for three endpoints:

* ``POST /predict`` — ``{"blocks": ["add rax, rbx; ..."]}`` in, predicted
  timings out.  Requests hitting the sharded result cache are answered
  inline; misses are parsed and funneled through the
  :class:`~repro.serving.coalescer.RequestCoalescer` so concurrent clients
  share engine megabatches.
* ``GET /healthz`` — liveness plus drain state.
* ``GET /stats`` — uptime, QPS, batch-size histogram, cache hit rate,
  p50/p99 latency, and the session's own engine counters.

Shutdown is graceful: the listener closes first, in-flight requests finish
through a coalescer drain, responses are written, and only then do
connections die.  Everything here is standard library — ``asyncio``,
``json``, ``threading`` — on top of the package itself.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.api.session import Session
from repro.api.specs import PredictSpec, ServeSpec
from repro.engine.binding import parameter_arrays_digest
from repro.isa.parser import ParseError, parse_block
from repro.serving.cache import ShardedResultCache
from repro.serving.coalescer import RequestCoalescer
from repro.serving.stats import ServerStats

#: Request bodies above this are refused with 413 (a DoS guard, not a limit
#: any legitimate block corpus approaches).
MAX_BODY_BYTES = 8 << 20

#: Longest request line / header section we accept.
MAX_HEADER_BYTES = 64 << 10

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServingError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServerHandle:
    """A running server on a background thread (see ``start_in_thread``)."""

    def __init__(self, server: "InferenceServer",
                 thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Request graceful shutdown and wait for the server thread."""
        self.server.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("server thread did not stop within "
                               f"{timeout} seconds")


class InferenceServer:
    """Serves one session's predictions over HTTP/JSON (see module doc)."""

    def __init__(self, session: Session, *, host: str = "127.0.0.1",
                 port: int = 8000, max_batch_size: int = 64,
                 max_batch_wait_ms: float = 2.0, cache_size: int = 4096,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.session = session
        self.host = host
        self.requested_port = port
        #: The bound port — equals ``requested_port`` unless that was 0
        #: (ephemeral); set once the listening socket exists.
        self.port: Optional[int] = None
        self.log = log or (lambda message: None)
        self._table = session.load_table_or_default(
            getattr(session.spec, "table_path", None))
        self.table_digest = parameter_arrays_digest(
            session.adapter.arrays_from_table(self._table))
        self.cache = ShardedResultCache(shard_capacity=cache_size)
        self.stats = ServerStats()
        self.coalescer = RequestCoalescer(
            self._simulate_batch, max_batch_size=max_batch_size,
            max_wait=max_batch_wait_ms / 1e3,
            on_batch=self.stats.record_batch)
        self._draining = False
        self._active_requests = 0
        self._connections: Set[asyncio.StreamWriter] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Construction from specs / bundles
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Union[ServeSpec, Dict[str, Any]],
                  log: Optional[Callable[[str], None]] = None,
                  **overrides: Any) -> "InferenceServer":
        """Build server + session from a :class:`~repro.api.specs.ServeSpec`.

        With ``bundle_path`` the session comes from
        :meth:`Session.from_bundle` (serving the bundled table); otherwise a
        :class:`PredictSpec` session serves ``table_path`` or the default
        table.
        """
        import dataclasses

        if isinstance(spec, dict):
            payload = dict(spec)
            payload.update(overrides)
            spec = ServeSpec.from_dict(payload)
        elif overrides:
            spec = dataclasses.replace(spec, **overrides)
        spec.validate()
        if spec.bundle_path is not None:
            session = Session.from_bundle(
                spec.bundle_path, log=log,
                engine_workers=spec.engine_workers,
                engine_megabatch=spec.engine_megabatch)
        else:
            session = Session.from_spec(PredictSpec(
                target=spec.target, simulator=spec.simulator,
                table_path=spec.table_path,
                engine_workers=spec.engine_workers,
                engine_megabatch=spec.engine_megabatch), log=log)
        return cls(session, host=spec.host, port=spec.port,
                   max_batch_size=spec.max_batch_size,
                   max_batch_wait_ms=spec.max_batch_wait_ms,
                   cache_size=spec.cache_size, log=log)

    # ------------------------------------------------------------------
    # Prediction path
    # ------------------------------------------------------------------
    def _simulate_batch(self, blocks: List[Any]) -> List[float]:
        """Synchronous batch prediction; runs in the loop's executor."""
        return [float(value)
                for value in self.session.predict(blocks, self._table)]

    @staticmethod
    def _cache_key(text: str) -> str:
        return " ".join(text.split())

    async def _predict(self, texts: List[str]) -> Dict[str, Any]:
        timings: List[Optional[float]] = [None] * len(texts)
        miss_positions: List[int] = []
        miss_keys: List[str] = []
        miss_blocks: List[Any] = []
        for position, text in enumerate(texts):
            if not isinstance(text, str):
                raise ServingError(
                    400, f"blocks[{position}]: expected a string, "
                         f"got {type(text).__name__}")
            key = self._cache_key(text)
            cached = self.cache.get(self.table_digest, key)
            if cached is not None:
                timings[position] = cached
                continue
            try:
                block = parse_block(text, self.session.adapter.opcode_table)
            except ParseError as error:
                raise ServingError(400, f"blocks[{position}]: {error}")
            miss_positions.append(position)
            miss_keys.append(key)
            miss_blocks.append(block)
        if miss_blocks:
            try:
                values = await self.coalescer.submit(miss_blocks)
            except RuntimeError as error:
                raise ServingError(503, str(error))
            for position, key, value in zip(miss_positions, miss_keys, values):
                timings[position] = value
                self.cache.put(self.table_digest, key, value)
        return {
            "timings": timings,
            "table_digest": self.table_digest,
            "cache_hits": len(texts) - len(miss_blocks),
        }

    # ------------------------------------------------------------------
    # Endpoint payloads
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": self.stats.uptime_seconds,
            "target": self.session.target_name,
            "simulator": self.session.spec.simulator,
            "table_digest": self.table_digest,
            "draining": self._draining,
        }

    def stats_payload(self) -> Dict[str, Any]:
        payload = self.stats.snapshot(self.cache)
        payload["table_digest"] = self.table_digest
        payload["draining"] = self._draining
        payload["coalescer"] = {
            "max_batch_size": self.coalescer.max_batch_size,
            "max_batch_wait_ms": self.coalescer.max_wait * 1e3,
            "batches_executed": self.coalescer.batches_executed,
        }
        payload["session"] = self.session.stats()
        return payload

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": f"{path} only supports GET"}
            return 200, self.health_payload()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": f"{path} only supports GET"}
            return 200, self.stats_payload()
        if path == "/predict":
            if method != "POST":
                return 405, {"error": f"{path} only supports POST"}
            if self._draining:
                return 503, {"error": "server is draining"}
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {"error": f"request body is not JSON: {error}"}
            if not isinstance(payload, dict) or "blocks" not in payload:
                return 400, {"error": 'request body must be an object with '
                                      'a "blocks" list'}
            texts = payload["blocks"]
            if not isinstance(texts, list):
                return 400, {"error": '"blocks" must be a list of strings'}
            try:
                return 200, await self._predict(texts)
            except ServingError as error:
                return error.status, {"error": str(error)}
        return 404, {"error": f"unknown path {path!r} (have /predict, "
                              f"/healthz, /stats)"}

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One HTTP/1.1 request, or ``None`` on clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise ServingError(400, "truncated HTTP request")
        except asyncio.LimitOverrunError:
            raise ServingError(400, "request headers too large")
        if len(head) > MAX_HEADER_BYTES:
            raise ServingError(400, "request headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ServingError(400, f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _separator, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServingError(400, "malformed Content-Length header")
        if content_length > MAX_BODY_BYTES:
            raise ServingError(
                413, f"request body of {content_length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path.split("?", 1)[0], headers, body

    @staticmethod
    def _encode_response(status: int, payload: Dict[str, Any],
                         keep_alive: bool) -> bytes:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                f"\r\n")
        return head.encode("latin-1") + body

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServingError as error:
                    writer.write(self._encode_response(
                        error.status, {"error": str(error)}, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (headers.get("connection", "keep-alive").lower()
                              != "close")
                self._active_requests += 1
                started = self.stats._clock()
                try:
                    status, payload = await self._dispatch(method, path, body)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - last-resort 500
                    status, payload = 500, {"error": f"internal error: {error}"}
                finally:
                    self._active_requests -= 1
                num_blocks = (len(payload.get("timings", []))
                              if isinstance(payload, dict) else 0)
                self.stats.record_request(
                    path, self.stats._clock() - started,
                    num_blocks=num_blocks, error=status >= 400)
                if self._draining:
                    keep_alive = False
                writer.write(self._encode_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError here means the loop is tearing the handler
                # down during shutdown; the connection is closed either way.
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Trigger graceful shutdown (safe to call from any thread)."""
        loop, stop_event = self._loop, self._stop_event
        if loop is None or stop_event is None:
            return
        if loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)

    async def _serve_async(
            self, ready: Optional[threading.Event] = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port)
        self.port = server.sockets[0].getsockname()[1]
        if threading.current_thread() is threading.main_thread():
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(signum,
                                                  self._stop_event.set)
                except (NotImplementedError, RuntimeError):
                    break
        self.log(f"serving {self.session.target_name}/"
                 f"{self.session.spec.simulator} on "
                 f"http://{self.host}:{self.port} "
                 f"(table {self.table_digest[:12]}...)")
        if ready is not None:
            ready.set()
        try:
            await self._stop_event.wait()
        finally:
            # Graceful shutdown: stop accepting, refuse new predict work,
            # finish everything already submitted, then close connections.
            self._draining = True
            server.close()
            await server.wait_closed()
            await self.coalescer.drain()
            deadline = self._loop.time() + 10.0
            while self._active_requests > 0 and self._loop.time() < deadline:
                await asyncio.sleep(0.005)
            for writer in list(self._connections):
                writer.close()
            self.log("server stopped")

    def serve(self) -> None:
        """Run the server on this thread until SIGINT/SIGTERM (blocking)."""
        try:
            asyncio.run(self._serve_async())
        except KeyboardInterrupt:
            pass

    def start_in_thread(self) -> ServerHandle:
        """Run the server on a daemon thread; returns once the port is bound."""
        ready = threading.Event()

        def _run() -> None:
            try:
                asyncio.run(self._serve_async(ready))
            except BaseException as error:  # noqa: BLE001 - reported to caller
                self._startup_error = error
            finally:
                ready.set()

        thread = threading.Thread(target=_run, name="repro-serving",
                                  daemon=True)
        thread.start()
        if not ready.wait(timeout=30.0):
            raise RuntimeError("server did not start within 30 seconds")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}")
        return ServerHandle(self, thread)
