"""The serving result cache: one LRU shard per parameter-table digest.

The server caches ``block text -> timing`` so a repeated query skips
parsing, compilation, *and* simulation.  Shards are keyed by the table's
content digest — the same identity the engine's own result cache uses — so
a server that hot-swaps tables (or a future multi-table server) never mixes
timings across tables, and dropping one table's results is dropping its
shard.  Shards themselves are LRU-bounded, so a bounded number of historic
tables is retained.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.engine.binding import LRUCache


class ShardedResultCache:
    """``(table_digest, key) -> value`` with per-digest LRU shards."""

    def __init__(self, shard_capacity: int = 4096, max_shards: int = 8) -> None:
        if shard_capacity < 1:
            raise ValueError("shard_capacity must be >= 1")
        if max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        self.shard_capacity = shard_capacity
        self.max_shards = max_shards
        self._shards: "OrderedDict[str, LRUCache]" = OrderedDict()
        #: Hit/miss totals of shards that have been evicted, so the global
        #: hit rate survives shard turnover.
        self._retired_hits = 0
        self._retired_misses = 0

    def shard(self, table_digest: str) -> LRUCache:
        """The live shard for ``table_digest`` (created on first use)."""
        cache = self._shards.get(table_digest)
        if cache is None:
            cache = LRUCache(self.shard_capacity)
            self._shards[table_digest] = cache
            while len(self._shards) > self.max_shards:
                _digest, retired = self._shards.popitem(last=False)
                self._retired_hits += retired.hits
                self._retired_misses += retired.misses
        else:
            self._shards.move_to_end(table_digest)
        return cache

    def get(self, table_digest: str, key: Any) -> Optional[Any]:
        return self.shard(table_digest).get(key)

    def put(self, table_digest: str, key: Any, value: Any) -> None:
        self.shard(table_digest).put(key, value)

    def stats(self) -> Dict[str, Any]:
        hits = self._retired_hits + sum(shard.hits for shard in self._shards.values())
        misses = self._retired_misses + sum(shard.misses
                                            for shard in self._shards.values())
        lookups = hits + misses
        return {
            "shards": len(self._shards),
            "entries": sum(len(shard) for shard in self._shards.values()),
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
