"""repro.serving — prediction-as-a-service on top of the Session API.

A tuned parameter table's whole value is cheap repeated prediction; this
package wraps the warm :class:`~repro.api.session.Session` engine caches in
a long-running, stdlib-only inference server:

* :class:`InferenceServer` (:mod:`repro.serving.server`) — an ``asyncio``
  HTTP/JSON server with ``/predict``, ``/healthz``, and ``/stats``
  endpoints, loadable from a deployment bundle
  (:mod:`repro.api.bundle`) or a spec, with graceful shutdown that drains
  in-flight requests;
* :class:`RequestCoalescer` (:mod:`repro.serving.coalescer`) — batches
  concurrent ``/predict`` requests into engine megabatches under a
  max-batch-size / max-wait policy, with per-request results matched back
  deterministically;
* :class:`ShardedResultCache` (:mod:`repro.serving.cache`) — LRU result
  caching sharded per table digest;
* :class:`ServerStats` (:mod:`repro.serving.stats`) — uptime, QPS,
  batch-size histogram, cache hit rate, p50/p99 latency;
* :class:`ServingClient` / :func:`run_load` (:mod:`repro.serving.client`) —
  a tiny stdlib client and the load generator behind
  ``examples/serving_client.py`` and the ``serving_latency`` benchmark.

Quickstart::

    from repro.api import ServeSpec
    from repro.serving import InferenceServer

    server = InferenceServer.from_spec(ServeSpec(bundle_path="haswell.bundle"))
    handle = server.start_in_thread()      # or server.serve() to block
    ...
    handle.stop()                          # graceful: drains in-flight work

No dependencies beyond the standard library and the package itself.
"""

from repro.serving.cache import ShardedResultCache
from repro.serving.client import LoadReport, ServingClient, run_load
from repro.serving.coalescer import RequestCoalescer
from repro.serving.server import InferenceServer, ServerHandle
from repro.serving.stats import ServerStats

__all__ = [
    "InferenceServer",
    "ServerHandle",
    "RequestCoalescer",
    "ShardedResultCache",
    "ServerStats",
    "ServingClient",
    "LoadReport",
    "run_load",
]
