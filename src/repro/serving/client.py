"""A tiny stdlib client for the inference server, plus a load generator.

:class:`ServingClient` wraps :mod:`http.client` (one keep-alive connection,
JSON in/out) and :func:`run_load` drives N concurrent clients against a
server, returning a :class:`LoadReport` with QPS and latency percentiles.
Both ``examples/serving_client.py`` and the ``serving_latency`` benchmark
scenario are built on this module, so the numbers they report come from the
same measurement code.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.serving.stats import percentile


class ServingClient:
    """One keep-alive HTTP/JSON connection to an inference server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        body = None if payload is None else json.dumps(payload)
        try:
            self._connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"})
            response = self._connection.getresponse()
            data = json.loads(response.read().decode("utf-8"))
        except Exception:
            # Drop the (possibly half-closed) connection so the next call
            # reconnects instead of failing on a stale socket.
            self.close()
            raise
        if response.status >= 400:
            raise RuntimeError(f"{method} {path} -> {response.status}: "
                               f"{data.get('error', data)}")
        return data

    def predict(self, blocks: Sequence[str]) -> List[float]:
        """Predicted timings of ``blocks`` (assembly text, ``;``-separated)."""
        return self._request("POST", "/predict",
                             {"blocks": list(blocks)})["timings"]

    def predict_raw(self, blocks: Sequence[str]) -> Dict[str, Any]:
        """The full ``/predict`` payload (timings, digest, cache hits)."""
        return self._request("POST", "/predict", {"blocks": list(blocks)})

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` run (plain data)."""

    num_clients: int
    requests: int
    blocks: int
    elapsed_seconds: float
    #: Per-request wall-clock latencies, in seconds, in completion order.
    latencies: List[float] = field(default_factory=list)
    #: request index -> timings, so callers can verify responses.
    results: Dict[int, List[float]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.requests / max(self.elapsed_seconds, 1e-9)

    @property
    def blocks_per_sec(self) -> float:
        return self.blocks / max(self.elapsed_seconds, 1e-9)

    def latency_ms(self, fraction: float) -> float:
        return percentile(sorted(self.latencies), fraction) * 1e3

    def summary(self) -> Dict[str, Any]:
        return {
            "num_clients": self.num_clients,
            "requests": self.requests,
            "blocks": self.blocks,
            "elapsed_seconds": self.elapsed_seconds,
            "qps": self.qps,
            "blocks_per_sec": self.blocks_per_sec,
            "latency_ms": {"p50": self.latency_ms(0.50),
                           "p99": self.latency_ms(0.99)},
            "errors": len(self.errors),
        }


def run_load(host: str, port: int, requests: Sequence[Sequence[str]],
             num_clients: int = 8, timeout: float = 30.0) -> LoadReport:
    """Send ``requests`` (each a list of block texts) from concurrent clients.

    Requests are dealt round-robin to ``num_clients`` threads, each with its
    own keep-alive connection.  Per-request results are kept (indexed by the
    request's position in ``requests``) so callers can check responses
    against ground truth regardless of how the server batched them.
    """
    requests = [list(blocks) for blocks in requests]
    num_clients = max(1, min(num_clients, len(requests) or 1))
    report = LoadReport(num_clients=num_clients, requests=0, blocks=0,
                        elapsed_seconds=0.0)
    lock = threading.Lock()
    barrier = threading.Barrier(num_clients + 1)

    def _client(worker: int) -> None:
        client = ServingClient(host, port, timeout=timeout)
        barrier.wait()
        try:
            for index in range(worker, len(requests), num_clients):
                blocks = requests[index]
                started = time.perf_counter()
                try:
                    timings = client.predict(blocks)
                except Exception as error:  # noqa: BLE001 - reported per req
                    with lock:
                        report.errors.append(f"request {index}: {error}")
                    continue
                latency = time.perf_counter() - started
                with lock:
                    report.requests += 1
                    report.blocks += len(blocks)
                    report.latencies.append(latency)
                    report.results[index] = [float(v) for v in timings]
        finally:
            client.close()

    threads = [threading.Thread(target=_client, args=(worker,), daemon=True)
               for worker in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    return report
