"""CI smoke: boot a server, round-trip one request, shut down gracefully.

Run as ``python -m repro.serving.smoke``.  Exercises the whole serving
stack end to end in a few seconds: ephemeral-port boot, ``/healthz``,
a ``/predict`` round trip checked bit-identical against the direct
``Session.predict`` path, ``/stats``, and a graceful stop.
"""

from __future__ import annotations

import sys

from repro.api import PredictSpec, ServeSpec, Session
from repro.isa.parser import parse_block
from repro.serving.client import ServingClient
from repro.serving.server import InferenceServer

BLOCKS = [
    "addq %rax, %rbx; imulq %rbx, %rcx",
    "movq 16(%rsp), %rax; addq %rax, %rbx; movq %rbx, 24(%rsp)",
    "xorq %rax, %rax",
]


def main() -> int:
    spec = ServeSpec(target="haswell", simulator="mca", port=0,
                     max_batch_wait_ms=1.0)
    server = InferenceServer.from_spec(spec,
                                       log=lambda m: print(f"[server] {m}"))
    handle = server.start_in_thread()
    try:
        with ServingClient(handle.host, handle.port) as client:
            health = client.healthz()
            assert health["status"] == "ok", health
            served = [float(v) for v in client.predict(BLOCKS)]
            stats = client.stats()
            assert stats["predict_requests"] >= 1, stats
    finally:
        handle.stop()

    session = Session.from_spec(PredictSpec(target="haswell",
                                            simulator="mca"))
    blocks = [parse_block(text.replace(";", "\n"),
                          session.adapter.opcode_table)
              for text in BLOCKS]
    expected = [float(v) for v in session.predict(blocks)]
    assert served == expected, (served, expected)
    print(f"serving smoke ok: {len(BLOCKS)} blocks round-tripped "
          f"bit-identically, graceful stop clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
