"""The uniform ``BENCH_<suite>.json`` result schema.

Every runner invocation emits one payload with this shape::

    {
      "schema_version": 1,
      "suite": "smoke",                  # file is BENCH_<suite>.json
      "tier": "smoke",                   # smoke | quick | full
      "workers": 0,                      # engine worker processes
      "environment": {                   # reproducibility fingerprint
        "python": "3.12.3", "platform": "...", "numpy": "1.26.4",
        "cpu_count": 8, "git_sha": "..." | null
      },
      "scenarios": {
        "<name>": {
          "name": "...", "description": "...",
          "tier": "smoke", "seed": 0, "workers": 0,
          "uarches": ["haswell", ...] | null,
          "scale": {"num_blocks": ..., ...},     # ExperimentScale.describe()
          "rounds": 1, "warmup": 0,
          "wall_time_seconds": {"rounds": [..], "min": .., "mean": ..},
          "metrics": {...},                      # scenario-specific, JSON-pure
          "peak_rss_bytes": ...                  # minor v1: process high-water RSS
        }
      },
      "total_wall_time_seconds": ...,
      "schema_minor": 1                          # optional-field revision
    }

Minor revisions add *optional* fields only: ``schema_minor`` (top level)
and ``peak_rss_bytes`` (per scenario entry, the ``ru_maxrss`` high-water
mark after the scenario's rounds) arrived in minor version 1.  They are
deliberately absent from the required-key tuples below so payloads written
before the revision — committed baselines in particular — still validate,
and ``repro.bench compare`` never gates on them (entry-level keys are
invisible to the metric flattener).  Breaking shape changes bump
:data:`SCHEMA_VERSION` instead.

:func:`validate_payload` checks this structure and is used by the test
suite and by ``repro.bench compare`` before gating regressions.
"""

from __future__ import annotations

from typing import Any, Dict, List

SCHEMA_VERSION = 1
#: Revision counter for backwards-compatible (optional-field) additions.
SCHEMA_MINOR_VERSION = 1

_TOP_LEVEL_KEYS = ("schema_version", "suite", "tier", "workers", "environment",
                   "scenarios", "total_wall_time_seconds")
_ENVIRONMENT_KEYS = ("python", "platform", "numpy", "cpu_count")
_SCENARIO_KEYS = ("name", "description", "tier", "seed", "workers", "uarches",
                  "scale", "rounds", "warmup", "wall_time_seconds", "metrics")
_WALL_TIME_KEYS = ("rounds", "min", "mean")


class SchemaError(ValueError):
    """A result payload does not conform to the BENCH_* schema."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = problems
        super().__init__("; ".join(problems))


def _check_keys(mapping: Any, keys, where: str, problems: List[str]) -> bool:
    if not isinstance(mapping, dict):
        problems.append(f"{where}: expected an object, got {type(mapping).__name__}")
        return False
    for key in keys:
        if key not in mapping:
            problems.append(f"{where}: missing key {key!r}")
    return True


def collect_problems(payload: Any) -> List[str]:
    """Every schema violation in ``payload`` (empty list means valid)."""
    problems: List[str] = []
    if not _check_keys(payload, _TOP_LEVEL_KEYS, "payload", problems):
        return problems
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"payload: schema_version {payload.get('schema_version')!r} "
                        f"!= {SCHEMA_VERSION}")
    _check_keys(payload.get("environment"), _ENVIRONMENT_KEYS, "environment", problems)
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("scenarios: expected a non-empty object")
        return problems
    for name, entry in scenarios.items():
        where = f"scenarios[{name!r}]"
        if not _check_keys(entry, _SCENARIO_KEYS, where, problems):
            continue
        if entry.get("name") != name:
            problems.append(f"{where}: name field {entry.get('name')!r} != key")
        wall = entry.get("wall_time_seconds")
        if _check_keys(wall, _WALL_TIME_KEYS, f"{where}.wall_time_seconds", problems):
            rounds = wall.get("rounds")
            if not isinstance(rounds, list) or not rounds:
                problems.append(f"{where}.wall_time_seconds.rounds: expected a "
                                f"non-empty list")
    return problems


def validate_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``payload`` unchanged, raising :class:`SchemaError` if invalid."""
    problems = collect_problems(payload)
    if problems:
        raise SchemaError(problems)
    return payload


def jsonify(value: Any) -> Any:
    """Coerce scenario metrics to JSON-pure data.

    Handles numpy scalars/arrays, tuples, dataclass-style objects (via
    ``__dict__``), and mapping keys that are not strings.
    """
    import numpy as np

    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return jsonify(vars(value))
    return str(value)
