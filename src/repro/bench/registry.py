"""Scenario registry: every paper experiment as a first-class, runnable unit.

A :class:`Scenario` bundles what used to live in an ad-hoc ``benchmarks/``
script: a stable name, the microarchitectures it parametrizes over, per-tier
scale presets (smoke / quick / full), and a run callable that returns plain
metric data.  Scenarios are declared with the :func:`scenario` decorator and
collected in a :class:`ScenarioRegistry`; the default registry is what
``python -m repro.bench`` and the pytest harness discover.

The run callable receives a :class:`ScenarioContext` carrying the resolved
scale, the worker count for the simulation engine's parallel path, and a
dataset cache shared across scenarios in one runner invocation (the
equivalent of the old session-scoped ``haswell_dataset`` fixture).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.eval.experiments import SCALE_TIERS, ExperimentScale


@dataclass
class ScenarioContext:
    """Everything a scenario's run callable needs, resolved by the runner."""

    tier: str
    scale: ExperimentScale
    uarch: Optional[str] = None
    workers: int = 0
    #: Shared ``(uarch, num_blocks, seed) -> BasicBlockDataset`` cache.
    dataset_cache: Dict[Tuple[str, int, int], Any] = field(default_factory=dict)

    @property
    def seed(self) -> int:
        return self.scale.seed

    def by_tier(self, **values: Any) -> Any:
        """Pick a value per tier, e.g. ``ctx.by_tier(smoke=3, quick=8, full=10)``."""
        return values[self.tier]

    def dataset(self, uarch: Optional[str] = None, num_blocks: Optional[int] = None,
                seed: Optional[int] = None):
        """A measured dataset, memoized across scenarios in this run."""
        from repro.bhive import build_dataset

        uarch = uarch or self.uarch or "haswell"
        num_blocks = self.scale.num_blocks if num_blocks is None else num_blocks
        seed = self.scale.seed if seed is None else seed
        key = (uarch, num_blocks, seed)
        if key not in self.dataset_cache:
            self.dataset_cache[key] = build_dataset(uarch, num_blocks=num_blocks, seed=seed)
        return self.dataset_cache[key]

    def adapter(self, simulator: str = "mca", uarch_name: Optional[str] = None,
                **kwargs):
        """A simulator adapter resolved through the :mod:`repro.api` registries.

        Any registered simulator key works (``"mca"``, ``"llvm_sim"``, or an
        entry-point plugin); the adapter's engine gets this run's workers.
        """
        from repro.api.registries import SIMULATORS, TARGETS

        kwargs.setdefault("engine_workers", self.workers)
        return SIMULATORS.get(simulator).create_adapter(
            TARGETS.get(uarch_name or self.uarch or "haswell"), **kwargs)

    def session(self, spec=None, **overrides):
        """A :class:`repro.api.Session` for this run.

        When built from keyword arguments or a dict, ``engine_workers``
        defaults to this run's ``--workers`` and ``target`` to the scenario's
        uarch.  An explicit spec object is taken verbatim — a field the
        caller set is never overridden by the run defaults.
        """
        from repro.api import Session

        if spec is None or isinstance(spec, dict):
            payload = dict(spec or {})
            payload.update(overrides)
            payload.setdefault("engine_workers", self.workers)
            if self.uarch is not None:
                payload.setdefault("target", self.uarch)
            return Session.from_spec(payload)
        return Session.from_spec(spec, **overrides)

    def engine(self, simulator: str = "mca", **kwargs):
        """A standalone simulation engine honoring this run's ``--workers``."""
        from repro.api.registries import SIMULATORS

        kwargs.setdefault("num_workers", self.workers)
        plugin = SIMULATORS.get(simulator)
        if plugin.engine_factory is None:
            raise ValueError(f"simulator {simulator!r} does not provide a "
                             f"standalone engine factory")
        return plugin.engine_factory(**kwargs)

    def mca_adapter(self, uarch_name: Optional[str] = None, **kwargs):
        """Back-compat alias for ``adapter("mca", ...)``."""
        return self.adapter("mca", uarch_name, **kwargs)

    def mca_engine(self, **kwargs):
        """Back-compat alias for ``engine("mca", ...)``."""
        return self.engine("mca", **kwargs)


#: Signature of a scenario's run callable.
RunCallable = Callable[[ScenarioContext], Any]


@dataclass(frozen=True)
class Scenario:
    """One registered experiment from the paper's evaluation grid."""

    name: str
    description: str
    run: RunCallable
    #: Microarchitectures to parametrize over.  ``None`` means the scenario
    #: manages its own targets and runs exactly once; otherwise the runner
    #: invokes ``run`` once per entry and keys the metrics by uarch.
    uarches: Optional[Tuple[str, ...]] = None
    #: Per-tier scale presets; every tier in SCALE_TIERS is present.
    scales: Mapping[str, ExperimentScale] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    #: Optional pretty-printer for the metrics (used by the pytest harness).
    formatter: Optional[Callable[[Any], str]] = None

    def scale_for(self, tier: str) -> ExperimentScale:
        if tier not in SCALE_TIERS:
            raise ValueError(f"unknown scale tier {tier!r}; expected one of {SCALE_TIERS}")
        preset = self.scales.get(tier)
        return preset if preset is not None else ExperimentScale.for_tier(tier)


class DuplicateScenarioError(ValueError):
    """Raised when two different scenarios claim the same name."""


class ScenarioRegistry:
    """Name-keyed collection of scenarios with duplicate detection."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        existing = self._scenarios.get(scenario.name)
        if existing is not None:
            if existing is scenario:  # idempotent re-import
                return scenario
            raise DuplicateScenarioError(
                f"scenario {scenario.name!r} is already registered "
                f"({existing.description!r}); names must be unique")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            known = ", ".join(sorted(self._scenarios)) or "<none>"
            raise KeyError(f"unknown scenario {name!r}; registered: {known}")

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def names(self) -> List[str]:
        return sorted(self._scenarios)

    def all(self) -> List[Scenario]:
        return [self._scenarios[name] for name in self.names()]

    def select(self, names: Optional[Sequence[str]] = None,
               tags: Optional[Iterable[str]] = None) -> List[Scenario]:
        """Scenarios by explicit name and/or tag; no filters selects all."""
        if names:
            selected = [self.get(name) for name in names]
        else:
            selected = self.all()
        if tags:
            wanted = set(tags)
            selected = [s for s in selected if wanted.intersection(s.tags)]
        return selected


#: The registry ``python -m repro.bench`` and the pytest harness discover.
DEFAULT_REGISTRY = ScenarioRegistry()


def scenario(name: str, description: str = "",
             uarches: Optional[Sequence[str]] = None,
             scales: Optional[Mapping[str, ExperimentScale]] = None,
             tags: Sequence[str] = (),
             formatter: Optional[Callable[[Any], str]] = None,
             registry: Optional[ScenarioRegistry] = None) -> Callable[[RunCallable], Scenario]:
    """Decorator registering a run callable as a :class:`Scenario`.

    The decorated function is replaced by the Scenario object, so importing
    the defining module twice re-registers the identical object (a no-op)
    rather than tripping duplicate detection.
    """

    def decorate(run: RunCallable) -> Scenario:
        doc = (run.__doc__ or "").strip()
        declared = Scenario(
            name=name,
            description=description or (doc.splitlines()[0] if doc else name),
            run=run,
            uarches=tuple(uarches) if uarches is not None else None,
            scales=dict(scales or {}),
            tags=tuple(tags),
            formatter=formatter,
        )
        # `is not None`, not truthiness: an empty registry has len() == 0.
        target = registry if registry is not None else DEFAULT_REGISTRY
        return target.register(declared)

    return decorate
