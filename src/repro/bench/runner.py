"""Shared scenario runner: timing, environment fingerprint, result emission.

One :class:`Runner` executes a selection of registered scenarios at a scale
tier, times each with warmup/round control, and produces the uniform payload
described in :mod:`repro.bench.schema`.  Datasets are memoized across
scenarios in a single invocation (the old session-fixture behaviour), and
the worker count is threaded into every :class:`ScenarioContext` so engine
batch calls fan out across processes when ``--workers`` is set.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.bench.registry import (DEFAULT_REGISTRY, Scenario, ScenarioContext,
                                  ScenarioRegistry)
from repro.bench.schema import (SCHEMA_MINOR_VERSION, SCHEMA_VERSION, jsonify,
                                validate_payload)


@dataclass
class RunnerConfig:
    """Knobs shared by every scenario in one runner invocation."""

    tier: str = "smoke"
    suite: Optional[str] = None  # defaults to the tier name
    workers: int = 0
    rounds: int = 1
    warmup: int = 0
    seed: Optional[int] = None  # overrides each scale preset's seed when set
    output_dir: str = "."

    @property
    def suite_name(self) -> str:
        return self.suite or self.tier


def peak_rss_bytes() -> Optional[int]:
    """Process high-water resident set size in bytes (None if unavailable).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalize to
    bytes.  This is a whole-process high-water mark, so per-scenario values
    are monotone across a suite — only the first scenario to hit a new peak
    moves it.  Still useful: the committed smoke baseline records where the
    suite's memory ceiling is, and a scenario suddenly dominating it shows
    up as every later entry sharing its value.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def environment_fingerprint() -> Dict[str, Any]:
    """Where a result came from: interpreter, platform, numpy, git revision."""
    import numpy as np

    try:
        git_sha: Optional[str] = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5, check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha,
    }


class Runner:
    """Executes registered scenarios and emits ``BENCH_<suite>.json``."""

    def __init__(self, config: Optional[RunnerConfig] = None,
                 registry: Optional[ScenarioRegistry] = None,
                 log=print) -> None:
        self.config = config or RunnerConfig()
        # `is not None`, not truthiness: an empty registry has len() == 0.
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.log = log or (lambda message: None)
        self._dataset_cache: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Single-scenario execution
    # ------------------------------------------------------------------
    def context_for(self, scenario: Scenario, uarch: Optional[str] = None
                    ) -> ScenarioContext:
        scale = scenario.scale_for(self.config.tier)
        if self.config.seed is not None:
            scale = replace(scale, seed=self.config.seed)
        return ScenarioContext(tier=self.config.tier, scale=scale, uarch=uarch,
                               workers=self.config.workers,
                               dataset_cache=self._dataset_cache)

    def _run_once(self, scenario: Scenario) -> Any:
        if scenario.uarches is None:
            return scenario.run(self.context_for(scenario))
        return {uarch: scenario.run(self.context_for(scenario, uarch=uarch))
                for uarch in scenario.uarches}

    def run_scenario(self, scenario: Scenario) -> Dict[str, Any]:
        """Time one scenario (warmup + rounds) and build its result entry."""
        for _ in range(self.config.warmup):
            self._run_once(scenario)
        durations: List[float] = []
        metrics: Any = None
        for _ in range(max(1, self.config.rounds)):
            start = time.perf_counter()
            metrics = self._run_once(scenario)
            durations.append(time.perf_counter() - start)
        scale = scenario.scale_for(self.config.tier)
        if self.config.seed is not None:
            # Mirror context_for(): the emitted fingerprint must describe the
            # scale the scenario actually ran at, seed override included.
            scale = replace(scale, seed=self.config.seed)
        seed = scale.seed
        return {
            "name": scenario.name,
            "description": scenario.description,
            "tier": self.config.tier,
            "seed": seed,
            "workers": self.config.workers,
            "uarches": list(scenario.uarches) if scenario.uarches else None,
            "scale": scale.describe(),
            "rounds": max(1, self.config.rounds),
            "warmup": self.config.warmup,
            "wall_time_seconds": {
                "rounds": durations,
                "min": min(durations),
                "mean": sum(durations) / len(durations),
            },
            "metrics": jsonify(metrics),
            "peak_rss_bytes": peak_rss_bytes(),
        }

    # ------------------------------------------------------------------
    # Suite execution
    # ------------------------------------------------------------------
    def run(self, names: Optional[Sequence[str]] = None,
            tags: Optional[Iterable[str]] = None) -> Dict[str, Any]:
        """Run the selected scenarios and return the schema-valid payload."""
        selected = self.registry.select(names=names, tags=tags)
        if not selected:
            raise ValueError("no scenarios selected")
        entries: Dict[str, Dict[str, Any]] = {}
        for scenario in selected:
            self.log(f"[bench] {scenario.name} (tier={self.config.tier}, "
                     f"workers={self.config.workers}) ...")
            entry = self.run_scenario(scenario)
            entries[scenario.name] = entry
            self.log(f"[bench] {scenario.name}: "
                     f"{entry['wall_time_seconds']['min']:.3f}s")
        payload = {
            "schema_version": SCHEMA_VERSION,
            "suite": self.config.suite_name,
            "tier": self.config.tier,
            "workers": self.config.workers,
            "environment": environment_fingerprint(),
            "scenarios": entries,
            "total_wall_time_seconds": sum(
                entry["wall_time_seconds"]["min"] for entry in entries.values()),
            "schema_minor": SCHEMA_MINOR_VERSION,
        }
        return validate_payload(payload)

    def output_path(self) -> str:
        return os.path.join(self.config.output_dir,
                            f"BENCH_{self.config.suite_name}.json")

    def write(self, payload: Dict[str, Any]) -> str:
        """Persist a payload as ``BENCH_<suite>.json``; returns the path."""
        path = self.output_path()
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return path


def load_payload(path: str) -> Dict[str, Any]:
    """Load and schema-validate a ``BENCH_*.json`` file."""
    with open(path) as handle:
        return validate_payload(json.load(handle))
