"""Unified benchmark-scenario subsystem.

Every experiment from the paper's evaluation grid is a registered
:class:`~repro.bench.registry.Scenario`; a shared
:class:`~repro.bench.runner.Runner` executes selections of them at a scale
tier (smoke / quick / full), times them, and emits one uniform
``BENCH_<suite>.json`` payload (:mod:`repro.bench.schema`).
:mod:`repro.bench.compare` diffs two payloads and gates CI on wall-time or
coverage regressions.

Entry points::

    python -m repro.bench list
    python -m repro.bench run --tier smoke --suite smoke
    python -m repro.bench compare benchmarks/baselines/BENCH_smoke.json BENCH_smoke.json
    python -m repro.cli bench run --tier smoke   # same thing via the main CLI

Importing this package loads :mod:`repro.bench.scenarios`, which populates
:data:`~repro.bench.registry.DEFAULT_REGISTRY`.
"""

from repro.bench.registry import (DEFAULT_REGISTRY, DuplicateScenarioError, Scenario,
                                  ScenarioContext, ScenarioRegistry, scenario)
from repro.bench.runner import Runner, RunnerConfig, environment_fingerprint, load_payload
from repro.bench.schema import SCHEMA_VERSION, SchemaError, jsonify, validate_payload
from repro.bench.compare import (CompareConfig, CompareReport, check_min_metrics,
                                 compare_payloads, parse_min_metric)
from repro.bench import scenarios as _scenarios  # noqa: F401  (registers the catalog)

__all__ = [
    "DEFAULT_REGISTRY",
    "DuplicateScenarioError",
    "Scenario",
    "ScenarioContext",
    "ScenarioRegistry",
    "scenario",
    "Runner",
    "RunnerConfig",
    "environment_fingerprint",
    "load_payload",
    "SCHEMA_VERSION",
    "SchemaError",
    "jsonify",
    "validate_payload",
    "CompareConfig",
    "CompareReport",
    "check_min_metrics",
    "compare_payloads",
    "parse_min_metric",
]
