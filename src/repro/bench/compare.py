"""Regression gating: diff two ``BENCH_*.json`` payloads.

``repro.bench compare`` loads a committed baseline and a freshly produced
result file and fails when:

* a scenario present in the baseline is missing from the new results
  (coverage regression);
* a scenario's wall time grew by more than ``--max-wall-ratio`` (default
  2x, per-scenario minimum across rounds, ignoring scenarios faster than
  ``--min-seconds`` where timer noise dominates — but the suite total over
  the baseline's scenarios is gated at the same ratio, so many small
  regressions still accumulate into a failure);
* optionally (``--max-metric-ratio``), a numeric metric drifted by more
  than the given relative factor — off by default because many metrics are
  stochastic at reduced scale;
* a ``--min-metric scenario:dotted.path:floor`` floor is violated — an
  *absolute* gate on the current results (the baseline is not consulted),
  used by CI to pin e.g. the megabatch speedup:
  ``--min-metric engine_throughput:speedups_vs_scalar.engine_megabatch:5``.

Tier mismatches always fail: wall times at different scales are not
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class CompareConfig:
    max_wall_ratio: float = 2.0
    min_seconds: float = 0.25
    max_metric_ratio: Optional[float] = None
    #: Downgrade "something is missing" failures (absent scenarios, vanished
    #: metrics, tier mismatches) to informational notes.  Used by jobs that
    #: compare across tiers or against a baseline that may not cover the
    #: current scenario set yet (e.g. the nightly quick-tier run gated
    #: against the committed smoke baseline): wall-time gates are skipped on
    #: a tier mismatch because the scales are not comparable, but coverage
    #: and metric drift are still reported.
    allow_missing: bool = False
    #: Absolute floors on the *current* payload's metrics, independent of the
    #: baseline: ``(scenario, dotted.metric.path, floor)`` triples (the same
    #: dotted paths :func:`_numeric_leaves` produces).  A missing scenario or
    #: path fails the gate — a floor that silently stops being checked is
    #: worse than one that fails loudly.
    min_metrics: List[Tuple[str, str, float]] = field(default_factory=list)


@dataclass
class CompareReport:
    """Human-readable lines plus the failures that should gate CI."""

    lines: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        out = list(self.lines)
        if self.failures:
            out.append("")
            out.append(f"FAIL: {len(self.failures)} regression(s):")
            out.extend(f"  - {failure}" for failure in self.failures)
        else:
            out.append("")
            out.append("OK: no regressions")
        return "\n".join(out)


def _numeric_leaves(value: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested metrics to ``dotted.path -> float`` (numbers only)."""
    leaves: Dict[str, float] = {}
    if isinstance(value, bool):
        return leaves
    if isinstance(value, (int, float)):
        leaves[prefix or "value"] = float(value)
    elif isinstance(value, dict):
        for key, item in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(item, path))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            path = f"{prefix}[{index}]"
            leaves.update(_numeric_leaves(item, path))
    return leaves


def _compare_metrics(name: str, baseline: Any, current: Any,
                     config: CompareConfig, report: CompareReport) -> None:
    base_leaves = _numeric_leaves(baseline)
    current_leaves = _numeric_leaves(current)
    drifted: List[Tuple[str, float, float]] = []
    for path, base_value in base_leaves.items():
        if path not in current_leaves:
            _report_missing(report, config, f"{name}: metric {path!r} disappeared")
            continue
        new_value = current_leaves[path]
        if base_value == new_value:
            continue
        denominator = max(abs(base_value), 1e-12)
        ratio = abs(new_value - base_value) / denominator
        drifted.append((path, base_value, new_value))
        if config.max_metric_ratio is not None and ratio > config.max_metric_ratio:
            report.failures.append(
                f"{name}: metric {path} moved {base_value:.6g} -> {new_value:.6g} "
                f"({ratio * 100:.1f}% > {config.max_metric_ratio * 100:.0f}% allowed)")
    if drifted:
        report.lines.append(f"  {len(drifted)}/{len(base_leaves)} numeric metrics "
                            f"changed (threshold "
                            f"{'off' if config.max_metric_ratio is None else config.max_metric_ratio})")


def parse_min_metric(raw: str) -> Tuple[str, str, float]:
    """Parse a ``scenario:dotted.path:floor`` CLI argument.

    Split on the *last* two colons so scenario names containing colons would
    still parse; raises ``ValueError`` naming the malformed part.
    """
    parts = raw.rsplit(":", 2)
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise ValueError(f"expected 'scenario:dotted.path:floor', got {raw!r}")
    try:
        floor = float(parts[2])
    except ValueError:
        raise ValueError(f"floor in {raw!r} is not a number: {parts[2]!r}") from None
    return parts[0], parts[1], floor


def _check_min_metrics(current_scenarios: Dict[str, Any], config: CompareConfig,
                       report: CompareReport) -> None:
    """Absolute floors on the current payload (baseline not consulted)."""
    for scenario_name, path, floor in config.min_metrics:
        entry = current_scenarios.get(scenario_name)
        if entry is None:
            report.failures.append(
                f"min-metric {scenario_name}:{path}: scenario missing from "
                f"current results")
            continue
        leaves = _numeric_leaves(entry.get("metrics"))
        if path not in leaves:
            close = sorted(leaf for leaf in leaves
                           if leaf.split(".")[-1] == path.split(".")[-1])
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            report.failures.append(
                f"min-metric {scenario_name}:{path}: metric path not found "
                f"in current results{hint}")
            continue
        value = leaves[path]
        if value < floor:
            report.failures.append(
                f"min-metric {scenario_name}:{path}: {value:.6g} below "
                f"required floor {floor:g}")
        else:
            report.lines.append(
                f"min-metric {scenario_name}:{path}: {value:.6g} >= {floor:g}")


def check_min_metrics(current: Dict[str, Any],
                      config: CompareConfig) -> CompareReport:
    """Standalone floor check on one payload (no baseline involved).

    Used by ``repro.bench compare --allow-missing`` when the baseline file
    does not exist yet: the diff is skipped but absolute ``--min-metric``
    floors still gate the freshly produced results.
    """
    report = CompareReport()
    _check_min_metrics(current["scenarios"], config, report)
    return report


def _report_missing(report: CompareReport, config: CompareConfig,
                    message: str) -> None:
    """A missing-coverage finding: failure normally, note with allow_missing."""
    if config.allow_missing:
        report.lines.append(f"note ({message})")
    else:
        report.failures.append(message)


def compare_payloads(baseline: Dict[str, Any], current: Dict[str, Any],
                     config: Optional[CompareConfig] = None) -> CompareReport:
    """Diff two schema-valid payloads; failures gate the CI job."""
    config = config or CompareConfig()
    report = CompareReport()
    gate_wall_times = True
    if baseline.get("tier") != current.get("tier"):
        mismatch = (f"tier mismatch: baseline {baseline.get('tier')!r} vs "
                    f"current {current.get('tier')!r} — wall times are not comparable")
        if not config.allow_missing:
            report.failures.append(mismatch)
            return report
        # Cross-tier comparison: keep the coverage and metric-presence
        # checks, but never gate on wall time.
        report.lines.append(f"note ({mismatch}; skipping wall-time gates)")
        gate_wall_times = False
    base_scenarios = baseline["scenarios"]
    current_scenarios = current["scenarios"]
    report.lines.append(
        f"comparing {len(current_scenarios)} scenario(s) against baseline "
        f"suite {baseline.get('suite')!r} (tier {baseline.get('tier')!r}, "
        f"max wall ratio {config.max_wall_ratio:g}x)")
    base_env = baseline.get("environment") or {}
    current_env = current.get("environment") or {}
    differing = [key for key in ("python", "platform", "numpy", "cpu_count")
                 if base_env.get(key) != current_env.get(key)]
    if differing:
        report.lines.append(
            "warning: environment differs from baseline "
            f"({', '.join(f'{key}: {base_env.get(key)!r} -> {current_env.get(key)!r}' for key in differing)}); "
            "wall-time gates compare across machines and may be noisy")
    for name in sorted(base_scenarios):
        if name not in current_scenarios:
            _report_missing(report, config,
                            f"{name}: present in baseline but missing from "
                            f"current results (coverage regression)")
            continue
        base_entry = base_scenarios[name]
        current_entry = current_scenarios[name]
        base_wall = float(base_entry["wall_time_seconds"]["min"])
        current_wall = float(current_entry["wall_time_seconds"]["min"])
        ratio = current_wall / max(base_wall, 1e-9)
        report.lines.append(f"{name}: {base_wall:.3f}s -> {current_wall:.3f}s "
                            f"({ratio:.2f}x)")
        if gate_wall_times and base_wall >= config.min_seconds \
                and ratio > config.max_wall_ratio:
            report.failures.append(
                f"{name}: wall time {base_wall:.3f}s -> {current_wall:.3f}s "
                f"({ratio:.2f}x > {config.max_wall_ratio:g}x allowed)")
        _compare_metrics(name, base_entry.get("metrics"),
                         current_entry.get("metrics"), config, report)
    new_names = sorted(set(current_scenarios) - set(base_scenarios))
    if new_names:
        report.lines.append(f"new scenarios not in baseline: {', '.join(new_names)}")
    # Suite-total gate: individual scenarios under min_seconds are exempt
    # from per-scenario gating (timer noise), but their regressions still
    # accumulate here, over the baseline's scenario set only so added
    # scenarios don't read as a regression.
    base_total = sum(float(entry["wall_time_seconds"]["min"])
                     for entry in base_scenarios.values())
    current_total = sum(
        float(current_scenarios[name]["wall_time_seconds"]["min"])
        for name in base_scenarios if name in current_scenarios)
    total_ratio = current_total / max(base_total, 1e-9)
    report.lines.append(f"suite total: {base_total:.3f}s -> {current_total:.3f}s "
                        f"({total_ratio:.2f}x)")
    if gate_wall_times and base_total >= config.min_seconds \
            and total_ratio > config.max_wall_ratio:
        report.failures.append(
            f"suite total wall time {base_total:.3f}s -> {current_total:.3f}s "
            f"({total_ratio:.2f}x > {config.max_wall_ratio:g}x allowed)")
    if config.min_metrics:
        _check_min_metrics(current_scenarios, config, report)
    return report
