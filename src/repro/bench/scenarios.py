"""The registered scenario catalog: every experiment in the paper's grid.

Each scenario used to be a free-standing ``benchmarks/bench_*.py`` script;
they are now thin registry entries over the drivers in
:mod:`repro.eval.experiments` (plus the few ablations whose logic lives
here).  The old pytest files delegate to these via
``benchmarks/conftest.py``, and ``python -m repro.bench run`` executes them
directly.

Tags group scenarios for selection: ``paper`` (tables/figures from the
paper), ``ablation``, ``perf`` (engine micro-benchmarks), ``search``
(black-box baselines).  The representative CI subset is tagged ``ci``.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.bench.registry import ScenarioContext, scenario
from repro.eval import experiments
from repro.eval.tables import format_results_table, format_table

ALL_UARCHES = ("ivybridge", "haswell", "skylake", "zen2")


def _percent_rows(results: Dict[str, float]) -> List[List[str]]:
    return [[name, f"{value * 100:.1f}%"] for name, value in results.items()]


# ----------------------------------------------------------------------
# Paper tables and figures
# ----------------------------------------------------------------------
def _format_table03(metrics) -> str:
    rows = []
    for uarch, stats in metrics.items():
        rows.append([uarch, stats["num_blocks_total"], stats["num_blocks_train"],
                     stats["num_blocks_test"], f"{stats['block_length_median']:.1f}",
                     f"{stats['block_length_mean']:.2f}", stats["block_length_max"],
                     f"{stats['median_block_timing']:.2f}", stats["unique_opcodes_total"]])
    return format_table(
        ["Architecture", "Blocks", "Train", "Test", "Med len", "Mean len", "Max len",
         "Med timing", "Opcodes"],
        rows, title="Table III analogue: dataset summary statistics")


@scenario("table03_dataset", tags=("paper", "ci"), formatter=_format_table03)
def table03_dataset(ctx: ScenarioContext):
    """Table III — dataset summary statistics per microarchitecture."""
    return experiments.run_table3_dataset_statistics(
        num_blocks=ctx.scale.num_blocks, seed=ctx.seed)


def _format_table04(metrics) -> str:
    return format_results_table(metrics, title="Table IV analogue")


@scenario("table04_main_results", uarches=ALL_UARCHES, tags=("paper",),
          formatter=_format_table04)
def table04_main_results(ctx: ScenarioContext):
    """Table IV — error and Kendall's tau of every predictor on one target."""
    return experiments.run_table4_for_uarch(ctx.uarch, ctx.scale)


def _format_table05(metrics) -> str:
    rows = []
    for group_kind in ("per_application", "per_category"):
        default_groups = metrics[group_kind]["default"]
        learned_groups = metrics[group_kind]["learned"]
        for name in sorted(default_groups):
            count, default_error = default_groups[name]
            _count, learned_error = learned_groups.get(name, (0, float("nan")))
            rows.append([name, count, f"{default_error * 100:.1f}%",
                         f"{learned_error * 100:.1f}%"])
    return format_table(["Block type", "# Blocks", "Default error", "Learned error"], rows,
                        title="Table V analogue: per-application / per-category error "
                              "(Haswell)")


@scenario("table05_per_application", tags=("paper",), formatter=_format_table05)
def table05_per_application(ctx: ScenarioContext):
    """Table V — per-application and per-category error on Haswell."""
    return experiments.run_table5(ctx.scale, dataset=ctx.dataset("haswell"))


def _format_table06(metrics) -> str:
    table6 = metrics["table6"]
    rows = [["Default", table6["default"]["DispatchWidth"],
             table6["default"]["ReorderBufferSize"]],
            ["Learned", table6["learned"]["DispatchWidth"],
             table6["learned"]["ReorderBufferSize"]]]
    return format_table(["Parameters", "DispatchWidth", "ReorderBufferSize"], rows,
                        title="Table VI analogue: global parameters (Haswell)")


@scenario("table06_global_params", tags=("paper", "ci"), formatter=_format_table06)
def table06_global_params(ctx: ScenarioContext):
    """Table VI + Figures 4/5 — learned globals, histograms, sensitivity."""
    return experiments.run_table6_and_figures(ctx.scale, dataset=ctx.dataset("haswell"))


def _format_table08(metrics) -> str:
    return format_results_table({"Haswell (llvm_sim)": metrics},
                                title="Table VIII analogue: llvm_sim")


@scenario("table08_llvm_sim", tags=("paper", "ci"), formatter=_format_table08)
def table08_llvm_sim(ctx: ScenarioContext):
    """Table VIII (Appendix A) — llvm_sim with default vs learned parameters."""
    return experiments.run_table8_llvm_sim(ctx.scale, dataset=ctx.dataset("haswell"))


def _format_fig02(metrics) -> str:
    simulator_curve = dict(metrics["llvm_mca"])
    surrogate_curve = dict(metrics["surrogate"])
    rows = [[width, f"{simulator_curve[width]:.2f}", f"{surrogate_curve[width]:.2f}"]
            for width in sorted(simulator_curve)]
    return format_table(["DispatchWidth", "llvm-mca timing", "Surrogate timing"], rows,
                        title=f"Figure 2 analogue: {metrics['block']}")


@scenario("fig02_surrogate_sweep", tags=("paper",), formatter=_format_fig02)
def fig02_surrogate_sweep(ctx: ScenarioContext):
    """Figure 2 — llvm-mca vs the trained surrogate while sweeping DispatchWidth."""
    return experiments.run_figure2_surrogate_sweep(ctx.scale,
                                                   dataset=ctx.dataset("haswell"))


# ----------------------------------------------------------------------
# Section experiments
# ----------------------------------------------------------------------
def _format_sec2b(metrics) -> str:
    return format_table(["WriteLatency source", "Error"], _percent_rows(metrics),
                        title="Section II-B analogue: measured-latency tables (Haswell)")


@scenario("sec2b_measured_tables", tags=("paper", "ci"), formatter=_format_sec2b)
def sec2b_measured_tables(ctx: ScenarioContext):
    """Section II-B — error of measured min/median/max latency tables."""
    return experiments.run_section2b_measured_tables(num_blocks=ctx.scale.num_blocks,
                                                     seed=ctx.seed)


def _format_sec5a(metrics) -> str:
    return format_table(["Statistic", "Error"], _percent_rows(metrics),
                        title="Section V-A analogue: random parameter tables (Haswell)")


@scenario("sec5a_random_tables", tags=("paper", "ci"), formatter=_format_sec5a)
def sec5a_random_tables(ctx: ScenarioContext):
    """Section V-A — error of randomly sampled parameter tables on Haswell.

    Thin wrapper over the ``sec5a_random_tables`` campaign preset
    (:mod:`repro.campaigns.presets`): same sampling distribution, rng
    stream, and error metric as the pre-campaign experiment loop, so the
    reported statistics are bit-identical to earlier baselines.
    """
    from repro.campaigns import CAMPAIGNS, run_campaign

    num_blocks = ctx.by_tier(smoke=120, quick=200, full=400)
    num_tables = ctx.by_tier(smoke=3, quick=8, full=10)
    spec = CAMPAIGNS.get("sec5a_random_tables")(
        num_blocks=num_blocks, num_tables=num_tables, seed=ctx.seed,
        engine_workers=ctx.workers)
    errors = np.array([variant["error"]
                       for variant in run_campaign(spec).variants])
    return {"mean": float(errors.mean()), "std": float(errors.std()),
            "min": float(errors.min()), "max": float(errors.max())}


def _format_sec6b(metrics) -> str:
    return format_results_table({"Haswell": metrics},
                                title="Section VI-B analogue: WriteLatency-only learning")


@scenario("sec6b_writelatency_only", tags=("paper",), formatter=_format_sec6b)
def sec6b_writelatency_only(ctx: ScenarioContext):
    """Section VI-B — learning only WriteLatency vs learning every parameter."""
    return experiments.run_section6b_writelatency_only(ctx.scale,
                                                       dataset=ctx.dataset("haswell"))


def _format_sec6c(metrics) -> str:
    cases = metrics["cases"] if isinstance(metrics, dict) else metrics
    rows = [[case["name"], f"{case['true_timing']:.2f}",
             f"{case['default_prediction']:.2f}", f"{case['learned_prediction']:.2f}",
             case["default_latency"], case["learned_latency"]] for case in cases]
    text = format_table(
        ["Case", "True", "Default pred", "Learned pred", "Default lat", "Learned lat"],
        rows, title="Section VI-C analogue: case studies (Haswell)")
    sensitivity = (metrics.get("write_latency_sensitivity", [])
                   if isinstance(metrics, dict) else [])
    if sensitivity:
        lines = [text, "WriteLatency sensitivity (campaign error spread per opcode):"]
        for entry in sensitivity:
            lines.append(f"  {entry['axis']:28s} {entry['spread'] * 100:.2f}%")
        text = "\n".join(lines)
    return text


@scenario("sec6c_case_studies", tags=("paper",), formatter=_format_sec6c)
def sec6c_case_studies(ctx: ScenarioContext):
    """Section VI-C — case studies plus the case-study opcodes' WriteLatency
    sensitivity, via the ``sec6c_write_latency`` campaign preset."""
    from repro.campaigns import CAMPAIGNS, run_campaign

    report = experiments.run_section6c_case_studies(ctx.scale,
                                                    dataset=ctx.dataset("haswell"))
    spec = CAMPAIGNS.get("sec6c_write_latency")(
        num_blocks=ctx.scale.num_blocks, seed=ctx.seed,
        max_blocks=ctx.by_tier(smoke=24, quick=60, full=None),
        engine_workers=ctx.workers)
    campaign = run_campaign(spec)
    return {"cases": [vars(case) for case in report],
            "write_latency_sensitivity": campaign.report["axis_sensitivity"],
            "campaign_baseline_error": campaign.report["baseline_error"]}


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def _regrouped_table(adapter):
    """Re-express each opcode's ALU occupancy through the P0156 group."""
    from repro.llvm_mca import HASWELL_PORT_GROUPS, resolve_grouped_port_map

    table = adapter.default_table()
    regrouped = table.copy()
    alu_ports = set(HASWELL_PORT_GROUPS["P0156"].ports)
    for index in range(len(table.opcode_table)):
        row = table.port_map[index]
        grouped_cycles = int(sum(int(row[port]) for port in alu_ports))
        per_port = [0 if port in alu_ports else int(row[port]) for port in range(len(row))]
        regrouped.port_map[index] = resolve_grouped_port_map(
            per_port, {"P0156": grouped_cycles}, HASWELL_PORT_GROUPS, num_ports=len(row))
    return regrouped


def _format_ablation_ports(metrics) -> str:
    return format_table(["PortMap representation", "Test error"], _percent_rows(metrics),
                        title="Ablation: port-group semantics (Haswell)")


@scenario("ablation_port_groups", tags=("ablation", "ci"),
          formatter=_format_ablation_ports)
def ablation_port_groups(ctx: ScenarioContext):
    """Ablation — port-group semantics vs the paper's flattened PortMap."""
    from repro.eval.metrics import mean_absolute_percentage_error

    test = ctx.dataset("haswell").test_examples
    blocks = [example.block for example in test]
    timings = np.array([example.timing for example in test])
    adapter = ctx.mca_adapter("haswell")
    # One batched engine call: the test blocks are compiled once and the two
    # tables fan out across workers when --workers is set.
    predictions = ctx.mca_engine().run(
        [adapter.default_table(), _regrouped_table(adapter)], blocks)
    return {
        "per-port PortMap (paper)": mean_absolute_percentage_error(predictions[0], timings),
        "group-resolved PortMap": mean_absolute_percentage_error(predictions[1], timings),
    }


def _format_ablation_surrogate(metrics) -> str:
    return format_table(["Configuration", "Test error"], _percent_rows(metrics),
                        title="Ablation: surrogate variant and refinement (Haswell)")


@scenario("ablation_surrogate", tags=("ablation",),
          formatter=_format_ablation_surrogate)
def ablation_surrogate(ctx: ScenarioContext):
    """Ablation — surrogate architecture and refinement rounds."""
    from repro.core.difftune import DiffTune
    from repro.eval.metrics import mean_absolute_percentage_error

    dataset = ctx.dataset("haswell")
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])
    results = {}
    for label, kind, refinement in [("analytical + refinement", "analytical", 1),
                                    ("pooled, no refinement", "pooled", 0)]:
        adapter = ctx.mca_adapter("haswell", narrow_sampling=True)
        config = ctx.scale.difftune
        config = type(config)(**{**config.__dict__})
        config.surrogate = type(config.surrogate)(**{**config.surrogate.__dict__})
        config.surrogate.kind = kind
        config.refinement_rounds = refinement
        difftune = DiffTune(adapter, config)
        learned = difftune.learn(train_blocks, train_timings)
        predictions = adapter.predict_timings(learned.learned_arrays, test_blocks)
        results[label] = mean_absolute_percentage_error(predictions, test_timings)
    default_adapter = ctx.mca_adapter("haswell")
    results["default parameters"] = mean_absolute_percentage_error(
        default_adapter.predict_timings(default_adapter.default_arrays(), test_blocks),
        test_timings)
    return results


# ----------------------------------------------------------------------
# Black-box search baselines (Section V-C context)
# ----------------------------------------------------------------------
def _format_baseline_search(metrics) -> str:
    return format_table(["Search technique", "Test error"], _percent_rows(metrics),
                        title="Black-box search baselines (Haswell)")


@scenario("baseline_search", tags=("search",), formatter=_format_baseline_search)
def baseline_search(ctx: ScenarioContext):
    """Black-box searches (genetic / annealing / coordinate descent) vs default."""
    from repro.baselines import (AnnealingConfig, CoordinateDescentConfig,
                                 CoordinateDescentTuner, GeneticConfig, GeneticTuner,
                                 SimulatedAnnealingTuner)
    from repro.eval.metrics import mean_absolute_percentage_error

    budget = ctx.by_tier(smoke=1200, quick=6000, full=12000)
    dataset = ctx.dataset("haswell")
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])
    adapter = ctx.mca_adapter("haswell", narrow_sampling=True)
    results = {}
    genetic = GeneticTuner(adapter, GeneticConfig(
        evaluation_budget=budget, population_size=10,
        blocks_per_evaluation=32, seed=ctx.seed)).tune(train_blocks, train_timings)
    results["genetic algorithm"] = mean_absolute_percentage_error(
        adapter.predict_timings(genetic.best_arrays, test_blocks), test_timings)
    annealing = SimulatedAnnealingTuner(adapter, AnnealingConfig(
        evaluation_budget=budget, blocks_per_evaluation=32,
        seed=ctx.seed)).tune(train_blocks, train_timings)
    results["simulated annealing"] = mean_absolute_percentage_error(
        adapter.predict_timings(annealing.best_arrays, test_blocks), test_timings)
    coordinate = CoordinateDescentTuner(adapter, CoordinateDescentConfig(
        evaluation_budget=budget, blocks_per_evaluation=32,
        rounds=2, seed=ctx.seed)).tune(train_blocks, train_timings)
    results["coordinate descent"] = mean_absolute_percentage_error(
        adapter.predict_timings(coordinate.best_arrays, test_blocks), test_timings)
    default = ctx.mca_adapter("haswell")
    results["default parameters"] = mean_absolute_percentage_error(
        default.predict_timings(default.default_arrays(), test_blocks), test_timings)
    return results


# ----------------------------------------------------------------------
# Engine throughput (perf trajectory for the PR-1 engine layer)
# ----------------------------------------------------------------------
def _format_engine_throughput(metrics) -> str:
    rows = [[name, f"{row['blocks_per_sec']:.0f}", f"{row['seconds']:.3f}s"]
            for name, row in metrics["paths"].items()]
    for name, speedup in metrics["speedups_vs_scalar"].items():
        rows.append([f"speedup ({name}/scalar)", f"{speedup:.2f}x", ""])
    return format_table(["Path", "Blocks/sec", "Wall time"], rows,
                        title="Engine throughput (scalar vs engine paths)")


@scenario("engine_throughput", tags=("perf", "ci"),
          formatter=_format_engine_throughput)
def engine_throughput(ctx: ScenarioContext):
    """Blocks/second: scalar loop vs engine scalar/megabatch/cached/parallel.

    The corpus keeps the short-block regime the megabatch kernels are built
    for (BHive-style lengths, the tail filtered to <= 16 instructions) so the
    headline ``engine_megabatch``/``scalar`` ratio reflects the lockstep
    kernels rather than a handful of giant blocks.  Every engine path must
    stay bit-identical to the scalar reference.
    """
    from repro.bhive.generator import BlockGenerator
    from repro.engine import BlockCompiler
    from repro.llvm_mca.simulator import MCASimulator

    # Lockstep amortization grows with batch size, so each tier runs the
    # largest corpus its wall-time budget allows; quick is where the >= 10x
    # acceptance number is demonstrated.
    num_blocks = ctx.by_tier(smoke=512, quick=4096, full=4096)
    num_tables = ctx.by_tier(smoke=2, quick=2, full=4)
    max_length = 16
    workers = ctx.workers or 2
    adapter = ctx.mca_adapter("haswell")
    generator = BlockGenerator(seed=ctx.seed)
    blocks = [block for block in generator.generate_blocks(4 * num_blocks)
              if len(block) <= max_length][:num_blocks]
    rng = np.random.default_rng(ctx.seed)
    spec = adapter.parameter_spec()
    tables = [adapter.table_from_arrays(spec.sample(rng)) for _ in range(num_tables)]
    # A distinct table for untimed warm-up passes: every path gets hot
    # compile/operand caches before the clock starts, so the ratios measure
    # the timing kernels, not block compilation (which all paths share).
    warmup_table = adapter.table_from_arrays(spec.sample(rng))
    simulations = len(blocks) * num_tables
    results: Dict[str, Dict[str, float]] = {}

    # Scalar reference: one block per predict_timing call — the pre-megabatch
    # inner loop — over a shared warm compile cache.
    shared_compiler = BlockCompiler(adapter.opcode_table)
    MCASimulator(warmup_table, compiler=shared_compiler).predict_many(blocks)

    def scalar_loop():
        rows = []
        for table in tables:
            simulator = MCASimulator(table, compiler=shared_compiler)
            rows.append(np.array([simulator.predict_timing(block)
                                  for block in blocks]))
        return np.stack(rows)

    # The megabatch kernel itself: the shared batch-prediction path that
    # predict_many / adapter.predict_timings / dataset collection all route
    # through — no engine result-cache bookkeeping on top.
    def kernel_loop():
        return np.stack([
            MCASimulator(table,
                         compiler=shared_compiler).predict_timing_batch(blocks)
            for table in tables])

    # Engine with the megabatch kernel disabled: shared compile cache and LRU,
    # but per-block simulation — isolates the kernel's contribution.  Result
    # caches are cleared between rounds so every round re-simulates
    # (engine_cached measures the hit path separately).
    scalar_engine = ctx.mca_engine(num_workers=0, megabatch=False)
    scalar_engine.run([warmup_table], blocks)
    engine = ctx.mca_engine(num_workers=0)
    engine.run([warmup_table], blocks)
    parallel_engine = ctx.mca_engine(num_workers=workers)
    parallel_engine.run([warmup_table], blocks)

    def run_cleared(target_engine):
        target_engine.clear_results()
        return target_engine.run(tables, blocks)

    paths = [
        ("scalar", scalar_loop, {}),
        ("megabatch_kernel", kernel_loop, {}),
        ("engine_scalar", lambda: run_cleared(scalar_engine), {}),
        ("engine_megabatch", lambda: run_cleared(engine), {}),
        # Runs right after engine_megabatch each round, so the result cache
        # is full and this times the pure hit path.
        ("engine_cached", lambda: engine.run(tables, blocks), {}),
        ("engine_parallel", lambda: run_cleared(parallel_engine),
         {"workers": workers}),
    ]
    # Interleaved best-of-N: the whole path list is timed per round and each
    # path keeps its fastest round.  Shared CI machines drift by 2x between
    # passes, and interleaving keeps that drift from biasing the ratios the
    # way back-to-back per-path repetitions would (every path samples every
    # machine state).
    rounds = 2
    predictions: Dict[str, np.ndarray] = {}
    for _ in range(rounds):
        for label, runner, extra in paths:
            start = time.perf_counter()
            predictions[label] = runner()
            elapsed = time.perf_counter() - start
            if label not in results or elapsed < results[label]["seconds"]:
                results[label] = {
                    "seconds": elapsed,
                    "blocks_per_sec": simulations / max(elapsed, 1e-9),
                    "rounds": rounds, **extra}

    scalar = predictions["scalar"]
    for label, _, _ in paths[1:]:
        assert np.array_equal(scalar, predictions[label]), \
            f"{label} diverged from scalar path"

    return {
        "workload": {"num_blocks": len(blocks), "num_tables": num_tables,
                     "max_block_length": max_length, "simulations": simulations,
                     "seed": ctx.seed, "uarch": "haswell"},
        "paths": results,
        "speedups_vs_scalar": {
            name: results[name]["blocks_per_sec"] / results["scalar"]["blocks_per_sec"]
            for name, _, _ in paths[1:]
        },
        "engine_stats": engine.stats,
    }


# ----------------------------------------------------------------------
# Surrogate-training throughput (batched fast path vs per-example loop)
# ----------------------------------------------------------------------
def _format_surrogate_training_throughput(metrics) -> str:
    rows = [[name, f"{row['examples_per_sec']:.0f}", f"{row['seconds']:.3f}s"]
            for name, row in metrics["paths"].items()]
    rows.append(["speedup (batched/scalar)",
                 f"{metrics['speedup_batched_vs_scalar']:.2f}x", ""])
    return format_table(["Path", "Examples/sec", "Wall time"], rows,
                        title="Surrogate-training throughput "
                              "(per-example vs batched fast path)")


@scenario("surrogate_training_throughput", tags=("perf", "ci"),
          formatter=_format_surrogate_training_throughput)
def surrogate_training_throughput(ctx: ScenarioContext):
    """Examples/second of surrogate training: per-example loop vs batched path."""
    from repro.bhive.generator import BlockGenerator
    from repro.core import SurrogateConfig, build_surrogate, collect_simulated_dataset
    from repro.core.surrogate import BlockFeaturizer
    from repro.core.surrogate_training import SurrogateTrainingConfig, train_surrogate

    num_blocks = ctx.by_tier(smoke=16, quick=32, full=48)
    num_examples = ctx.by_tier(smoke=96, quick=384, full=1024)
    epochs = ctx.by_tier(smoke=1, quick=2, full=2)
    batch_size = ctx.by_tier(smoke=32, quick=64, full=64)
    adapter = ctx.mca_adapter("haswell", narrow_sampling=True)
    spec = adapter.parameter_spec()
    blocks = BlockGenerator(seed=ctx.seed).generate_blocks(num_blocks)
    rng = np.random.default_rng(ctx.seed)
    examples = collect_simulated_dataset(adapter, blocks, num_examples, rng,
                                         blocks_per_table=16)

    results: Dict[str, Dict[str, float]] = {}
    epoch_losses: Dict[str, List[float]] = {}
    # Fresh, identically seeded surrogate per path so both train the same
    # model; the loss trajectories must agree (the property tests pin the two
    # paths within 1e-9, and the max divergence is recorded as a metric).
    for label, batched in (("scalar", False), ("batched", True)):
        surrogate = build_surrogate(
            spec, BlockFeaturizer(adapter.opcode_table),
            SurrogateConfig(kind="pooled", seed=ctx.seed))
        training = SurrogateTrainingConfig(epochs=epochs, batch_size=batch_size,
                                           seed=ctx.seed, batched=batched)
        start = time.perf_counter()
        outcome = train_surrogate(surrogate, examples, training)
        elapsed = time.perf_counter() - start
        processed = num_examples * epochs
        results[label] = {"seconds": elapsed,
                          "examples_per_sec": processed / max(elapsed, 1e-9),
                          "final_training_error": outcome.final_training_error}
        epoch_losses[label] = outcome.epoch_losses

    return {
        "workload": {"num_blocks": num_blocks, "num_examples": num_examples,
                     "epochs": epochs, "batch_size": batch_size,
                     "surrogate_kind": "pooled", "seed": ctx.seed,
                     "uarch": "haswell"},
        "paths": results,
        "speedup_batched_vs_scalar": (results["batched"]["examples_per_sec"]
                                      / results["scalar"]["examples_per_sec"]),
        "epoch_loss_max_abs_diff": max(
            abs(scalar - batched) for scalar, batched
            in zip(epoch_losses["scalar"], epoch_losses["batched"])),
    }


def _format_table_optimization_throughput(metrics) -> str:
    rows = [[name, f"{row['examples_per_sec']:.0f}", f"{row['seconds']:.3f}s"]
            for name, row in metrics["paths"].items()]
    rows.append(["speedup (batched/scalar)",
                 f"{metrics['speedup_batched_vs_scalar']:.2f}x", ""])
    return format_table(["Path", "Examples/sec", "Wall time"], rows,
                        title="Phase-two table-optimization throughput "
                              "(per-block vs batched fast path)")


@scenario("table_optimization_throughput", tags=("perf", "ci"),
          formatter=_format_table_optimization_throughput)
def table_optimization_throughput(ctx: ScenarioContext):
    """Examples/second of phase-two table optimization: per-block vs batched."""
    from repro.core import SurrogateConfig, build_surrogate
    from repro.core.surrogate import BlockFeaturizer
    from repro.core.table_optimization import (TableOptimizationConfig,
                                               optimize_parameter_table)

    num_blocks = ctx.by_tier(smoke=48, quick=128, full=256)
    epochs = ctx.by_tier(smoke=2, quick=4, full=4)
    batch_size = ctx.by_tier(smoke=32, quick=64, full=64)
    adapter = ctx.mca_adapter("haswell", narrow_sampling=True)
    spec = adapter.parameter_spec()
    dataset = ctx.dataset("haswell", num_blocks=num_blocks)
    train = dataset.train_examples
    blocks = [example.block for example in train]
    timings = np.array([example.timing for example in train])
    initial = spec.sample(np.random.default_rng(ctx.seed))

    results: Dict[str, Dict[str, float]] = {}
    epoch_losses: Dict[str, List[float]] = {}
    # Fresh, identically seeded surrogate per path; the two loss trajectories
    # must agree (pinned within 1e-9 by the property tests; the observed
    # divergence is recorded as a metric).
    for label, batched in (("scalar", False), ("batched", True)):
        surrogate = build_surrogate(
            spec, BlockFeaturizer(adapter.opcode_table),
            SurrogateConfig(kind="pooled", seed=ctx.seed))
        config = TableOptimizationConfig(epochs=epochs, batch_size=batch_size,
                                         seed=ctx.seed, batched=batched)
        start = time.perf_counter()
        outcome = optimize_parameter_table(surrogate, blocks, timings, config,
                                           initial_arrays=initial)
        elapsed = time.perf_counter() - start
        processed = len(blocks) * epochs
        results[label] = {"seconds": elapsed,
                          "examples_per_sec": processed / max(elapsed, 1e-9),
                          "final_epoch_loss": outcome.epoch_losses[-1]}
        epoch_losses[label] = outcome.epoch_losses

    return {
        "workload": {"num_blocks": len(blocks), "epochs": epochs,
                     "batch_size": batch_size, "surrogate_kind": "pooled",
                     "seed": ctx.seed, "uarch": "haswell"},
        "paths": results,
        "speedup_batched_vs_scalar": (results["batched"]["examples_per_sec"]
                                      / results["scalar"]["examples_per_sec"]),
        "epoch_loss_max_abs_diff": max(
            abs(scalar - batched) for scalar, batched
            in zip(epoch_losses["scalar"], epoch_losses["batched"])),
    }


def _format_pipeline_resume(metrics) -> str:
    rows = [
        ["full run", f"{metrics['full_run_seconds']:.3f}s"],
        ["interrupted run", f"{metrics['interrupted_seconds']:.3f}s"],
        ["resumed run", f"{metrics['resume_seconds']:.3f}s"],
        ["stages resumed", str(metrics["stages_resumed"])],
        ["bit-identical table", "yes" if metrics["tables_bit_identical"] else "NO"],
    ]
    return format_table(["Step", "Value"], rows,
                        title="Pipeline checkpoint/resume smoke test")


@scenario("pipeline_resume", tags=("perf", "ci"), formatter=_format_pipeline_resume)
def pipeline_resume(ctx: ScenarioContext):
    """Kill a tuning run after surrogate training, resume it, compare tables.

    The contract under test is the pipeline layer's headline guarantee: a
    run interrupted at any stage boundary and resumed with ``--resume``
    produces a bit-identical learned table to an uninterrupted run with the
    same seed, while skipping the work of every completed stage.
    """
    import tempfile

    from repro.api.registries import PRESETS
    from repro.core.difftune import DiffTune

    num_blocks = ctx.by_tier(smoke=60, quick=120, full=200)
    refinement_rounds = ctx.by_tier(smoke=0, quick=1, full=1)
    dataset = ctx.dataset("haswell", num_blocks=num_blocks)
    train = dataset.train_examples
    blocks = [example.block for example in train]
    timings = np.array([example.timing for example in train])

    def make_difftune():
        config = PRESETS.get("test")(ctx.seed)
        config.refinement_rounds = refinement_rounds
        config.refinement_dataset_size = 48
        return DiffTune(ctx.adapter("mca", "haswell", narrow_sampling=True),
                        config)

    start = time.perf_counter()
    full = make_difftune().learn(blocks, timings)
    full_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        start = time.perf_counter()
        interrupted = make_difftune().learn(blocks, timings,
                                            checkpoint_dir=checkpoint_dir,
                                            stop_after="train_surrogate")
        interrupted_seconds = time.perf_counter() - start
        assert interrupted is None
        start = time.perf_counter()
        resumed = make_difftune().learn(blocks, timings,
                                        checkpoint_dir=checkpoint_dir, resume=True)
        resume_seconds = time.perf_counter() - start

    identical = (np.array_equal(full.learned_arrays.per_instruction_values,
                                resumed.learned_arrays.per_instruction_values)
                 and np.array_equal(full.learned_arrays.global_values,
                                    resumed.learned_arrays.global_values))
    return {
        "workload": {"num_blocks": len(blocks),
                     "refinement_rounds": refinement_rounds, "seed": ctx.seed,
                     "uarch": "haswell"},
        "full_run_seconds": full_seconds,
        "interrupted_seconds": interrupted_seconds,
        "resume_seconds": resume_seconds,
        "stages_resumed": len(resumed.resumed_stages),
        "tables_bit_identical": float(identical),
        "train_error_full": full.train_error,
        "train_error_resumed": resumed.train_error,
    }


def _format_serving_latency(metrics) -> str:
    rows = []
    for label in ("sequential", "batched"):
        phase = metrics["phases"][label]
        rows.append([f"{label} ({phase['num_clients']} client"
                     f"{'s' if phase['num_clients'] > 1 else ''})",
                     f"{phase['qps']:.0f}",
                     f"{phase['latency_ms']['p50']:.2f}ms",
                     f"{phase['latency_ms']['p99']:.2f}ms"])
    rows.append(["throughput ratio (batched/sequential)",
                 f"{metrics['throughput_ratio_batched_vs_sequential']:.2f}x",
                 "", ""])
    rows.append(["served == direct predict",
                 "yes" if metrics["bit_identical"] else "NO", "", ""])
    return format_table(["Phase", "QPS", "p50", "p99"], rows,
                        title="Serving latency (HTTP server, coalesced batches)")


@scenario("serving_latency", tags=("perf", "ci"),
          formatter=_format_serving_latency)
def serving_latency(ctx: ScenarioContext):
    """QPS and p50/p99 latency of the inference server, sequential vs batched.

    Exercises the full deployment path: a bundle is exported and served by
    :class:`repro.serving.InferenceServer` on an ephemeral port, then hit by
    a single sequential client and by a concurrent client pool whose
    requests the coalescer merges into engine megabatches.  Every request
    uses distinct blocks (compile caches warm, engine result caches cleared
    between phases) so the batched/sequential ratio measures batching, not
    caching — and every served timing must be bit-identical to a direct
    ``Session.predict`` on a fresh session from the same bundle.
    """
    import os
    import tempfile

    from repro.api import Session
    from repro.bhive.generator import BlockGenerator
    from repro.serving import InferenceServer, run_load

    # Small requests are the regime coalescing exists for: a lone client
    # pays the batching window per request while the concurrent pool shares
    # it, so the quick-tier acceptance ratio (>= 3x) uses 2-block requests.
    num_requests = ctx.by_tier(smoke=48, quick=192, full=384)
    num_clients = ctx.by_tier(smoke=8, quick=16, full=16)
    blocks_per_request = ctx.by_tier(smoke=2, quick=2, full=4)
    max_wait_ms = 2.0

    # Distinct block text per request (both phases), deduplicated so the
    # server's text-keyed result cache cannot serve one request from another.
    needed = 2 * num_requests * blocks_per_request
    generator = BlockGenerator(seed=ctx.seed)
    texts: List[str] = []
    seen = set()
    for block in generator.generate_blocks(6 * needed):
        text = "; ".join(line for line in block.to_assembly().splitlines())
        if text not in seen:
            seen.add(text)
            texts.append(text)
        if len(texts) >= needed:
            break
    assert len(texts) >= needed, "block generator ran dry of unique blocks"
    requests = [texts[i * blocks_per_request:(i + 1) * blocks_per_request]
                for i in range(2 * num_requests)]
    sequential_requests = requests[:num_requests]
    batched_requests = requests[num_requests:]

    with tempfile.TemporaryDirectory(prefix="repro-serving-bench-") as scratch:
        bundle_path = os.path.join(scratch, "haswell.bundle")
        Session.from_spec({"target": "haswell",
                           "simulator": "mca"}).export_bundle(bundle_path)
        server = InferenceServer.from_spec(
            {"bundle_path": bundle_path, "port": 0,
             "max_batch_wait_ms": max_wait_ms})
        # Warm the compile/operand caches over the whole corpus so both
        # phases time the simulation kernels, then clear the engine's result
        # cache so the measured requests do real work.
        engine = server.session.adapter.engine
        from repro.isa.parser import parse_block

        parsed = {text: parse_block(text, server.session.adapter.opcode_table)
                  for text in texts}
        server.session.predict(list(parsed.values()))
        engine.clear_results()

        handle = server.start_in_thread()
        try:
            sequential = run_load(handle.host, handle.port,
                                  sequential_requests, num_clients=1)
            engine.clear_results()
            batched = run_load(handle.host, handle.port, batched_requests,
                               num_clients=num_clients)
            server_stats = server.stats_payload()
        finally:
            handle.stop()

        assert not sequential.errors, sequential.errors[:3]
        assert not batched.errors, batched.errors[:3]

        # Bit-identity: a fresh session loaded from the same bundle must
        # reproduce every served timing exactly, however the server batched
        # the requests.
        reference = Session.from_bundle(bundle_path)
        identical = True
        for phase_requests, report in ((sequential_requests, sequential),
                                       (batched_requests, batched)):
            for index, blocks in enumerate(phase_requests):
                expected = [float(value) for value in reference.predict(
                    [parsed[text] for text in blocks])]
                if report.results.get(index) != expected:
                    identical = False
        assert identical, "served timings diverged from direct Session.predict"

    ratio = batched.qps / max(sequential.qps, 1e-9)
    return {
        "workload": {"num_requests": num_requests,
                     "blocks_per_request": blocks_per_request,
                     "num_clients": num_clients,
                     "max_batch_wait_ms": max_wait_ms,
                     "seed": ctx.seed, "uarch": "haswell"},
        "phases": {"sequential": sequential.summary(),
                   "batched": batched.summary()},
        "qps": {"sequential": sequential.qps, "batched": batched.qps},
        "latency_ms": {
            "sequential": {"p50": sequential.latency_ms(0.50),
                           "p99": sequential.latency_ms(0.99)},
            "batched": {"p50": batched.latency_ms(0.50),
                        "p99": batched.latency_ms(0.99)},
        },
        "throughput_ratio_batched_vs_sequential": ratio,
        "bit_identical": float(identical),
        "server": {
            "mean_batch_size": server_stats["mean_batch_size"],
            "batches": server_stats["batches"],
            "cache_hit_rate": server_stats["result_cache"]["hit_rate"],
            "latency_ms": server_stats["latency_ms"],
        },
    }


def _format_campaign_throughput(metrics) -> str:
    rows = [[name, f"{row['variants_per_sec']:.1f}", f"{row['seconds']:.3f}s"]
            for name, row in metrics["paths"].items()]
    rows.append(["speedup (cached/uncached)",
                 f"{metrics['speedup']['cached']:.2f}x", ""])
    rows.append(["byte-identical reports",
                 "yes" if metrics["reports_identical"] else "NO", ""])
    return format_table(["Path", "Variants/sec", "Wall time"], rows,
                        title="Campaign throughput (engine result caching "
                              "across repeated campaigns)")


@scenario("campaign_throughput", tags=("perf", "ci"),
          formatter=_format_campaign_throughput)
def campaign_throughput(ctx: ScenarioContext):
    """Variants/second of a grid campaign, uncached vs engine-result-cached.

    The same one-at-a-time Figure-5 campaign runs repeatedly through one
    session, so every run shares the adapter's engine (compile caches,
    megabatch kernels, per-digest result LRU).  Each round times an uncached
    run (result cache cleared first) and a cached rerun (every variant digest
    is an LRU hit); the best round is reported, and all reports must be
    byte-identical — the cache may only change wall time, never results.
    """
    import json

    from repro.api import Session
    from repro.campaigns import CAMPAIGNS, run_campaign

    num_blocks = ctx.by_tier(smoke=100, quick=200, full=300)
    max_blocks = ctx.by_tier(smoke=32, quick=64, full=120)
    spec = CAMPAIGNS.get("fig5_global_sensitivity")(
        num_blocks=num_blocks, seed=ctx.seed, max_blocks=max_blocks,
        engine_workers=ctx.workers)
    session = Session(spec)
    engine = session.adapter.engine

    # Untimed warm-up: hot compile/operand caches for both timed paths.
    warmup = run_campaign(spec, session=session)
    reports = [json.dumps(warmup.report, sort_keys=True)]
    results: Dict[str, Dict[str, float]] = {}
    num_variants = warmup.num_variants
    rounds = 2
    for _ in range(rounds):
        for label, clear in (("uncached", True), ("cached", False)):
            if clear:
                engine.clear_results()
            start = time.perf_counter()
            result = run_campaign(spec, session=session)
            elapsed = time.perf_counter() - start
            reports.append(json.dumps(result.report, sort_keys=True))
            if label not in results or elapsed < results[label]["seconds"]:
                results[label] = {
                    "seconds": elapsed,
                    "variants_per_sec": num_variants / max(elapsed, 1e-9),
                    "rounds": rounds}
    identical = all(report == reports[0] for report in reports)
    assert identical, "cached campaign report diverged from uncached run"

    return {
        "workload": {"num_blocks": num_blocks, "max_blocks": max_blocks,
                     "num_variants": num_variants,
                     "preset": "fig5_global_sensitivity",
                     "seed": ctx.seed, "uarch": "haswell"},
        "paths": results,
        "speedup": {"cached": (results["cached"]["variants_per_sec"]
                               / results["uncached"]["variants_per_sec"])},
        "reports_identical": float(identical),
        "engine_stats": engine.stats,
    }


def _format_corpus_streaming(metrics) -> str:
    build = metrics["build"]
    rows = [["corpus build", f"{build['blocks_per_second']:.0f} blocks/s",
             f"{build['seconds']:.3f}s", ""]]
    for label in ("streaming", "in_memory"):
        phase = metrics["phases"][label]
        rows.append([f"collect ({label})",
                     f"{phase['examples_per_second']:.0f} examples/s",
                     f"{phase['seconds']:.3f}s",
                     f"{phase['peak_traced_mb']:.1f} MB"])
    rows.append(["memory ratio (streaming/in-memory)",
                 f"{metrics['memory_ratio_streaming_vs_in_memory']:.2f}x", "", ""])
    rows.append(["bit-identical dataset",
                 "yes" if metrics["arrays_bit_identical"] else "NO", "", ""])
    return format_table(["Phase", "Rate", "Wall time", "Peak traced"], rows,
                        title="Corpus-scale streaming collection "
                              "(sharded corpus vs in-memory)")


@scenario("corpus_streaming", tags=("perf", "ci"),
          formatter=_format_corpus_streaming)
def corpus_streaming(ctx: ScenarioContext):
    """Blocks/sec, examples/sec, and peak memory of corpus-scale collection.

    Three phases over one scratch corpus: (1) ``ShardedCorpus.build``
    streams generated+measured blocks to disk shards; (2) streaming
    collection draws the simulated dataset straight off the corpus through
    its bounded block LRU into flat arrays; (3) the classic in-memory path
    materializes every parsed block and per-example object.  The streaming
    arrays must be byte-identical to the in-memory collector's, and its
    Python-allocation peak (tracemalloc, measured identically for both
    phases) must stay under half the in-memory peak — the tentpole claim
    that corpus size bounds disk, not RAM.  Per-process ``peak_rss_bytes``
    lands in the runner's result entry separately; tracemalloc is used for
    the per-phase assertion because RSS high-water marks are monotone
    across a suite.
    """
    import tempfile
    import tracemalloc

    from repro.core.simulated_dataset import collect_simulated_dataset
    from repro.corpus import ShardedCorpus, collect_simulated_dataset_streaming
    from repro.pipeline.stages import _examples_to_arrays

    # 10^4 generated blocks at smoke, the acceptance-criterion 10^5 at quick
    # and full; the collection draw is one example per eight kept blocks.
    num_blocks = ctx.by_tier(smoke=10_000, quick=100_000, full=100_000)
    shard_size = 1024
    blocks_per_table = 16
    adapter = ctx.mca_adapter("haswell", narrow_sampling=True)

    with tempfile.TemporaryDirectory(prefix="repro-corpus-bench-") as scratch:
        start = time.perf_counter()
        # The block LRU is capped at an eighth of the corpus so streaming
        # random access re-parses on miss instead of accumulating the corpus.
        corpus = ShardedCorpus.build(
            scratch, uarch_name="haswell", num_blocks=num_blocks,
            seed=ctx.seed, shard_size=shard_size,
            cache_blocks=max(256, num_blocks // 8))
        build_seconds = time.perf_counter() - start
        num_examples = len(corpus) // 8

        def collect_streaming():
            return collect_simulated_dataset_streaming(
                adapter, corpus, num_examples,
                np.random.default_rng(ctx.seed + 1),
                blocks_per_table=blocks_per_table)

        def collect_in_memory():
            blocks = list(corpus.iter_blocks())
            examples = collect_simulated_dataset(
                adapter, blocks, num_examples,
                np.random.default_rng(ctx.seed + 1),
                blocks_per_table=blocks_per_table)
            return _examples_to_arrays(examples)

        # Untimed warm-up (engine_throughput's methodology): both timed
        # phases run over hot compile/operand caches and a full block LRU,
        # so neither is charged for one-time global allocations that the
        # other then inherits.  The engine result cache is cleared before
        # each timed phase so both re-simulate every drawn example.
        engine = adapter.engine
        collect_streaming()
        # tracemalloc measures both collection phases identically (its
        # overhead cancels in the ratio); the build phase is timed without
        # it so blocks/sec reflects the real generation pipeline.
        phases: Dict[str, Dict[str, float]] = {}
        outputs: Dict[str, Dict[str, np.ndarray]] = {}
        tracemalloc.start()
        try:
            for label, runner in (("streaming", collect_streaming),
                                  ("in_memory", collect_in_memory)):
                engine.clear_results()
                before, _ = tracemalloc.get_traced_memory()
                tracemalloc.reset_peak()
                start = time.perf_counter()
                result = runner()
                elapsed = time.perf_counter() - start
                _, peak = tracemalloc.get_traced_memory()
                outputs[label] = (result.to_arrays() if label == "streaming"
                                  else result)
                phases[label] = {
                    "seconds": elapsed,
                    "examples_per_second": num_examples / max(elapsed, 1e-9),
                    "peak_traced_mb": (peak - before) / (1024 * 1024),
                }
        finally:
            tracemalloc.stop()
        corpus_summary = {"num_generated": num_blocks, "num_kept": len(corpus),
                          "num_shards": corpus.num_shards,
                          "shard_size": shard_size}

    identical = (outputs["streaming"].keys() == outputs["in_memory"].keys()
                 and all(np.array_equal(outputs["streaming"][key],
                                        outputs["in_memory"][key])
                         for key in outputs["streaming"]))
    assert identical, "streaming collection diverged from the in-memory path"
    ratio = (phases["streaming"]["peak_traced_mb"]
             / max(phases["in_memory"]["peak_traced_mb"], 1e-9))
    assert ratio < 0.5, (
        f"streaming peak memory is {ratio:.2f}x the in-memory peak "
        f"(must stay under 0.5x)")

    return {
        "workload": {"num_blocks": num_blocks, "num_examples": num_examples,
                     "blocks_per_table": blocks_per_table,
                     "shard_size": shard_size, "seed": ctx.seed,
                     "uarch": "haswell"},
        "corpus": corpus_summary,
        "build": {"seconds": build_seconds,
                  "blocks_per_second": num_blocks / max(build_seconds, 1e-9)},
        "phases": phases,
        "examples_per_second": {
            label: phases[label]["examples_per_second"] for label in phases},
        "peak_traced_mb": {
            label: phases[label]["peak_traced_mb"] for label in phases},
        "memory_ratio_streaming_vs_in_memory": ratio,
        "arrays_bit_identical": float(identical),
    }


def _format_matrix_campaign(metrics) -> str:
    rows = [[name, f"{row['seconds']:.3f}s", f"{row['cells_per_sec']:.2f}"]
            for name, row in metrics["paths"].items()]
    rows.append(["speedup (pool/inline)",
                 f"{metrics['speedup']['pool']:.2f}x", ""])
    rows.append(["byte-identical reports",
                 "yes" if metrics["reports_identical"] else "NO", ""])
    return format_table(["Executor", "Wall time", "Cells/sec"], rows,
                        title="Matrix campaign (process-pool fan-out vs "
                              "sequential cells)")


@scenario("matrix_campaign", tags=("perf", "ci"),
          formatter=_format_matrix_campaign)
def matrix_campaign(ctx: ScenarioContext):
    """Matrix-campaign fan-out: process-pool executor vs sequential inline.

    One campaign body spread across a targets x simulators cell grid
    (:mod:`repro.distributed`), with the per-target corpora pre-built
    untimed and shared by both paths.  Each timed cell carries a fixed
    injected latency (``delay_cells``, an execution-only knob) standing in
    for the per-cell simulator startup cost a real fleet pays, so the
    benchmark measures dispatch overlap rather than raw CPU parallelism
    and holds on single-core CI runners.  The pool path must beat inline
    on wall time while producing a byte-identical ``matrix_report`` — the
    executor may only change scheduling, never results.
    """
    import json
    import tempfile

    from repro.distributed import MatrixCampaignSpec, cell_key, run_matrix

    targets = ctx.by_tier(smoke=["haswell", "zen2"],
                          quick=["haswell", "skylake", "zen2"],
                          full=list(ALL_UARCHES))
    num_blocks = ctx.by_tier(smoke=64, quick=120, full=200)
    base = {
        "campaign": {
            "axes": [{"field": "WriteLatency", "opcode": "ADD32rr",
                      "values": [1, 2, 3, 4, 5, 6]}],
            "num_blocks": num_blocks, "seed": ctx.seed, "chunk_size": 8,
        },
        "targets": targets,
        "simulators": ["mca", "llvm_sim"],
    }
    pool_workers = max(2, ctx.workers)
    cell_latency = 0.25
    delays = {cell_key(target, simulator): cell_latency
              for target in targets for simulator in ("mca", "llvm_sim")}
    with tempfile.TemporaryDirectory(prefix="repro-bench-matrix-") as root:
        base["corpus_dir"] = f"{root}/corpora"
        # Untimed warm-up builds the shared corpora and warms the process
        # caches both timed paths inherit (the pool executor forks).
        warmup = run_matrix(MatrixCampaignSpec.from_dict(base))
        assert warmup.status == "complete", warmup.report
        reference = json.dumps(warmup.report, sort_keys=True)
        num_cells = warmup.report["num_cells"]

        paths: Dict[str, Dict[str, float]] = {}
        for label, overrides in (("inline", {}),
                                 ("pool", {"executor": "pool",
                                           "workers": pool_workers})):
            spec = MatrixCampaignSpec.from_dict(
                dict(base, delay_cells=delays, **overrides))
            start = time.perf_counter()
            result = run_matrix(spec)
            elapsed = time.perf_counter() - start
            assert json.dumps(result.report, sort_keys=True) == reference, \
                f"{label} executor report diverged from the warm-up reference"
            paths[label] = {"seconds": elapsed,
                            "cells_per_sec": num_cells / max(elapsed, 1e-9)}

    return {
        "workload": {"targets": targets, "simulators": ["mca", "llvm_sim"],
                     "num_cells": num_cells, "num_blocks": num_blocks,
                     "pool_workers": pool_workers,
                     "cell_latency_seconds": cell_latency, "seed": ctx.seed},
        "paths": paths,
        "speedup": {"pool": (paths["inline"]["seconds"]
                             / max(paths["pool"]["seconds"], 1e-9))},
        "reports_identical": 1.0,
    }
