"""``python -m repro.bench`` — list, run, and compare benchmark scenarios.

Examples::

    python -m repro.bench list
    python -m repro.bench list --tag ci
    python -m repro.bench run --tier smoke
    python -m repro.bench run table04_main_results sec5a_random_tables --tier quick
    python -m repro.bench run --tag ci --tier smoke --suite smoke --workers 2
    python -m repro.bench compare benchmarks/baselines/BENCH_smoke.json \\
        BENCH_smoke.json --max-wall-ratio 2.0
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench import (DEFAULT_REGISTRY, CompareConfig, Runner, RunnerConfig,
                         check_min_metrics, compare_payloads, load_payload,
                         parse_min_metric)
from repro.eval.experiments import SCALE_TIERS


def _command_list(arguments: argparse.Namespace) -> int:
    selected = DEFAULT_REGISTRY.select(tags=arguments.tag or None)
    print(f"{len(selected)} registered scenario(s):")
    for entry in selected:
        uarches = ", ".join(entry.uarches) if entry.uarches else "self-managed"
        tags = ", ".join(entry.tags) or "-"
        print(f"  {entry.name:26s} [{tags}] ({uarches})")
        print(f"      {entry.description}")
    return 0


def _command_run(arguments: argparse.Namespace) -> int:
    config = RunnerConfig(tier=arguments.tier, suite=arguments.suite,
                          workers=arguments.workers, rounds=arguments.rounds,
                          warmup=arguments.warmup, seed=arguments.seed,
                          output_dir=arguments.output_dir)
    runner = Runner(config)
    payload = runner.run(names=arguments.scenarios or None, tags=arguments.tag or None)
    path = runner.write(payload)
    print(f"{len(payload['scenarios'])} scenario(s), "
          f"{payload['total_wall_time_seconds']:.2f}s total")
    print(f"wrote {path}")
    return 0


def _command_compare(arguments: argparse.Namespace) -> int:
    # The current results file must exist and be schema-valid even when the
    # baseline is tolerated as missing — a green gate with an unreadable
    # results file would mean zero checks actually ran.
    current = load_payload(arguments.current)
    try:
        min_metrics = [parse_min_metric(raw)
                       for raw in (arguments.min_metric or [])]
    except ValueError as error:
        print(f"error: --min-metric: {error}", file=sys.stderr)
        return 2
    config = CompareConfig(max_wall_ratio=arguments.max_wall_ratio,
                           min_seconds=arguments.min_seconds,
                           max_metric_ratio=arguments.max_metric_ratio,
                           allow_missing=arguments.allow_missing,
                           min_metrics=min_metrics)
    if arguments.allow_missing and not os.path.exists(arguments.baseline):
        print(f"note: baseline {arguments.baseline!r} does not exist; "
              f"current results validated ({len(current['scenarios'])} "
              "scenario(s)) but nothing to compare against (--allow-missing)")
        if not min_metrics:
            return 0
        # Absolute floors do not need a baseline — gate them regardless.
        report = check_min_metrics(current, config)
        print(report.render())
        return 0 if report.ok else 1
    baseline = load_payload(arguments.baseline)
    report = compare_payloads(baseline, current, config)
    print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tag", action="append",
                             help="only scenarios with this tag (repeatable)")
    list_parser.set_defaults(handler=_command_list)

    run_parser = subparsers.add_parser("run", help="run scenarios and write BENCH_<suite>.json")
    run_parser.add_argument("scenarios", nargs="*",
                            help="scenario names (default: all registered)")
    run_parser.add_argument("--tier", default="smoke", choices=list(SCALE_TIERS))
    run_parser.add_argument("--tag", action="append",
                            help="only scenarios with this tag (repeatable)")
    run_parser.add_argument("--suite", help="result-file suffix (default: the tier name)")
    run_parser.add_argument("--workers", type=int, default=0,
                            help="engine worker processes for batched simulation")
    run_parser.add_argument("--rounds", type=int, default=1,
                            help="timed repetitions per scenario")
    run_parser.add_argument("--warmup", type=int, default=0,
                            help="untimed repetitions before measuring")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override every scale preset's seed")
    run_parser.add_argument("--output-dir", default=".",
                            help="where BENCH_<suite>.json is written")
    run_parser.set_defaults(handler=_command_run)

    compare_parser = subparsers.add_parser(
        "compare", help="diff two BENCH_*.json files and fail on regressions")
    compare_parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    compare_parser.add_argument("current", help="freshly produced BENCH_*.json")
    compare_parser.add_argument("--max-wall-ratio", type=float, default=2.0,
                                help="fail when wall time grows past this factor")
    compare_parser.add_argument("--min-seconds", type=float, default=0.25,
                                help="ignore wall regressions on scenarios faster "
                                     "than this baseline time (timer noise)")
    compare_parser.add_argument("--max-metric-ratio", type=float, default=None,
                                help="optionally fail when a numeric metric drifts "
                                     "past this relative factor")
    compare_parser.add_argument("--min-metric", action="append", metavar="SPEC",
                                help="absolute floor on a current metric, as "
                                     "'scenario:dotted.path:floor' (repeatable); "
                                     "e.g. engine_throughput:speedups_vs_scalar"
                                     ".engine_megabatch:5 — fails when the "
                                     "metric is below the floor or missing")
    compare_parser.add_argument("--allow-missing", action="store_true",
                                help="tolerate a missing baseline file, absent "
                                     "scenarios/metrics, and tier mismatches "
                                     "(cross-tier runs skip wall-time gates)")
    compare_parser.set_defaults(handler=_command_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
