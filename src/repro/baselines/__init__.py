"""Baselines the paper compares DiffTune against (Table IV).

* :mod:`~repro.baselines.opentuner` — black-box global optimization with a
  multi-armed bandit over an ensemble of search techniques, standing in for
  OpenTuner (Section V-C).
* :mod:`~repro.baselines.random_search` — plain random search, a weaker
  black-box reference point and the initialization sanity check.
* :mod:`~repro.baselines.ithemal` — a learned basic-block throughput model
  trained directly on the ground-truth measurements (the accuracy lower bound
  in Table IV).
* :mod:`~repro.baselines.iaca` — an IACA-like analytical throughput/latency
  bound model with Intel-specific special cases (N/A on AMD, as in the paper).

All seven register :class:`~repro.api.plugins.BaselinePlugin` records in
:data:`repro.api.registries.BASELINES` — the black-box searchers under
``kind="search"`` with the uniform ``run(adapter, blocks, timings, *,
budget, seed)`` contract the CLI's ``tune-baseline`` uses, the standalone
predictors (ithemal, iaca) under ``kind="predictor"``.
"""

from repro.api.plugins import BaselinePlugin
from repro.api.registries import BASELINES
from repro.baselines.opentuner import OpenTunerBaseline, OpenTunerConfig, BanditEnsemble
from repro.baselines.random_search import random_search
from repro.baselines.genetic import GeneticConfig, GeneticResult, GeneticTuner
from repro.baselines.annealing import (AnnealingConfig, AnnealingResult,
                                       SimulatedAnnealingTuner)
from repro.baselines.coordinate_descent import (CoordinateDescentConfig,
                                                CoordinateDescentResult,
                                                CoordinateDescentTuner)
from repro.baselines.ithemal import IthemalBaseline, IthemalConfig
from repro.baselines.iaca import IACAModel

__all__ = [
    "OpenTunerBaseline",
    "OpenTunerConfig",
    "BanditEnsemble",
    "random_search",
    "GeneticTuner",
    "GeneticConfig",
    "GeneticResult",
    "SimulatedAnnealingTuner",
    "AnnealingConfig",
    "AnnealingResult",
    "CoordinateDescentTuner",
    "CoordinateDescentConfig",
    "CoordinateDescentResult",
    "IthemalBaseline",
    "IthemalConfig",
    "IACAModel",
]


# ----------------------------------------------------------------------
# Registry entries (see repro.api): uniform run() wrappers for the
# black-box searchers, factories for the standalone predictors.
# ----------------------------------------------------------------------
def _run_opentuner(adapter, blocks, timings, *, budget: int, seed: int):
    tuner = OpenTunerBaseline(adapter, OpenTunerConfig(evaluation_budget=budget,
                                                       seed=seed))
    return tuner.tune(blocks, timings)


def _run_random_search(adapter, blocks, timings, *, budget: int, seed: int):
    arrays, _error = random_search(adapter, blocks, timings,
                                   num_samples=max(1, budget), seed=seed)
    return arrays


def _run_genetic(adapter, blocks, timings, *, budget: int, seed: int):
    result = GeneticTuner(adapter, GeneticConfig(evaluation_budget=budget,
                                                 seed=seed)).tune(blocks, timings)
    return result.best_arrays


def _run_annealing(adapter, blocks, timings, *, budget: int, seed: int):
    result = SimulatedAnnealingTuner(
        adapter, AnnealingConfig(evaluation_budget=budget, seed=seed)).tune(
            blocks, timings)
    return result.best_arrays


def _run_coordinate_descent(adapter, blocks, timings, *, budget: int, seed: int):
    result = CoordinateDescentTuner(
        adapter, CoordinateDescentConfig(evaluation_budget=budget, seed=seed)).tune(
            blocks, timings)
    return result.best_arrays


BASELINES.register(
    "opentuner",
    BaselinePlugin(name="opentuner", kind="search", run=_run_opentuner,
                   summary="bandit ensemble of search techniques "
                           "(OpenTuner stand-in, Section V-C)"))
BASELINES.register(
    "random_search",
    BaselinePlugin(name="random_search", kind="search", run=_run_random_search,
                   summary="best-of-N random tables (budget = N samples)"),
    aliases=("random",))
BASELINES.register(
    "genetic",
    BaselinePlugin(name="genetic", kind="search", run=_run_genetic,
                   summary="genetic algorithm over parameter tables"))
BASELINES.register(
    "annealing",
    BaselinePlugin(name="annealing", kind="search", run=_run_annealing,
                   summary="simulated annealing over parameter tables"))
BASELINES.register(
    "coordinate_descent",
    BaselinePlugin(name="coordinate_descent", kind="search",
                   run=_run_coordinate_descent,
                   summary="field-wise coordinate descent"),
    aliases=("coordinate",))
BASELINES.register(
    "ithemal",
    BaselinePlugin(name="ithemal", kind="predictor", build=IthemalBaseline,
                   summary="learned throughput predictor trained on ground "
                           "truth (accuracy reference, Table IV); "
                           "build(opcode_table=None, config=None)"))
BASELINES.register(
    "iaca",
    BaselinePlugin(name="iaca", kind="predictor", build=IACAModel,
                   summary="IACA-like analytical bound model (Intel only); "
                           "build(uarch_spec)"))
