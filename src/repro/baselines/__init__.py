"""Baselines the paper compares DiffTune against (Table IV).

* :mod:`~repro.baselines.opentuner` — black-box global optimization with a
  multi-armed bandit over an ensemble of search techniques, standing in for
  OpenTuner (Section V-C).
* :mod:`~repro.baselines.random_search` — plain random search, a weaker
  black-box reference point and the initialization sanity check.
* :mod:`~repro.baselines.ithemal` — a learned basic-block throughput model
  trained directly on the ground-truth measurements (the accuracy lower bound
  in Table IV).
* :mod:`~repro.baselines.iaca` — an IACA-like analytical throughput/latency
  bound model with Intel-specific special cases (N/A on AMD, as in the paper).
"""

from repro.baselines.opentuner import OpenTunerBaseline, OpenTunerConfig, BanditEnsemble
from repro.baselines.random_search import random_search
from repro.baselines.genetic import GeneticConfig, GeneticResult, GeneticTuner
from repro.baselines.annealing import (AnnealingConfig, AnnealingResult,
                                       SimulatedAnnealingTuner)
from repro.baselines.coordinate_descent import (CoordinateDescentConfig,
                                                CoordinateDescentResult,
                                                CoordinateDescentTuner)
from repro.baselines.ithemal import IthemalBaseline, IthemalConfig
from repro.baselines.iaca import IACAModel

__all__ = [
    "OpenTunerBaseline",
    "OpenTunerConfig",
    "BanditEnsemble",
    "random_search",
    "GeneticTuner",
    "GeneticConfig",
    "GeneticResult",
    "SimulatedAnnealingTuner",
    "AnnealingConfig",
    "AnnealingResult",
    "CoordinateDescentTuner",
    "CoordinateDescentConfig",
    "CoordinateDescentResult",
    "IthemalBaseline",
    "IthemalConfig",
    "IACAModel",
]
