"""Genetic-algorithm baseline over simulator parameter tables.

A population-based black-box optimizer in the spirit of PMEvo (Ritter & Hack,
2020), which the paper discusses as the closest prior work on inferring port
mappings by evolutionary optimization (Section VIII-A).  Unlike PMEvo the
genome here is the *entire* flat parameter vector of the simulator, so the
baseline answers the same question OpenTuner does — how far does a black-box
method get with DiffTune's evaluation budget? — with a different search bias
(recombination of good tables instead of a bandit over point mutations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays, ParameterSpec
from repro.isa.basic_block import BasicBlock


@dataclass
class GeneticConfig:
    """Hyper-parameters of the genetic-algorithm baseline.

    Attributes:
        population_size: Number of candidate tables per generation.
        elite_fraction: Fraction of the population copied unchanged into the
            next generation (elitism).
        tournament_size: Candidates drawn per tournament when selecting
            parents.
        crossover_rate: Probability a child mixes two parents (otherwise it is
            a mutated copy of one).
        mutation_rate: Per-gene probability of being resampled.
        mutation_scale: Width of the Gaussian perturbation applied to mutated
            genes, as a fraction of the gene's sampling range.
        evaluation_budget: Total number of block evaluations allowed
            (generations stop once the budget is exhausted) — the same budget
            parity rule Section V-C applies to OpenTuner.
        blocks_per_evaluation: Blocks drawn per fitness evaluation.
        seed: Random seed.
    """

    population_size: int = 16
    elite_fraction: float = 0.25
    tournament_size: int = 3
    crossover_rate: float = 0.7
    mutation_rate: float = 0.05
    mutation_scale: float = 0.35
    evaluation_budget: int = 20_000
    blocks_per_evaluation: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= self.elite_fraction < 1.0:
            raise ValueError("elite_fraction must be in [0, 1)")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 < self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in (0, 1]")


@dataclass
class GeneticResult:
    """Outcome of a genetic-algorithm run."""

    best_arrays: ParameterArrays
    best_error: float
    generations: int
    evaluations: int
    error_history: List[float]


class GeneticTuner:
    """Tunes a simulator's parameters with a generational genetic algorithm."""

    def __init__(self, adapter: SimulatorAdapter, config: Optional[GeneticConfig] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.adapter = adapter
        self.config = config or GeneticConfig()
        self._log = log or (lambda message: None)

    # ------------------------------------------------------------------
    # Genome helpers
    # ------------------------------------------------------------------
    def _bounds(self, spec: ParameterSpec) -> Tuple[np.ndarray, np.ndarray]:
        global_low = np.concatenate([np.full(field.size, field.sample_low, dtype=np.float64)
                                     for field in spec.global_fields]) \
            if spec.global_fields else np.zeros(0)
        global_high = np.concatenate([np.full(field.size, field.sample_high, dtype=np.float64)
                                      for field in spec.global_fields]) \
            if spec.global_fields else np.zeros(0)
        per_low = np.concatenate([np.full(field.size, field.sample_low, dtype=np.float64)
                                  for field in spec.per_instruction_fields])
        per_high = np.concatenate([np.full(field.size, field.sample_high, dtype=np.float64)
                                   for field in spec.per_instruction_fields])
        low = np.concatenate([global_low, np.tile(per_low, spec.num_opcodes)])
        high = np.concatenate([global_high, np.tile(per_high, spec.num_opcodes)])
        return low, high

    @staticmethod
    def _to_arrays(spec: ParameterSpec, genome: np.ndarray) -> ParameterArrays:
        return ParameterArrays.from_flat_vector(
            np.round(genome), spec.global_dim, spec.num_opcodes, spec.per_instruction_dim)

    # ------------------------------------------------------------------
    # Genetic operators
    # ------------------------------------------------------------------
    def _tournament(self, fitness: np.ndarray, rng: np.random.Generator) -> int:
        """Index of the fittest individual among a random tournament draw."""
        contenders = rng.integers(0, len(fitness), size=self.config.tournament_size)
        return int(contenders[np.argmin(fitness[contenders])])

    def _crossover(self, first: np.ndarray, second: np.ndarray,
                   rng: np.random.Generator) -> np.ndarray:
        """Uniform crossover: each gene comes from either parent."""
        take_first = rng.random(first.shape) < 0.5
        return np.where(take_first, first, second)

    def _mutate(self, genome: np.ndarray, low: np.ndarray, high: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        mutated = genome.copy()
        mask = rng.random(genome.shape) < self.config.mutation_rate
        scale = (high - low) * self.config.mutation_scale
        noise = rng.normal(0.0, 1.0, size=genome.shape) * scale
        mutated[mask] = mutated[mask] + noise[mask]
        return np.clip(mutated, low, high)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tune(self, blocks: Sequence[BasicBlock], true_timings: np.ndarray) -> GeneticResult:
        """Evolve parameter tables to minimize MAPE on ``blocks``."""
        if not blocks:
            raise ValueError("need at least one evaluation block")
        spec = self.adapter.parameter_spec()
        config = self.config
        rng = np.random.default_rng(config.seed)
        low, high = self._bounds(spec)
        true_timings = np.asarray(true_timings, dtype=np.float64)

        def evaluate(genome: np.ndarray) -> float:
            batch = rng.integers(0, len(blocks),
                                 size=min(config.blocks_per_evaluation, len(blocks)))
            arrays = self._to_arrays(spec, genome)
            predictions = self.adapter.predict_timings(
                arrays, [blocks[int(index)] for index in batch])
            return mape_loss_value(predictions, true_timings[batch])

        population = [spec.sample(rng).to_flat_vector() for _ in range(config.population_size)]
        population = [np.clip(genome, low, high) for genome in population]
        fitness = np.array([evaluate(genome) for genome in population])
        evaluations = config.population_size * min(config.blocks_per_evaluation, len(blocks))

        history: List[float] = [float(fitness.min())]
        generations = 0
        elite_count = max(1, int(config.elite_fraction * config.population_size))
        per_generation_cost = config.population_size * min(config.blocks_per_evaluation,
                                                           len(blocks))
        while evaluations + per_generation_cost <= config.evaluation_budget:
            generations += 1
            order = np.argsort(fitness)
            elites = [population[int(index)].copy() for index in order[:elite_count]]
            children: List[np.ndarray] = list(elites)
            while len(children) < config.population_size:
                parent = population[self._tournament(fitness, rng)]
                if rng.random() < config.crossover_rate:
                    other = population[self._tournament(fitness, rng)]
                    child = self._crossover(parent, other, rng)
                else:
                    child = parent.copy()
                children.append(self._mutate(child, low, high, rng))
            population = children
            fitness = np.array([evaluate(genome) for genome in population])
            evaluations += per_generation_cost
            history.append(float(fitness.min()))
            self._log(f"generation {generations}: best batch error {fitness.min():.3f}")

        best_index = int(np.argmin(fitness))
        best_arrays = spec.clip_to_bounds(
            spec.round_to_integers(self._to_arrays(spec, population[best_index])))
        best_error = mape_loss_value(self.adapter.predict_timings(best_arrays, list(blocks)),
                                     true_timings)
        return GeneticResult(best_arrays=best_arrays, best_error=best_error,
                             generations=generations, evaluations=evaluations,
                             error_history=history)
