"""Plain random search over parameter tables.

The paper notes (Section I) that classic strategies like random search are
intractable for llvm-mca's parameter space; this module provides the
baseline so the claim can be checked directly, and is also used to compute
the "random parameter table" error reported in Section V-A.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays
from repro.isa.basic_block import BasicBlock


def random_search(adapter: SimulatorAdapter, blocks: Sequence[BasicBlock],
                  true_timings: np.ndarray, num_samples: int,
                  seed: int = 0,
                  blocks_per_evaluation: Optional[int] = None
                  ) -> Tuple[ParameterArrays, float]:
    """Evaluate ``num_samples`` random tables and return the best one.

    Args:
        adapter: Simulator adapter defining the sampling distribution.
        blocks: Evaluation blocks.
        true_timings: Ground-truth timings aligned with ``blocks``.
        num_samples: Number of random tables to draw.
        seed: Random seed.
        blocks_per_evaluation: Evaluate each table on a random subset of this
            many blocks (defaults to all blocks).

    Returns:
        ``(best_arrays, best_error)``.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    spec = adapter.parameter_spec()
    rng = np.random.default_rng(seed)
    true_timings = np.asarray(true_timings, dtype=np.float64)

    if blocks_per_evaluation is None or blocks_per_evaluation >= len(blocks):
        # Full-dataset evaluation draws nothing from ``rng`` besides the
        # tables themselves, so candidates can be sampled a chunk at a time
        # and handed to the adapter's batch API — which fans tables out
        # across processes when engine workers are configured — without
        # changing the sampled sequence.  Chunking keeps memory proportional
        # to the chunk, not the full sample budget.
        chunk_size = 32
        best_arrays = None
        best_error = float("inf")
        remaining = num_samples
        while remaining > 0:
            candidates = [spec.sample(rng) for _ in range(min(chunk_size, remaining))]
            remaining -= len(candidates)
            predictions = adapter.predict_timings_batch(candidates, blocks)
            for arrays, row in zip(candidates, predictions):
                error = mape_loss_value(row, true_timings)
                if error < best_error:
                    best_arrays, best_error = arrays, error
        assert best_arrays is not None
        return best_arrays, best_error

    best_arrays: Optional[ParameterArrays] = None
    best_error = float("inf")
    for _ in range(num_samples):
        arrays = spec.sample(rng)
        indices = rng.choice(len(blocks), size=blocks_per_evaluation, replace=False)
        subset = [blocks[int(index)] for index in indices]
        targets = true_timings[indices]
        error = mape_loss_value(adapter.predict_timings(arrays, subset), targets)
        if error < best_error:
            best_arrays, best_error = arrays, error
    assert best_arrays is not None
    return best_arrays, best_error
