"""Black-box global optimization baseline (OpenTuner stand-in).

Section V-C of the paper compares DiffTune against OpenTuner, an autotuning
framework that runs a multi-armed bandit over an ensemble of search
techniques, each of which proposes new parameter settings that are then
evaluated by running the actual program.  The implementation here mirrors
that structure:

* an ensemble of search techniques — random sampling, coordinate hill
  climbing, Gaussian mutation, differential-evolution-style recombination,
  and simulated annealing;
* a UCB1 multi-armed bandit that, on every iteration, picks the technique
  expected to make the most progress, evaluates its proposal on a batch of
  basic blocks with the *original* simulator, and credits the technique when
  the proposal improves on the best configuration so far.

For budget parity with DiffTune (as in the paper), the baseline is given a
budget measured in *block evaluations*: the same number of basic-block
simulations DiffTune spends building its simulated dataset plus evaluating
the learned table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays, ParameterSpec
from repro.isa.basic_block import BasicBlock


@dataclass
class OpenTunerConfig:
    """Configuration of the black-box tuner."""

    evaluation_budget: int = 100000   # total block evaluations
    blocks_per_evaluation: int = 200  # blocks sampled to score one proposal
    seed: int = 0
    exploration: float = 1.4          # UCB exploration constant


class _SearchTechnique:
    """Base class: proposes a new parameter vector from the current best."""

    name = "base"

    def propose(self, best: np.ndarray, spec_low: np.ndarray, spec_high: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class _RandomSearch(_SearchTechnique):
    name = "random"

    def propose(self, best, spec_low, spec_high, rng):
        return rng.uniform(spec_low, spec_high)


class _HillClimb(_SearchTechnique):
    """Perturb a small random subset of coordinates by +/- 1."""

    name = "hillclimb"

    def propose(self, best, spec_low, spec_high, rng):
        proposal = best.copy()
        count = max(1, int(0.01 * len(best)))
        indices = rng.choice(len(best), size=count, replace=False)
        proposal[indices] = proposal[indices] + rng.choice([-1.0, 1.0], size=count)
        return np.clip(proposal, spec_low, spec_high)


class _GaussianMutation(_SearchTechnique):
    name = "gaussian"

    def propose(self, best, spec_low, spec_high, rng):
        scale = (spec_high - spec_low) * 0.1
        proposal = best + rng.normal(0.0, 1.0, size=best.shape) * scale
        return np.clip(proposal, spec_low, spec_high)


class _DifferentialEvolution(_SearchTechnique):
    """Recombine the best vector with two random vectors (DE/best/1 style)."""

    name = "differential"

    def propose(self, best, spec_low, spec_high, rng):
        a = rng.uniform(spec_low, spec_high)
        b = rng.uniform(spec_low, spec_high)
        proposal = best + 0.5 * (a - b)
        crossover = rng.random(best.shape) < 0.2
        proposal = np.where(crossover, proposal, best)
        return np.clip(proposal, spec_low, spec_high)


class _SimulatedAnnealing(_SearchTechnique):
    """Gaussian perturbation whose magnitude shrinks as the budget is spent."""

    name = "annealing"

    def __init__(self) -> None:
        self.temperature = 1.0

    def propose(self, best, spec_low, spec_high, rng):
        scale = (spec_high - spec_low) * 0.3 * self.temperature
        self.temperature = max(0.05, self.temperature * 0.995)
        proposal = best + rng.normal(0.0, 1.0, size=best.shape) * scale
        return np.clip(proposal, spec_low, spec_high)


class BanditEnsemble:
    """UCB1 bandit over the search-technique ensemble."""

    def __init__(self, techniques: Sequence[_SearchTechnique], exploration: float = 1.4) -> None:
        if not techniques:
            raise ValueError("need at least one search technique")
        self.techniques = list(techniques)
        self.exploration = exploration
        self.pulls = np.zeros(len(self.techniques))
        self.rewards = np.zeros(len(self.techniques))
        self._total = 0

    def select(self) -> int:
        """Pick the next technique index by UCB1."""
        self._total += 1
        for index in range(len(self.techniques)):
            if self.pulls[index] == 0:
                return index
        means = self.rewards / self.pulls
        bonus = self.exploration * np.sqrt(np.log(self._total) / self.pulls)
        return int(np.argmax(means + bonus))

    def update(self, index: int, reward: float) -> None:
        self.pulls[index] += 1
        self.rewards[index] += reward


class OpenTunerBaseline:
    """Black-box tuner over a simulator's flat parameter vector."""

    def __init__(self, adapter: SimulatorAdapter, config: Optional[OpenTunerConfig] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.adapter = adapter
        self.config = config or OpenTunerConfig()
        self._log = log or (lambda message: None)

    def _bounds(self, spec: ParameterSpec) -> Tuple[np.ndarray, np.ndarray]:
        """Search bounds per flat dimension (the paper constrains the search
        to the same ranges DiffTune samples from)."""
        global_low = np.concatenate([np.full(field.size, field.sample_low, dtype=np.float64)
                                     for field in spec.global_fields]) \
            if spec.global_fields else np.zeros(0)
        global_high = np.concatenate([np.full(field.size, field.sample_high, dtype=np.float64)
                                      for field in spec.global_fields]) \
            if spec.global_fields else np.zeros(0)
        per_low = np.concatenate([np.full(field.size, field.sample_low, dtype=np.float64)
                                  for field in spec.per_instruction_fields])
        per_high = np.concatenate([np.full(field.size, field.sample_high, dtype=np.float64)
                                   for field in spec.per_instruction_fields])
        low = np.concatenate([global_low, np.tile(per_low, spec.num_opcodes)])
        high = np.concatenate([global_high, np.tile(per_high, spec.num_opcodes)])
        return low, high

    def tune(self, blocks: Sequence[BasicBlock], true_timings: np.ndarray) -> ParameterArrays:
        """Search for parameters minimizing MAPE on ``blocks``."""
        spec = self.adapter.parameter_spec()
        rng = np.random.default_rng(self.config.seed)
        low, high = self._bounds(spec)
        true_timings = np.asarray(true_timings, dtype=np.float64)

        def to_arrays(vector: np.ndarray) -> ParameterArrays:
            return ParameterArrays.from_flat_vector(
                np.round(vector), spec.global_dim, spec.num_opcodes, spec.per_instruction_dim)

        def evaluate(vector: np.ndarray, batch_indices: np.ndarray) -> float:
            arrays = to_arrays(vector)
            batch_blocks = [blocks[int(index)] for index in batch_indices]
            predictions = self.adapter.predict_timings(arrays, batch_blocks)
            return mape_loss_value(predictions, true_timings[batch_indices])

        techniques: List[_SearchTechnique] = [
            _RandomSearch(), _HillClimb(), _GaussianMutation(),
            _DifferentialEvolution(), _SimulatedAnnealing(),
        ]
        bandit = BanditEnsemble(techniques, exploration=self.config.exploration)

        best_vector = rng.uniform(low, high)
        batch = rng.integers(0, len(blocks),
                             size=min(self.config.blocks_per_evaluation, len(blocks)))
        best_score = evaluate(best_vector, batch)
        evaluations = len(batch)
        iteration = 0
        while evaluations + self.config.blocks_per_evaluation <= self.config.evaluation_budget:
            iteration += 1
            technique_index = bandit.select()
            proposal = techniques[technique_index].propose(best_vector, low, high, rng)
            batch = rng.integers(0, len(blocks),
                                 size=min(self.config.blocks_per_evaluation, len(blocks)))
            score = evaluate(proposal, batch)
            evaluations += len(batch)
            improved = score < best_score
            bandit.update(technique_index, 1.0 if improved else 0.0)
            if improved:
                best_vector, best_score = proposal, score
                self._log(f"iteration {iteration}: {techniques[technique_index].name} "
                          f"improved error to {score:.3f}")
        self._log(f"finished after {evaluations} block evaluations, "
                  f"best batch error {best_score:.3f}")
        return spec.clip_to_bounds(spec.round_to_integers(to_arrays(best_vector)))
