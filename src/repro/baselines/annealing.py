"""Standalone simulated-annealing baseline over simulator parameter tables.

OpenTuner's ensemble already contains an annealing-flavoured technique; this
module provides simulated annealing as a *standalone* black-box baseline so
the ablation benchmarks can separate "the bandit ensemble" from "any single
classic technique" when reproducing the Section V-C comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays, ParameterSpec
from repro.isa.basic_block import BasicBlock


@dataclass
class AnnealingConfig:
    """Hyper-parameters of the simulated-annealing baseline.

    Attributes:
        initial_temperature: Starting acceptance temperature (in units of
            MAPE, so 0.5 means a 50-percentage-point regression is accepted
            with probability 1/e at the start).
        cooling_rate: Multiplicative temperature decay per step.
        step_scale: Width of the Gaussian proposal, as a fraction of each
            gene's sampling range; shrinks with the temperature.
        evaluation_budget: Total block evaluations allowed (budget parity with
            DiffTune, as in Section V-C).
        blocks_per_evaluation: Blocks drawn per candidate evaluation.
        seed: Random seed.
    """

    initial_temperature: float = 0.5
    cooling_rate: float = 0.97
    step_scale: float = 0.25
    evaluation_budget: int = 20_000
    blocks_per_evaluation: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0.0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < self.cooling_rate < 1.0:
            raise ValueError("cooling_rate must be in (0, 1)")
        if self.step_scale <= 0.0:
            raise ValueError("step_scale must be positive")


@dataclass
class AnnealingResult:
    """Outcome of a simulated-annealing run."""

    best_arrays: ParameterArrays
    best_error: float
    steps: int
    evaluations: int
    accepted_moves: int
    error_history: List[float]


class SimulatedAnnealingTuner:
    """Tunes a simulator's parameters with classic simulated annealing."""

    def __init__(self, adapter: SimulatorAdapter, config: Optional[AnnealingConfig] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.adapter = adapter
        self.config = config or AnnealingConfig()
        self._log = log or (lambda message: None)

    def _bounds(self, spec: ParameterSpec) -> Tuple[np.ndarray, np.ndarray]:
        global_low = np.concatenate([np.full(field.size, field.sample_low, dtype=np.float64)
                                     for field in spec.global_fields]) \
            if spec.global_fields else np.zeros(0)
        global_high = np.concatenate([np.full(field.size, field.sample_high, dtype=np.float64)
                                      for field in spec.global_fields]) \
            if spec.global_fields else np.zeros(0)
        per_low = np.concatenate([np.full(field.size, field.sample_low, dtype=np.float64)
                                  for field in spec.per_instruction_fields])
        per_high = np.concatenate([np.full(field.size, field.sample_high, dtype=np.float64)
                                   for field in spec.per_instruction_fields])
        low = np.concatenate([global_low, np.tile(per_low, spec.num_opcodes)])
        high = np.concatenate([global_high, np.tile(per_high, spec.num_opcodes)])
        return low, high

    def tune(self, blocks: Sequence[BasicBlock], true_timings: np.ndarray) -> AnnealingResult:
        """Anneal parameter tables to minimize MAPE on ``blocks``."""
        if not blocks:
            raise ValueError("need at least one evaluation block")
        spec = self.adapter.parameter_spec()
        config = self.config
        rng = np.random.default_rng(config.seed)
        low, high = self._bounds(spec)
        true_timings = np.asarray(true_timings, dtype=np.float64)
        batch_size = min(config.blocks_per_evaluation, len(blocks))

        def to_arrays(genome: np.ndarray) -> ParameterArrays:
            return ParameterArrays.from_flat_vector(
                np.round(genome), spec.global_dim, spec.num_opcodes, spec.per_instruction_dim)

        def evaluate(genome: np.ndarray) -> float:
            batch = rng.integers(0, len(blocks), size=batch_size)
            predictions = self.adapter.predict_timings(
                to_arrays(genome), [blocks[int(index)] for index in batch])
            return mape_loss_value(predictions, true_timings[batch])

        current = np.clip(spec.sample(rng).to_flat_vector(), low, high)
        current_score = evaluate(current)
        best, best_score = current.copy(), current_score
        evaluations = batch_size
        temperature = config.initial_temperature
        accepted = 0
        steps = 0
        history: List[float] = [best_score]

        while evaluations + batch_size <= config.evaluation_budget:
            steps += 1
            spread = (high - low) * config.step_scale * max(temperature
                                                            / config.initial_temperature, 0.05)
            proposal = np.clip(current + rng.normal(0.0, 1.0, size=current.shape) * spread,
                               low, high)
            score = evaluate(proposal)
            evaluations += batch_size
            delta = score - current_score
            if delta <= 0.0 or rng.random() < np.exp(-delta / max(temperature, 1e-9)):
                current, current_score = proposal, score
                accepted += 1
                if score < best_score:
                    best, best_score = proposal.copy(), score
                    self._log(f"step {steps}: new best batch error {score:.3f}")
            temperature *= config.cooling_rate
            history.append(best_score)

        best_arrays = spec.clip_to_bounds(spec.round_to_integers(to_arrays(best)))
        best_error = mape_loss_value(self.adapter.predict_timings(best_arrays, list(blocks)),
                                     true_timings)
        return AnnealingResult(best_arrays=best_arrays, best_error=best_error, steps=steps,
                               evaluations=evaluations, accepted_moves=accepted,
                               error_history=history)
