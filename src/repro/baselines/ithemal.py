"""Ithemal-style learned throughput baseline.

In Table IV the paper reports Ithemal (Mendis et al., 2019) as the most
accurate predictor: a learned model trained directly on the ground-truth
measurements, with no simulator in the loop.  It serves as the accuracy
lower bound that the parameterized simulators are compared against.

The baseline here reuses the repository's surrogate architectures with the
parameter inputs removed (an all-zero parameter vector is fed instead), and
trains them directly on the measured timings — which is exactly what Ithemal
is: a block → timing regressor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff.optim import Adam
from repro.autodiff.tensor import no_grad
from repro.core.losses import mape_loss_value, surrogate_loss
from repro.core.parameters import ParameterField, ParameterSpec
from repro.core.surrogate import BlockFeaturizer, SurrogateConfig, build_surrogate
from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable


@dataclass
class IthemalConfig:
    """Training configuration for the Ithemal baseline."""

    surrogate: SurrogateConfig = field(default_factory=lambda: SurrogateConfig(
        kind="pooled", embedding_size=24, hidden_size=48, num_lstm_layers=2))
    learning_rate: float = 0.002
    batch_size: int = 16
    epochs: int = 6
    gradient_clip: float = 5.0
    seed: int = 0


class IthemalBaseline:
    """A learned basic-block timing predictor trained on measurements."""

    def __init__(self, opcode_table: Optional[OpcodeTable] = None,
                 config: Optional[IthemalConfig] = None) -> None:
        self.opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        self.config = config or IthemalConfig()
        # A dummy one-dimensional parameter space: the model architecture
        # expects parameter inputs, which the baseline zeroes out.
        self._spec = ParameterSpec(
            global_fields=[],
            per_instruction_fields=[ParameterField("Unused", 1, 0, True, 0, 1)],
            num_opcodes=len(self.opcode_table))
        self.featurizer = BlockFeaturizer(self.opcode_table)
        self.model = build_surrogate(self._spec, self.featurizer, self.config.surrogate)
        self._trained = False

    # ------------------------------------------------------------------
    # Training and prediction
    # ------------------------------------------------------------------
    def _inputs(self, block: BasicBlock):
        featurized = self.featurizer.featurize(block)
        per_instruction = np.zeros((len(featurized.opcode_indices), 1))
        return featurized, per_instruction, np.zeros(0)

    def fit(self, blocks: Sequence[BasicBlock], timings: np.ndarray) -> List[float]:
        """Train on measured timings; returns per-epoch mean losses."""
        if len(blocks) != len(timings):
            raise ValueError("blocks and timings must be aligned")
        timings = np.asarray(timings, dtype=np.float64)
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        rng = np.random.default_rng(self.config.seed)
        order = np.arange(len(blocks))
        epoch_losses: List[float] = []
        self.model.train()
        for _ in range(self.config.epochs):
            rng.shuffle(order)
            batch_losses = []
            for start in range(0, len(order), self.config.batch_size):
                indices = order[start:start + self.config.batch_size]
                predictions = []
                targets = []
                for index in indices:
                    featurized, per_instruction, global_values = self._inputs(blocks[int(index)])
                    predictions.append(self.model.forward(featurized, per_instruction,
                                                          global_values))
                    targets.append(float(timings[int(index)]))
                loss = surrogate_loss(predictions, targets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(self.config.gradient_clip)
                optimizer.step()
                batch_losses.append(loss.item())
            epoch_losses.append(float(np.mean(batch_losses)))
        self.model.eval()
        self._trained = True
        return epoch_losses

    def predict(self, block: BasicBlock) -> float:
        featurized, per_instruction, global_values = self._inputs(block)
        with no_grad():
            return float(self.model.forward(featurized, per_instruction, global_values).item())

    def predict_many(self, blocks: Sequence[BasicBlock]) -> np.ndarray:
        return np.array([self.predict(block) for block in blocks], dtype=np.float64)

    def evaluate(self, blocks: Sequence[BasicBlock], timings: np.ndarray) -> float:
        """MAPE against measured timings."""
        return mape_loss_value(self.predict_many(blocks), np.asarray(timings, dtype=np.float64))
