"""IACA-like analytical throughput model.

Table IV reports Intel's IACA as the most accurate *analytical* model: a
static analyzer with hand-tuned knowledge of Intel microarchitectures,
including undocumented behaviours (zero-idiom elision, micro-fusion, the
stack engine).  IACA only supports Intel chips, so the paper reports "N/A"
for Zen 2; this model does the same.

The implementation combines a port-pressure throughput bound with a
loop-carried dependency bound, using the *documented* class characteristics
of the target plus the Intel-specific special cases a tool like IACA encodes.
It deliberately has no tunable parameters — it plays the "hand-written
analytical model" role in the comparison.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.opcodes import UopClass
from repro.targets.uarch import UarchSpec


class IACAModel:
    """An analytical Intel-only basic-block throughput estimator."""

    def __init__(self, spec: UarchSpec) -> None:
        self.spec = spec

    @property
    def supported(self) -> bool:
        """IACA only analyzes Intel microarchitectures."""
        return self.spec.vendor == "intel"

    # ------------------------------------------------------------------
    # Per-instruction knowledge (with Intel special cases)
    # ------------------------------------------------------------------
    def _latency(self, instruction: Instruction) -> float:
        documented = self.spec.documented_for(instruction.opcode.uop_class)
        latency = float(documented.latency)
        if instruction.is_zero_idiom():
            return 0.0
        if instruction.opcode.uop_class == UopClass.MOV and not instruction.is_load \
                and not instruction.is_store:
            return 0.0  # move elimination
        if instruction.is_load:
            latency += self.spec.load_latency
        return latency

    def _uops(self, instruction: Instruction) -> float:
        documented = self.spec.documented_for(instruction.opcode.uop_class)
        uops = float(documented.micro_ops)
        if instruction.is_load and instruction.opcode.uop_class not in (
                UopClass.LOAD, UopClass.POP):
            uops += 1.0
        if instruction.is_store and instruction.opcode.uop_class not in (
                UopClass.STORE, UopClass.PUSH):
            uops += 1.0
        return uops

    def _port_pressure(self, block: BasicBlock) -> float:
        """Approximate per-port pressure with class-level port counts."""
        alu_ports = 4.0 if self.spec.llvm_name != "ivybridge" else 3.0
        pressure: Dict[str, float] = {"alu": 0.0, "vec": 0.0, "load": 0.0, "store": 0.0,
                                      "div": 0.0}
        for instruction in block:
            uop_class = instruction.opcode.uop_class
            if instruction.is_zero_idiom():
                continue
            if uop_class in (UopClass.ALU, UopClass.SHIFT, UopClass.LEA, UopClass.CMOV,
                             UopClass.SETCC, UopClass.MUL):
                pressure["alu"] += 1.0 / alu_ports
            elif uop_class == UopClass.DIV:
                pressure["div"] += self.spec.documented_for(uop_class).latency / 3.0
            elif uop_class in (UopClass.VEC_ALU, UopClass.VEC_MUL, UopClass.VEC_MOV,
                               UopClass.CVT):
                pressure["vec"] += 0.5
            elif uop_class == UopClass.VEC_DIV:
                pressure["div"] += self.spec.documented_for(uop_class).latency / 4.0
            if instruction.is_load:
                pressure["load"] += 0.5
            if instruction.is_store:
                pressure["store"] += 1.0
        return max(pressure.values()) if pressure else 0.0

    def _chain_bound(self, block: BasicBlock) -> float:
        """Loop-carried dependency-chain bound using documented latencies."""
        register_ready: Dict[str, float] = {}
        iterations = 4
        completions = []
        for _ in range(iterations):
            last = completions[-1] if completions else 0.0
            for instruction in block:
                start = 0.0
                for register in instruction.source_registers():
                    if self.spec.stack_engine and register == "rsp" and \
                            instruction.opcode.uop_class in (UopClass.PUSH, UopClass.POP):
                        continue
                    start = max(start, register_ready.get(register, 0.0))
                finish = start + self._latency(instruction)
                for register in instruction.destination_registers():
                    register_ready[register] = finish
                last = max(last, finish)
            completions.append(last)
        if len(completions) >= 2:
            deltas = np.diff(completions)
            return float(np.mean(deltas[1:])) if len(deltas) > 1 else float(deltas[0])
        return completions[-1] / iterations

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_timing(self, block: BasicBlock) -> float:
        """Predicted cycles per iteration; raises on non-Intel targets."""
        if not self.supported:
            raise ValueError(f"IACA does not support {self.spec.name}")
        frontend = sum(self._uops(instruction) for instruction in block) / 4.0
        bound = max(self._port_pressure(block), self._chain_bound(block), frontend,
                    len(block) / 6.0)
        return max(bound, 0.05)

    def predict_many(self, blocks: Sequence[BasicBlock]) -> np.ndarray:
        return np.array([self.predict_timing(block) for block in blocks], dtype=np.float64)
