"""Greedy coordinate-descent baseline over named parameter fields.

This is the "manual tuning, automated" baseline: sweep one parameter field at
a time over a small candidate range, keep the best value, and repeat.  It is
much more sample-efficient than global black-box search when parameters are
nearly independent (the global DispatchWidth sweep of Figure 5 is exactly one
such coordinate sweep), but it cannot capture interactions between fields —
which is the regime DiffTune's joint gradient-based optimization targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays
from repro.isa.basic_block import BasicBlock


@dataclass
class CoordinateDescentConfig:
    """Hyper-parameters of the coordinate-descent baseline.

    Attributes:
        rounds: Full passes over the parameter fields.
        candidates_per_field: Values tried per field per pass (evenly spread
            over the field's sampling range).
        evaluation_budget: Total block evaluations allowed; the sweep stops
            early when the budget runs out.
        blocks_per_evaluation: Blocks drawn per candidate evaluation.
        sweep_global_fields: Whether global fields are swept.
        sweep_per_instruction_fields: Whether per-instruction fields are swept
            (each candidate sets the *whole column* for that field — the
            per-opcode resolution that DiffTune has is deliberately absent).
        seed: Random seed.
    """

    rounds: int = 2
    candidates_per_field: int = 5
    evaluation_budget: int = 20_000
    blocks_per_evaluation: int = 64
    sweep_global_fields: bool = True
    sweep_per_instruction_fields: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.candidates_per_field < 2:
            raise ValueError("candidates_per_field must be >= 2")


@dataclass
class CoordinateDescentResult:
    """Outcome of a coordinate-descent run."""

    best_arrays: ParameterArrays
    best_error: float
    evaluations: int
    sweep_history: List[Tuple[str, float, float]]
    """Per-sweep records of ``(field name, chosen value, batch error)``."""


class CoordinateDescentTuner:
    """Sweeps one parameter field at a time, keeping improvements."""

    def __init__(self, adapter: SimulatorAdapter,
                 config: Optional[CoordinateDescentConfig] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.adapter = adapter
        self.config = config or CoordinateDescentConfig()
        self._log = log or (lambda message: None)

    def tune(self, blocks: Sequence[BasicBlock],
             true_timings: np.ndarray,
             initial_arrays: Optional[ParameterArrays] = None) -> CoordinateDescentResult:
        """Sweep fields to minimize MAPE on ``blocks``.

        Args:
            blocks: Evaluation blocks.
            true_timings: Ground-truth timings aligned with ``blocks``.
            initial_arrays: Starting point; defaults to a random sample from
                the parameter sampling distribution (never the expert table,
                to keep the comparison with DiffTune from-scratch).
        """
        if not blocks:
            raise ValueError("need at least one evaluation block")
        spec = self.adapter.parameter_spec()
        config = self.config
        rng = np.random.default_rng(config.seed)
        true_timings = np.asarray(true_timings, dtype=np.float64)
        batch_size = min(config.blocks_per_evaluation, len(blocks))

        current = (initial_arrays.copy() if initial_arrays is not None
                   else spec.sample(rng))
        evaluations = 0

        def evaluate(arrays: ParameterArrays) -> float:
            nonlocal evaluations
            batch = rng.integers(0, len(blocks), size=batch_size)
            predictions = self.adapter.predict_timings(
                arrays, [blocks[int(index)] for index in batch])
            evaluations += batch_size
            return mape_loss_value(predictions, true_timings[batch])

        current_score = evaluate(current)
        history: List[Tuple[str, float, float]] = []

        fields: List[Tuple[str, bool]] = []
        if config.sweep_global_fields:
            fields.extend((field.name, True) for field in spec.global_fields)
        if config.sweep_per_instruction_fields:
            fields.extend((field.name, False) for field in spec.per_instruction_fields)

        for _ in range(config.rounds):
            for name, is_global in fields:
                if evaluations + batch_size * config.candidates_per_field \
                        > config.evaluation_budget:
                    break
                field_ = spec.field_by_name(name)
                candidates = np.linspace(field_.sample_low, field_.sample_high,
                                         config.candidates_per_field)
                best_value: Optional[float] = None
                for value in candidates:
                    candidate = current.copy()
                    if is_global:
                        candidate.global_values[spec.global_field_slice(name)] = value
                    else:
                        candidate.per_instruction_values[
                            :, spec.per_instruction_field_slice(name)] = value
                    score = evaluate(candidate)
                    if score < current_score:
                        current, current_score = candidate, score
                        best_value = float(value)
                if best_value is not None:
                    history.append((name, best_value, current_score))
                    self._log(f"{name} -> {best_value:g} (batch error {current_score:.3f})")

        best_arrays = spec.clip_to_bounds(spec.round_to_integers(current))
        best_error = mape_loss_value(self.adapter.predict_timings(best_arrays, list(blocks)),
                                     true_timings)
        return CoordinateDescentResult(best_arrays=best_arrays, best_error=best_error,
                                       evaluations=evaluations, sweep_history=history)
