"""Command-line interface for the DiffTune reproduction.

Fifteen subcommands cover the day-to-day workflow:

* ``dataset``  — generate and measure a BHive-like dataset and save it to JSON.
* ``corpus``   — build / inspect sharded on-disk block corpora
  (:mod:`repro.corpus`): ``build`` streams generation and measurement into
  fixed-size shards (resumable at every shard boundary, ``--featurize`` adds
  the memory-mapped featurization store); ``stat`` prints — and with
  ``--verify`` digest-checks — a corpus's manifest.  A corpus plugs into
  ``tune --corpus`` and ``TuneSpec(corpus_path=...)``.
* ``learn``    — run DiffTune on a dataset (or a freshly generated one) and
  save the learned parameter table.
* ``tune``     — the pipeline-backed multi-target tuner: one checkpointable
  DiffTune run per target, resumable with ``--resume`` at the first
  incomplete stage, fanned out across processes with ``--workers``.
* ``evaluate`` — report error / Kendall's tau of a parameter table (default or
  learned) on a dataset's test split.
* ``compare``  — run the full Table IV comparison for one microarchitecture.
* ``timeline`` — print the llvm-mca style timeline / bottleneck report for a
  basic block under a (default or learned) parameter table.
* ``sweep``    — sweep one global parameter and report the error curve
  (the Figure 5 analysis) as a text plot.  Internally a single-axis grid
  campaign (see ``campaign``).
* ``campaign`` — declarative sweep campaigns (:mod:`repro.campaigns`):
  ``run`` a preset, a JSON spec file, or inline ``--axis`` flags through
  the checkpointable campaign runner; ``list`` the registered presets and
  sampling strategies; ``report`` summarizes a ``campaign_report.json``.
* ``matrix``   — distributed matrix campaigns (:mod:`repro.distributed`):
  ``run`` fans one campaign body across every ``target x simulator`` cell
  through a fault-tolerant scheduler (inline / process-pool / remote
  executors, per-cell retry with backoff, checkpointed ``--resume`` that
  skips completed cells); ``report`` summarizes a ``matrix_report.json``;
  ``list`` shows the registered executors and the default cell grid.
* ``worker``   — serve matrix cells over HTTP for ``matrix run --executor
  remote`` (``POST /run``, ``GET /healthz``).
* ``tune-baseline`` — run one of the black-box baselines (OpenTuner-style,
  genetic, annealing, coordinate descent, random search) for comparison
  with DiffTune.
* ``bundle``   — export a tuned parameter table (plus, when available, the
  trained surrogate) into a single-file deployment bundle, or inspect and
  digest-verify an existing bundle.
* ``serve``    — run the stdlib-only HTTP/JSON inference server on a bundle
  or a table, with request coalescing into engine megabatches.
* ``bench``    — the benchmark-scenario subsystem: list registered paper
  experiments, run them at a scale tier, and compare result files
  (forwards to ``python -m repro.bench``).

Every component choice — target microarchitecture, simulator, configuration
preset, baseline method — resolves through the :mod:`repro.api` registries,
so registered third-party plugins are first-class here: ``--simulator
llvm_sim`` (or any entry-point-registered simulator) works wherever a
simulator is constructed, and argument choices are generated from the
registries rather than hard-coded.

Examples::

    python -m repro.cli dataset --uarch haswell --blocks 500 --output haswell.json
    python -m repro.cli corpus build --uarch haswell --blocks 100000 \\
        --directory corpora/haswell --featurize
    python -m repro.cli corpus stat corpora/haswell --verify
    python -m repro.cli tune --targets haswell --corpus corpora/haswell \\
        --checkpoint-dir runs/
    python -m repro.cli learn --dataset haswell.json --output learned.json
    python -m repro.cli tune --targets haswell skylake --checkpoint-dir runs/
    python -m repro.cli tune --targets haswell skylake --checkpoint-dir runs/ --resume
    python -m repro.cli evaluate --dataset haswell.json --table learned.json
    python -m repro.cli evaluate --dataset haswell.json --simulator llvm_sim
    python -m repro.cli compare --uarch zen2 --blocks 300
    python -m repro.cli timeline --block "addq %rax, %rbx; imulq %rbx, %rcx"
    python -m repro.cli sweep --dataset haswell.json --field DispatchWidth
    python -m repro.cli campaign list
    python -m repro.cli campaign run --preset sec6c --blocks 120
    python -m repro.cli campaign run --dataset haswell.json \\
        --axis "WriteLatency@ADD32rr=0:5" --axis "DispatchWidth=1,2,4,8" \\
        --checkpoint-dir runs/campaign --output campaign_report.json
    python -m repro.cli campaign report campaign_report.json
    python -m repro.cli matrix run --axis "WriteLatency@ADD32rr=1,3,5" \\
        --executor pool --workers 4 --checkpoint-dir runs/matrix \\
        --output matrix_report.json
    python -m repro.cli matrix report matrix_report.json
    python -m repro.cli worker --port 8101
    python -m repro.cli tune-baseline --dataset haswell.json --method genetic
    python -m repro.cli bundle export --uarch haswell --table learned.json --output hsw.bundle
    python -m repro.cli bundle inspect hsw.bundle
    python -m repro.cli serve --bundle hsw.bundle --port 8000
    python -m repro.cli bench list
    python -m repro.cli bench run --tier smoke --workers 2
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

import repro
from repro.api import (BASELINES, PRESETS, SIMULATORS, TARGETS, BundleError,
                       CapabilityError, EvaluateSpec, PredictSpec, Session,
                       SpecValidationError, TuneSpec)
from repro.api.plugins import search_baseline_names


def _target_choices() -> List[str]:
    return TARGETS.names()


def _simulator_choices() -> List[str]:
    return SIMULATORS.names()


def _search_baseline_choices() -> List[str]:
    choices: List[str] = []
    for name in search_baseline_names(BASELINES):
        choices.append(name)
        choices.extend(BASELINES.entry(name).aliases)
    return sorted(choices)


def _sweep_field_choices() -> List[str]:
    fields = set()
    for _name, plugin in SIMULATORS.items():
        fields.update(plugin.sweep_fields)
    return sorted(fields)


def _add_simulator_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--simulator", default="mca", choices=_simulator_choices(),
                        help="simulator whose adapter/tables to use "
                             "(from the repro.api SIMULATORS registry)")


def _command_dataset(arguments: argparse.Namespace) -> int:
    from repro.bhive import build_dataset

    dataset = build_dataset(arguments.uarch, num_blocks=arguments.blocks,
                            seed=arguments.seed)
    dataset.save_json(arguments.output)
    stats = dataset.summary_statistics()
    print(f"Wrote {stats['num_blocks_total']} measured blocks for {dataset.uarch_name} "
          f"to {arguments.output}")
    print(f"  median length {stats['block_length_median']:.1f}, "
          f"median timing {stats['median_block_timing']:.2f} cycles/iteration, "
          f"{stats['unique_opcodes_total']} unique opcodes")
    return 0


def _command_learn(arguments: argparse.Namespace) -> int:
    session = Session.from_spec(
        TuneSpec(target=arguments.uarch,
                 simulator=arguments.simulator,
                 preset="paper" if arguments.paper_config else "fast",
                 num_blocks=arguments.blocks,
                 seed=arguments.seed,
                 dataset_path=arguments.dataset,
                 learn_fields=arguments.learn_fields,
                 narrow_sampling=not arguments.paper_sampling,
                 batch_training=arguments.batch_training,
                 batch_table_optimization=arguments.batch_table_optimization,
                 engine_workers=arguments.workers,
                 engine_megabatch=arguments.megabatch),
        log=lambda message: print(f"[difftune] {message}"))
    outcome = session.tune()
    outcome.learned_table.save_json(arguments.output)
    print(f"Saved learned table to {arguments.output}")
    print(f"Test error: default {outcome.default_test_error * 100:.1f}%, "
          f"learned {outcome.test_error * 100:.1f}%")
    return 0


def _command_tune(arguments: argparse.Namespace) -> int:
    from repro.pipeline import TargetSpec, tune_targets

    # Validate the per-target spec shape once, up front, so capability
    # mismatches (e.g. --learn-fields with a simulator that learns its full
    # parameter set) fail cleanly before dataset generation or pool fan-out.
    TuneSpec(target=arguments.targets[0], simulator=arguments.simulator,
             preset=arguments.config, num_blocks=arguments.blocks,
             seed=arguments.seed, learn_fields=arguments.learn_fields).validate()

    if arguments.corpus is not None and len(arguments.targets) > 1:
        raise SystemExit("--corpus names one target's corpus directory; "
                         "pass a single --targets entry with it")
    os.makedirs(arguments.output_dir, exist_ok=True)
    sequential = arguments.workers <= 1 or len(arguments.targets) == 1
    specs = [TargetSpec(
        target=target,
        simulator=arguments.simulator,
        num_blocks=arguments.blocks,
        seed=arguments.seed,
        corpus_path=arguments.corpus,
        config_preset=arguments.config,
        checkpoint_dir=os.path.join(arguments.checkpoint_dir, target),
        resume=arguments.resume,
        stop_after=arguments.stop_after,
        output_path=os.path.join(arguments.output_dir, f"{target}.json"),
        learn_fields=arguments.learn_fields,
        batch_training=arguments.batch_training,
        batch_table_optimization=arguments.batch_table_optimization,
        # Per-target process fan-out and engine fan-out compose poorly on a
        # laptop; give the engine the workers only when targets run serially.
        engine_workers=0 if not sequential else arguments.workers,
        verbose=sequential,
    ) for target in arguments.targets]
    outcomes = tune_targets(specs, workers=arguments.workers,
                            log=lambda message: print(f"[tune] {message}"))

    for target in arguments.targets:
        outcome = outcomes[target]
        if not outcome.completed:
            print(f"{target}: stopped after stage '{outcome.stopped_after}' "
                  f"({outcome.elapsed_seconds:.1f}s); rerun with --resume to finish")
            continue
        resumed = (f", resumed {len(outcome.resumed_stages)} stages"
                   if outcome.resumed_stages else "")
        print(f"{target}: train error {outcome.train_error * 100:.1f}%, "
              f"test error {outcome.test_error * 100:.1f}% "
              f"(default table {outcome.default_test_error * 100:.1f}%) "
              f"in {outcome.elapsed_seconds:.1f}s{resumed}")
        print(f"  saved learned table to {outcome.output_path}")
    return 0


def _command_evaluate(arguments: argparse.Namespace) -> int:
    session = Session.from_spec(EvaluateSpec(simulator=arguments.simulator,
                                             dataset_path=arguments.dataset,
                                             table_path=arguments.table,
                                             engine_megabatch=arguments.megabatch))
    report = session.evaluate()
    label = arguments.table if arguments.table else "default parameters"
    print(f"{session.dataset().uarch_name} {report['split']} split "
          f"({report['num_blocks']} blocks), {label} [{report['simulator']}]:")
    print(f"  error {report['error'] * 100:.1f}%, Kendall's tau {report['tau']:.3f}")
    return 0


def _command_compare(arguments: argparse.Namespace) -> int:
    from repro.eval.experiments import ExperimentScale, run_table4_for_uarch
    from repro.eval.tables import format_results_table

    scale = ExperimentScale.benchmark()
    scale.num_blocks = arguments.blocks
    scale.seed = arguments.seed
    results = run_table4_for_uarch(arguments.uarch, scale,
                                   include_opentuner=not arguments.skip_opentuner,
                                   include_ithemal=not arguments.skip_ithemal)
    name = TARGETS.get(arguments.uarch).name
    print(format_results_table({name: results}, title="Table IV analogue"))
    return 0


def _command_timeline(arguments: argparse.Namespace) -> int:
    session = Session.from_spec(PredictSpec(target=arguments.uarch,
                                            simulator=arguments.simulator,
                                            table_path=arguments.table))
    try:
        print(session.timeline(arguments.block))
    except CapabilityError as error:
        raise SystemExit(str(error))
    return 0


def _command_sweep(arguments: argparse.Namespace) -> int:
    from repro.eval.plots import Series, ascii_line_plot

    session = Session.from_spec(EvaluateSpec(simulator=arguments.simulator,
                                             dataset_path=arguments.dataset,
                                             table_path=arguments.table,
                                             engine_workers=arguments.workers,
                                             engine_megabatch=arguments.megabatch))
    field = arguments.field
    plugin = SIMULATORS.get(arguments.simulator)
    if field not in plugin.sweep_fields:
        supported = ", ".join(sorted(plugin.sweep_fields)) or "<none>"
        raise SystemExit(f"simulator {plugin.name!r} cannot sweep {field!r}; "
                         f"sweepable fields: {supported}")
    values = list(range(arguments.low, arguments.high + 1, arguments.step))
    # A single-axis grid campaign: one batched engine call — the test blocks
    # are compiled once for the whole sweep, and tables fan out across
    # processes with --workers.  `repro campaign run` is the general form.
    result = session.run_campaign(
        {"strategy": "grid", "axes": [{"field": field, "values": values}]})
    errors = [variant["error"] * 100.0 for variant in result.variants]
    series = Series(field, x=[float(value) for value in values], y=errors)
    print(ascii_line_plot([series],
                          title=f"{field} sensitivity ({session.dataset().uarch_name})",
                          x_label=field, y_label="error %"))
    best = values[int(np.argmin(errors))]
    print(f"Best {field}: {best} (error {min(errors):.1f}%)")
    return 0


def _parse_axis(text: str) -> dict:
    """Parse one ``--axis`` flag into an :class:`AxisSpec` payload dict.

    Grammar: ``FIELD[@OPCODE][#PORT]=V1,V2,...`` or
    ``FIELD[@OPCODE][#PORT]=LOW:HIGH[:STEP]`` — e.g. ``DispatchWidth=1,2,4``
    or ``WriteLatency@ADD32rr=0:5`` or ``PortMap@XOR32rr#2=0,1``.
    """
    label, separator, values_text = text.partition("=")
    if not separator or not label or not values_text:
        raise SystemExit(f"bad --axis {text!r}: expected "
                         f"FIELD[@OPCODE][#PORT]=V1,V2,... or =LOW:HIGH[:STEP]")
    axis: dict = {}
    try:
        if "#" in label:
            label, _, port = label.rpartition("#")
            axis["port"] = int(port)
        if "@" in label:
            label, _, opcode = label.partition("@")
            axis["opcode"] = opcode
        axis["field"] = label
        if ":" in values_text:
            bounds = [int(part) for part in values_text.split(":")]
            if len(bounds) not in (2, 3):
                raise ValueError(values_text)
            axis["low"], axis["high"] = bounds[0], bounds[1]
            if len(bounds) == 3:
                axis["step"] = bounds[2]
        else:
            axis["values"] = [int(part) for part in values_text.split(",")]
    except ValueError:
        raise SystemExit(f"bad --axis {text!r}: values must be integers "
                         f"(V1,V2,... or LOW:HIGH[:STEP])")
    return axis


def _command_campaign(arguments: argparse.Namespace) -> int:
    import json

    from repro.api import CAMPAIGNS, STRATEGIES
    from repro.campaigns import CampaignSpec, format_report, run_campaign

    if arguments.campaign_command == "list":
        print("campaign presets (repro campaign run --preset NAME):")
        for name in CAMPAIGNS.names():
            entry = CAMPAIGNS.entry(name)
            aliases = (f" (aliases: {', '.join(entry.aliases)})"
                       if entry.aliases else "")
            print(f"  {name:<26} {entry.summary}{aliases}")
        print("sampling strategies (--strategy NAME):")
        for name in STRATEGIES.names():
            print(f"  {name:<26} {STRATEGIES.entry(name).summary}")
        return 0

    if arguments.campaign_command == "report":
        with open(arguments.path) as stream:
            report = json.load(stream)
        if arguments.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_report(report))
        return 0

    # run: preset / spec file / inline flags, merged in that order.
    payload: dict = {}
    if arguments.spec:
        with open(arguments.spec) as stream:
            payload.update(json.load(stream))
    overrides = {key: value for key, value in (
        ("target", arguments.uarch),
        ("simulator", arguments.simulator),
        ("dataset_path", arguments.dataset),
        ("table_path", arguments.table),
        ("strategy", arguments.strategy),
        ("num_variants", arguments.num_variants),
        ("num_blocks", arguments.blocks),
        ("max_blocks", arguments.max_blocks),
        ("seed", arguments.seed),
        ("chunk_size", arguments.chunk_size),
        ("checkpoint_dir", arguments.checkpoint_dir),
        ("report_path", arguments.output),
        ("engine_workers", arguments.workers),
        ("engine_megabatch", arguments.megabatch),
    ) if value is not None}
    if arguments.axis:
        overrides["axes"] = [_parse_axis(axis) for axis in arguments.axis]
    if arguments.resume:
        overrides["resume"] = True
    if arguments.preset:
        spec = CAMPAIGNS.get(arguments.preset)(**{**payload, **overrides})
    else:
        payload.update(overrides)
        spec = CampaignSpec.from_dict(payload)
    result = run_campaign(spec, log=print)
    print(format_report(result.report))
    if result.resumed_chunks:
        print(f"  resumed {result.resumed_chunks} chunks from "
              f"{spec.checkpoint_dir}")
    if result.report_path:
        print(f"  wrote report to {result.report_path}")
    return 0


def _command_matrix(arguments: argparse.Namespace) -> int:
    import json

    from repro.api import EXECUTORS
    from repro.distributed import (MatrixCampaignSpec, format_matrix_report,
                                   run_matrix)

    if arguments.matrix_command == "list":
        print("cell executors (repro matrix run --executor NAME):")
        for name in EXECUTORS.names():
            entry = EXECUTORS.entry(name)
            aliases = (f" (aliases: {', '.join(entry.aliases)})"
                       if entry.aliases else "")
            print(f"  {name:<10} {entry.summary}{aliases}")
        print("default cell grid (targets x simulators):")
        for target in TARGETS.names():
            for simulator in SIMULATORS.names():
                print(f"  {target}__{simulator}")
        return 0

    if arguments.matrix_command == "report":
        with open(arguments.path) as stream:
            report = json.load(stream)
        if arguments.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_matrix_report(report))
        return 0

    # run: spec file merged with inline flags; campaign-body flags nest
    # under the shared "campaign" payload, matrix flags sit at the top.
    payload: dict = {}
    if arguments.spec:
        with open(arguments.spec) as stream:
            payload.update(json.load(stream))
    campaign = dict(payload.get("campaign", {}))
    for key, value in (("strategy", arguments.strategy),
                       ("num_variants", arguments.num_variants),
                       ("num_blocks", arguments.blocks),
                       ("max_blocks", arguments.max_blocks),
                       ("seed", arguments.seed),
                       ("chunk_size", arguments.chunk_size),
                       ("engine_workers", arguments.engine_workers)):
        if value is not None:
            campaign[key] = value
    if arguments.axis:
        campaign["axes"] = [_parse_axis(axis) for axis in arguments.axis]
    payload["campaign"] = campaign
    for key, value in (("targets", arguments.targets),
                       ("simulators", arguments.simulators),
                       ("executor", arguments.executor),
                       ("workers", arguments.workers),
                       ("worker_urls", arguments.worker_url),
                       ("max_retries", arguments.max_retries),
                       ("retry_backoff_seconds", arguments.retry_backoff),
                       ("cell_timeout_seconds", arguments.cell_timeout),
                       ("corpus_dir", arguments.corpus_dir),
                       ("checkpoint_dir", arguments.checkpoint_dir),
                       ("report_path", arguments.output),
                       ("cell_report_dir", arguments.cell_report_dir)):
        if value is not None:
            payload[key] = value
    if arguments.resume:
        payload["resume"] = True
    result = run_matrix(MatrixCampaignSpec.from_dict(payload), log=print)
    print(format_matrix_report(result.report))
    if result.resumed_cells:
        print(f"  resumed {len(result.resumed_cells)} completed cells from "
              f"{payload.get('checkpoint_dir')}")
    if result.report_path:
        print(f"  wrote matrix report to {result.report_path}")
    return 1 if result.failed_cells else 0


def _command_worker(arguments: argparse.Namespace) -> int:
    from repro.distributed import CampaignWorker

    worker = CampaignWorker(host=arguments.host, port=arguments.port,
                            log=lambda message: print(f"[worker] {message}"),
                            drain_seconds=arguments.drain_seconds)
    worker.serve()
    return 0


def _command_tune_baseline(arguments: argparse.Namespace) -> int:
    from repro.eval.metrics import error_and_tau

    # The search baselines are inherently sequential (each proposal depends
    # on the previous evaluation), so no --workers flag here; they still
    # benefit from the session engine's result cache and compile sharing.
    session = Session.from_spec(TuneSpec(simulator=arguments.simulator,
                                         dataset_path=arguments.dataset,
                                         narrow_sampling=True,
                                         seed=arguments.seed))
    plugin = BASELINES.get(arguments.method)
    if plugin.kind != "search":
        raise SystemExit(f"baseline {arguments.method!r} is a predictor, not a "
                         f"parameter-table search; choose one of "
                         f"{', '.join(search_baseline_names(BASELINES))}")
    train_blocks, train_timings = session.split("train")
    test_blocks, test_timings = session.split("test")
    arrays = plugin.run(session.adapter, train_blocks, train_timings,
                        budget=arguments.budget, seed=arguments.seed)

    adapter = session.adapter
    error, tau = error_and_tau(adapter.predict_timings(arrays, test_blocks),
                               test_timings)
    default_error, _ = error_and_tau(
        adapter.predict_timings(adapter.default_arrays(), test_blocks), test_timings)
    print(f"{arguments.method} on {session.dataset().uarch_name}: "
          f"test error {error * 100:.1f}% (tau {tau:.3f}), "
          f"default parameters {default_error * 100:.1f}%")
    if arguments.output:
        session.table_from_arrays(arrays).save_json(arguments.output)
        print(f"Saved tuned table to {arguments.output}")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from repro.api import ServeSpec
    from repro.serving import InferenceServer

    spec = ServeSpec(target=arguments.uarch,
                     simulator=arguments.simulator,
                     bundle_path=arguments.bundle,
                     table_path=arguments.table,
                     host=arguments.host,
                     port=arguments.port,
                     max_batch_size=arguments.max_batch,
                     max_batch_wait_ms=arguments.max_wait_ms,
                     cache_size=arguments.cache_size,
                     engine_workers=arguments.workers,
                     engine_megabatch=arguments.megabatch)
    server = InferenceServer.from_spec(
        spec, log=lambda message: print(f"[serve] {message}"))
    server.serve()
    return 0


def _command_bundle(arguments: argparse.Namespace) -> int:
    import json

    from repro.api import BundleSpec, Session, inspect_bundle

    if arguments.bundle_command == "export":
        session = Session.from_spec(BundleSpec(target=arguments.uarch,
                                               simulator=arguments.simulator,
                                               table_path=arguments.table))
        manifest = session.export_bundle(arguments.output)
        surrogate_note = (" + surrogate" if manifest.surrogate is not None
                          else "")
        print(f"Wrote {manifest.target}/{manifest.simulator} bundle"
              f"{surrogate_note} to {arguments.output}")
        print(f"  table digest {manifest.table_digest}")
        return 0
    # inspect: verify digests and print the plain-data summary.
    print(json.dumps(inspect_bundle(arguments.path), indent=2))
    return 0


def _command_corpus(arguments: argparse.Namespace) -> int:
    import json

    from repro.api import CorpusSpec, Session

    if arguments.corpus_command == "build":
        session = Session.from_spec(CorpusSpec(
            target=arguments.uarch,
            directory=arguments.directory,
            num_blocks=arguments.blocks,
            shard_size=arguments.shard_size,
            seed=arguments.seed,
            featurize=arguments.featurize,
            resume=arguments.resume))
        corpus = session.build_corpus(
            progress=lambda done, total: print(
                f"[corpus] generated {done}/{total} blocks"))
        stats = corpus.describe()
        print(f"Built {stats['num_blocks']} blocks "
              f"({stats['num_shards']} shards of <= {stats['shard_size']}) "
              f"for {stats['uarch']} at {arguments.directory}")
        if arguments.featurize:
            print(f"  featurization store: "
                  f"{len(session.featurization_store())} blocks mmap-ready")
        return 0
    # stat: open, optionally verify every shard digest, print the summary.
    from repro.corpus import ShardedCorpus

    corpus = ShardedCorpus(arguments.directory)
    if arguments.verify:
        corpus.verify()
        print(f"verified {corpus.num_shards} shard digests "
              f"and {len(corpus)} block digests")
    print(json.dumps(corpus.describe(), indent=2, sort_keys=True))
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    # Forward to the benchmark subsystem's own CLI so `repro bench ...` and
    # `python -m repro.bench ...` stay identical.
    from repro.bench.__main__ import main as bench_main

    return bench_main(arguments.bench_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    dataset_parser = subparsers.add_parser("dataset", help="generate and measure a dataset")
    dataset_parser.add_argument("--uarch", default="haswell", choices=_target_choices())
    dataset_parser.add_argument("--blocks", type=int, default=500)
    dataset_parser.add_argument("--seed", type=int, default=0)
    dataset_parser.add_argument("--output", required=True)
    dataset_parser.set_defaults(handler=_command_dataset)

    learn_parser = subparsers.add_parser("learn", help="run DiffTune and save the learned table")
    learn_parser.add_argument("--dataset", help="dataset JSON produced by the dataset command")
    learn_parser.add_argument("--uarch", default="haswell", choices=_target_choices(),
                              help="target (used when no dataset file is given)")
    _add_simulator_argument(learn_parser)
    learn_parser.add_argument("--blocks", type=int, default=400)
    learn_parser.add_argument("--seed", type=int, default=0)
    learn_parser.add_argument("--output", required=True)
    learn_parser.add_argument("--paper-config", action="store_true",
                              help="use the paper-faithful (slow) configuration")
    learn_parser.add_argument("--paper-sampling", action="store_true",
                              help="use the paper's wide sampling ranges")
    learn_parser.add_argument("--learn-fields", nargs="*", default=None,
                              help="subset of fields to learn (e.g. WriteLatency)")
    learn_parser.add_argument("--workers", type=int, default=0,
                              help="engine worker processes for parallel simulated-dataset "
                                   "collection")
    learn_parser.add_argument("--batch-training", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="batched surrogate-training fast path (default on; "
                                   "--no-batch-training restores the per-example loop)")
    learn_parser.add_argument("--batch-table-optimization",
                              action=argparse.BooleanOptionalAction, default=True,
                              help="batched phase-two table optimization (default on; "
                                   "--no-batch-table-optimization restores the "
                                   "per-block loop)")
    learn_parser.add_argument("--megabatch", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="vectorized megabatch simulation kernels (default "
                                   "on; --no-megabatch restores the bit-identical "
                                   "per-block scalar path)")
    learn_parser.set_defaults(handler=_command_learn)

    tune_parser = subparsers.add_parser(
        "tune", help="pipeline-backed multi-target tuning with checkpoints and --resume")
    tune_parser.add_argument("--targets", nargs="+", default=["haswell"],
                             choices=_target_choices(),
                             help="microarchitectures to tune (one pipeline each)")
    _add_simulator_argument(tune_parser)
    tune_parser.add_argument("--blocks", type=int, default=300,
                             help="measured blocks per target dataset")
    tune_parser.add_argument("--corpus", default=None,
                             help="tune against a pre-built sharded corpus "
                                  "directory ('repro corpus build') instead of "
                                  "generating an in-memory dataset; single "
                                  "target only")
    tune_parser.add_argument("--seed", type=int, default=0)
    tune_parser.add_argument("--config", default="fast", choices=PRESETS.names(),
                             help="configuration preset (test = tiny smoke scale)")
    tune_parser.add_argument("--checkpoint-dir", default="difftune_checkpoints",
                             help="root directory for per-target stage checkpoints")
    tune_parser.add_argument("--output-dir", default=".",
                             help="directory for the learned <target>.json tables")
    tune_parser.add_argument("--resume", action="store_true",
                             help="restore completed stages from the checkpoint "
                                  "directory and continue at the first incomplete one")
    tune_parser.add_argument("--stop-after", default=None,
                             help="stop (checkpointed) after this stage, e.g. "
                                  "train_surrogate or refinement_round_01")
    tune_parser.add_argument("--workers", type=int, default=0,
                             help=">= 2 fans targets out across a process pool; "
                                  "otherwise targets run sequentially and the "
                                  "engine gets the workers")
    tune_parser.add_argument("--learn-fields", nargs="*", default=None,
                             help="subset of fields to learn (e.g. WriteLatency)")
    tune_parser.add_argument("--batch-training", action=argparse.BooleanOptionalAction,
                             default=True,
                             help="batched surrogate-training fast path")
    tune_parser.add_argument("--batch-table-optimization",
                             action=argparse.BooleanOptionalAction, default=True,
                             help="batched phase-two table optimization")
    tune_parser.set_defaults(handler=_command_tune)

    evaluate_parser = subparsers.add_parser("evaluate", help="evaluate a parameter table")
    evaluate_parser.add_argument("--dataset", required=True)
    evaluate_parser.add_argument("--table", help="learned table JSON (defaults to expert table)")
    evaluate_parser.add_argument("--megabatch", action=argparse.BooleanOptionalAction,
                                 default=True,
                                 help="vectorized megabatch simulation kernels (default "
                                      "on; --no-megabatch restores the bit-identical "
                                      "per-block scalar path)")
    _add_simulator_argument(evaluate_parser)
    evaluate_parser.set_defaults(handler=_command_evaluate)

    compare_parser = subparsers.add_parser("compare", help="run the Table IV comparison")
    compare_parser.add_argument("--uarch", default="haswell", choices=_target_choices())
    compare_parser.add_argument("--blocks", type=int, default=300)
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument("--skip-opentuner", action="store_true")
    compare_parser.add_argument("--skip-ithemal", action="store_true")
    compare_parser.set_defaults(handler=_command_compare)

    timeline_parser = subparsers.add_parser(
        "timeline", help="print the timeline / bottleneck report for a basic block")
    timeline_parser.add_argument("--uarch", default="haswell", choices=_target_choices())
    _add_simulator_argument(timeline_parser)
    timeline_parser.add_argument("--table", help="learned table JSON (defaults to expert table)")
    timeline_parser.add_argument("--block", required=True,
                                 help="assembly text; separate instructions with ';'")
    timeline_parser.set_defaults(handler=_command_timeline)

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep a global parameter and plot the error curve (Figure 5)")
    sweep_parser.add_argument("--dataset", required=True)
    sweep_parser.add_argument("--table", help="learned table JSON (defaults to expert table)")
    _add_simulator_argument(sweep_parser)
    sweep_parser.add_argument("--field", default="DispatchWidth",
                              choices=_sweep_field_choices())
    sweep_parser.add_argument("--low", type=int, default=1)
    sweep_parser.add_argument("--high", type=int, default=10)
    sweep_parser.add_argument("--step", type=int, default=1)
    sweep_parser.add_argument("--workers", type=int, default=0,
                              help="engine worker processes (megabatches are chunked "
                                   "across them)")
    sweep_parser.add_argument("--megabatch", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="vectorized megabatch simulation kernels (default "
                                   "on; --no-megabatch restores the bit-identical "
                                   "per-block scalar path)")
    sweep_parser.set_defaults(handler=_command_sweep)

    campaign_parser = subparsers.add_parser(
        "campaign", help="declarative sweep campaigns: run / list / report "
                         "(repro.campaigns)")
    campaign_subparsers = campaign_parser.add_subparsers(dest="campaign_command",
                                                         required=True)
    campaign_run_parser = campaign_subparsers.add_parser(
        "run", help="run a campaign from a preset, a JSON spec file, or "
                    "inline --axis flags")
    campaign_run_parser.add_argument("--preset", default=None,
                                     help="named campaign preset (see "
                                          "'repro campaign list'); other flags "
                                          "override its spec fields")
    campaign_run_parser.add_argument("--spec", default=None,
                                     help="CampaignSpec JSON file (as written by "
                                          "CampaignSpec.to_dict)")
    campaign_run_parser.add_argument("--axis", action="append", default=None,
                                     metavar="FIELD[@OPCODE][#PORT]=VALUES",
                                     help="sweep axis, repeatable; VALUES is "
                                          "V1,V2,... or LOW:HIGH[:STEP], e.g. "
                                          "WriteLatency@ADD32rr=0:5")
    campaign_run_parser.add_argument("--strategy", default=None,
                                     help="sampling strategy (grid, random, "
                                          "adaptive)")
    campaign_run_parser.add_argument("--num-variants", type=int, default=None,
                                     help="variant budget (required by the "
                                          "random/adaptive strategies)")
    campaign_run_parser.add_argument("--dataset", default=None,
                                     help="dataset JSON (defaults to a "
                                          "generated corpus for --uarch)")
    campaign_run_parser.add_argument("--uarch", default=None,
                                     choices=_target_choices())
    campaign_run_parser.add_argument("--simulator", default=None,
                                     choices=_simulator_choices())
    campaign_run_parser.add_argument("--table", default=None,
                                     help="base parameter table JSON (defaults "
                                          "to the expert table)")
    campaign_run_parser.add_argument("--blocks", type=int, default=None,
                                     help="generated-corpus size when no "
                                          "--dataset is given")
    campaign_run_parser.add_argument("--max-blocks", type=int, default=None,
                                     help="evaluate on only the first N split "
                                          "blocks")
    campaign_run_parser.add_argument("--seed", type=int, default=None)
    campaign_run_parser.add_argument("--chunk-size", type=int, default=None,
                                     help="variants per engine call / "
                                          "checkpoint unit")
    campaign_run_parser.add_argument("--checkpoint-dir", default=None,
                                     help="persist per-chunk checkpoints here "
                                          "(enables --resume)")
    campaign_run_parser.add_argument("--resume", action="store_true",
                                     help="replay completed chunks from "
                                          "--checkpoint-dir (byte-identical "
                                          "report)")
    campaign_run_parser.add_argument("--output", default=None,
                                     help="stream the campaign_report.json "
                                          "here (rewritten after every chunk)")
    campaign_run_parser.add_argument("--workers", type=int, default=None,
                                     help="engine worker processes")
    campaign_run_parser.add_argument("--megabatch",
                                     action=argparse.BooleanOptionalAction,
                                     default=None,
                                     help="vectorized megabatch simulation "
                                          "kernels")
    campaign_run_parser.set_defaults(handler=_command_campaign)
    campaign_list_parser = campaign_subparsers.add_parser(
        "list", help="list registered campaign presets and sampling strategies")
    campaign_list_parser.set_defaults(handler=_command_campaign)
    campaign_report_parser = campaign_subparsers.add_parser(
        "report", help="summarize a campaign_report.json")
    campaign_report_parser.add_argument("path", help="campaign report JSON file")
    campaign_report_parser.add_argument("--json", action="store_true",
                                        help="print the raw report JSON "
                                             "instead of the summary tables")
    campaign_report_parser.set_defaults(handler=_command_campaign)

    matrix_parser = subparsers.add_parser(
        "matrix", help="matrix campaigns: fan one campaign across "
                       "target x simulator cells (repro.distributed)")
    matrix_subparsers = matrix_parser.add_subparsers(dest="matrix_command",
                                                     required=True)
    matrix_run_parser = matrix_subparsers.add_parser(
        "run", help="run a matrix campaign from a JSON spec file and/or "
                    "inline flags")
    matrix_run_parser.add_argument("--spec", default=None,
                                   help="MatrixCampaignSpec JSON file (as "
                                        "written by MatrixCampaignSpec.to_dict)")
    matrix_run_parser.add_argument("--axis", action="append", default=None,
                                   metavar="FIELD[@OPCODE][#PORT]=VALUES",
                                   help="campaign sweep axis, repeatable "
                                        "(same grammar as campaign run)")
    matrix_run_parser.add_argument("--targets", nargs="+", default=None,
                                   choices=_target_choices(),
                                   help="cell targets (default: every "
                                        "registered target)")
    matrix_run_parser.add_argument("--simulators", nargs="+", default=None,
                                   choices=_simulator_choices(),
                                   help="cell simulators (default: every "
                                        "registered simulator)")
    matrix_run_parser.add_argument("--executor", default=None,
                                   help="cell executor from the EXECUTORS "
                                        "registry (inline, pool, remote)")
    matrix_run_parser.add_argument("--workers", type=int, default=None,
                                   help="concurrent cells for --executor pool")
    matrix_run_parser.add_argument("--worker-url", action="append", default=None,
                                   metavar="URL",
                                   help="worker base URL for --executor "
                                        "remote, repeatable (start workers "
                                        "with 'repro worker')")
    matrix_run_parser.add_argument("--max-retries", type=int, default=None,
                                   help="retries per failed cell before it "
                                        "lands in the failed-cell ledger")
    matrix_run_parser.add_argument("--retry-backoff", type=float, default=None,
                                   help="first-retry delay in seconds "
                                        "(doubles per retry)")
    matrix_run_parser.add_argument("--cell-timeout", type=float, default=None,
                                   help="cancel a cell attempt running "
                                        "longer than this many seconds")
    matrix_run_parser.add_argument("--strategy", default=None,
                                   help="campaign sampling strategy")
    matrix_run_parser.add_argument("--num-variants", type=int, default=None,
                                   help="campaign variant budget")
    matrix_run_parser.add_argument("--blocks", type=int, default=None,
                                   help="shared-corpus blocks per target")
    matrix_run_parser.add_argument("--max-blocks", type=int, default=None,
                                   help="evaluate on only the first N split "
                                        "blocks")
    matrix_run_parser.add_argument("--seed", type=int, default=None)
    matrix_run_parser.add_argument("--chunk-size", type=int, default=None,
                                   help="variants per engine call / "
                                        "checkpoint unit within a cell")
    matrix_run_parser.add_argument("--engine-workers", type=int, default=None,
                                   help="engine worker processes inside each "
                                        "cell (compose carefully with "
                                        "--executor pool)")
    matrix_run_parser.add_argument("--corpus-dir", default=None,
                                   help="directory for the shared per-target "
                                        "corpora (default: under "
                                        "--checkpoint-dir, or a temp dir)")
    matrix_run_parser.add_argument("--checkpoint-dir", default=None,
                                   help="persist per-cell outcomes and "
                                        "per-chunk checkpoints here "
                                        "(enables --resume)")
    matrix_run_parser.add_argument("--resume", action="store_true",
                                   help="skip cells already completed in "
                                        "--checkpoint-dir (byte-identical "
                                        "aggregate report)")
    matrix_run_parser.add_argument("--output", default=None,
                                   help="write the aggregate "
                                        "matrix_report.json here")
    matrix_run_parser.add_argument("--cell-report-dir", default=None,
                                   help="directory for per-cell "
                                        "campaign_report.json files")
    matrix_run_parser.set_defaults(handler=_command_matrix)
    matrix_list_parser = matrix_subparsers.add_parser(
        "list", help="list registered cell executors and the default cell grid")
    matrix_list_parser.set_defaults(handler=_command_matrix)
    matrix_report_parser = matrix_subparsers.add_parser(
        "report", help="summarize a matrix_report.json")
    matrix_report_parser.add_argument("path", help="matrix report JSON file")
    matrix_report_parser.add_argument("--json", action="store_true",
                                      help="print the raw report JSON "
                                           "instead of the summary tables")
    matrix_report_parser.set_defaults(handler=_command_matrix)

    worker_parser = subparsers.add_parser(
        "worker", help="run a matrix-campaign worker serving cells over HTTP "
                       "(for 'repro matrix run --executor remote')")
    worker_parser.add_argument("--host", default="127.0.0.1")
    worker_parser.add_argument("--port", type=int, default=8100,
                               help="TCP port (0 picks an ephemeral port)")
    worker_parser.add_argument("--drain-seconds", type=float, default=0.5,
                               help="how long shutdown waits for an in-flight "
                                    "cell before dropping the connection")
    worker_parser.set_defaults(handler=_command_worker)

    baseline_parser = subparsers.add_parser(
        "tune-baseline", help="run a black-box baseline tuner for comparison with DiffTune")
    baseline_parser.add_argument("--dataset", required=True)
    baseline_parser.add_argument("--method", default="opentuner",
                                 choices=_search_baseline_choices())
    _add_simulator_argument(baseline_parser)
    baseline_parser.add_argument("--budget", type=int, default=5000,
                                 help="total block evaluations allowed")
    baseline_parser.add_argument("--seed", type=int, default=0)
    baseline_parser.add_argument("--output", help="where to save the tuned table JSON")
    baseline_parser.set_defaults(handler=_command_tune_baseline)

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP/JSON inference server (repro.serving)")
    serve_parser.add_argument("--bundle", default=None,
                              help="deployment bundle to serve (from "
                                   "'repro bundle export'); mutually "
                                   "exclusive with --table")
    serve_parser.add_argument("--uarch", default="haswell", choices=_target_choices(),
                              help="target (ignored when --bundle is given)")
    _add_simulator_argument(serve_parser)
    serve_parser.add_argument("--table", help="learned table JSON to serve "
                                              "(defaults to expert table)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8000,
                              help="TCP port (0 picks an ephemeral port)")
    serve_parser.add_argument("--max-batch", type=int, default=64,
                              help="most blocks coalesced into one engine batch")
    serve_parser.add_argument("--max-wait-ms", type=float, default=2.0,
                              help="how long a non-full batch waits for "
                                   "company before executing")
    serve_parser.add_argument("--cache-size", type=int, default=4096,
                              help="entries per result-cache shard")
    serve_parser.add_argument("--workers", type=int, default=0,
                              help="engine worker processes")
    serve_parser.add_argument("--megabatch", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="vectorized megabatch simulation kernels")
    serve_parser.set_defaults(handler=_command_serve)

    bundle_parser = subparsers.add_parser(
        "bundle", help="export / inspect single-file deployment bundles")
    bundle_subparsers = bundle_parser.add_subparsers(dest="bundle_command",
                                                     required=True)
    export_parser = bundle_subparsers.add_parser(
        "export", help="freeze a parameter table (+ optional surrogate) into "
                       "a deployment bundle")
    export_parser.add_argument("--uarch", default="haswell", choices=_target_choices())
    _add_simulator_argument(export_parser)
    export_parser.add_argument("--table",
                               help="learned table JSON (defaults to expert table)")
    export_parser.add_argument("--output", required=True,
                               help="bundle path to write (single zip file)")
    export_parser.set_defaults(handler=_command_bundle)
    inspect_parser = bundle_subparsers.add_parser(
        "inspect", help="verify a bundle's digests and print its manifest summary")
    inspect_parser.add_argument("path", help="bundle file to inspect")
    inspect_parser.set_defaults(handler=_command_bundle)

    corpus_parser = subparsers.add_parser(
        "corpus", help="build / inspect sharded on-disk block corpora "
                       "(repro.corpus)")
    corpus_subparsers = corpus_parser.add_subparsers(dest="corpus_command",
                                                     required=True)
    corpus_build_parser = corpus_subparsers.add_parser(
        "build", help="generate, measure, and shard a block corpus to disk "
                      "(resumable at every shard boundary)")
    corpus_build_parser.add_argument("--uarch", default="haswell",
                                     choices=_target_choices())
    corpus_build_parser.add_argument("--directory", required=True,
                                     help="corpus directory to create")
    corpus_build_parser.add_argument("--blocks", type=int, default=2000,
                                     help="blocks to generate and measure")
    corpus_build_parser.add_argument("--shard-size", type=int, default=1024,
                                     help="blocks per on-disk shard")
    corpus_build_parser.add_argument("--seed", type=int, default=0)
    corpus_build_parser.add_argument("--featurize", action="store_true",
                                     help="also materialize the memory-mapped "
                                          "featurization store")
    corpus_build_parser.add_argument("--resume", action="store_true",
                                     help="continue an interrupted build from "
                                          "its last complete shard "
                                          "(bit-identical to uninterrupted)")
    corpus_build_parser.set_defaults(handler=_command_corpus)
    corpus_stat_parser = corpus_subparsers.add_parser(
        "stat", help="print a corpus's manifest summary (optionally verifying "
                     "every shard and block digest)")
    corpus_stat_parser.add_argument("directory", help="corpus directory")
    corpus_stat_parser.add_argument("--verify", action="store_true",
                                    help="re-hash every shard payload and "
                                         "block entry against the manifest")
    corpus_stat_parser.set_defaults(handler=_command_corpus)

    bench_parser = subparsers.add_parser(
        "bench", add_help=False,
        help="benchmark scenarios: list / run / compare (python -m repro.bench)")
    bench_parser.add_argument("bench_args", nargs=argparse.REMAINDER,
                              help="arguments forwarded to repro.bench")
    bench_parser.set_defaults(handler=_command_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except SpecValidationError as error:
        # Spec validation names the bad field and suggests fixes; surface it
        # as a clean CLI error instead of a traceback.
        raise SystemExit(f"error: {error}")
    except BundleError as error:
        # Bundle verification failures likewise name the offending field.
        raise SystemExit(f"error: {error}")


if __name__ == "__main__":
    sys.exit(main())
