"""The orchestrated, checkpointable tuning pipeline.

:class:`TuningPipeline` executes the stage sequence of
:func:`repro.pipeline.stages.build_stages` over one adapter/dataset pair.
With a checkpoint directory configured, every completed stage persists its
artifacts and the pipeline's random-stream position; ``resume=True`` then
restores completed stages from disk and re-enters the run at the first
incomplete stage, reproducing an uninterrupted run bit for bit.

:class:`~repro.core.difftune.DiffTune` is a thin wrapper over this class;
``repro tune`` drives it per target (optionally fanned out across processes
by :mod:`repro.pipeline.multi_target`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.surrogate import BlockFeaturizer
from repro.pipeline.checkpoint import CheckpointStore
from repro.pipeline.stages import PipelineState, build_stages


def run_fingerprint(adapter: Any, config: Any, blocks: Sequence[Any],
                    true_timings: np.ndarray) -> str:
    """Digest identifying one (adapter, config, dataset) tuning problem.

    Checkpoints from one fingerprint must never be resumed into another run:
    stage artifacts encode sampled tables, surrogate weights, and rng stream
    positions that are only meaningful for the exact same problem.
    """
    digest = hashlib.sha256()
    digest.update(type(adapter).__name__.encode())
    uarch = getattr(adapter, "uarch", None)
    digest.update(getattr(uarch, "name", "").encode())
    learn_fields = getattr(adapter, "learn_fields", None)
    digest.update(repr(sorted(learn_fields) if learn_fields else None).encode())
    digest.update(repr(getattr(adapter, "narrow_sampling", None)).encode())
    digest.update(repr(config).encode())
    digest.update(np.ascontiguousarray(
        np.asarray(true_timings, dtype=np.float64)).tobytes())
    if hasattr(blocks, "content_fingerprint"):
        # Corpus-backed sources carry a digest over their shard manifest;
        # hashing it avoids parsing every block just to fingerprint the run.
        digest.update(blocks.content_fingerprint().encode())
    else:
        for block in blocks:
            digest.update(repr(block.structural_key()).encode())
    return digest.hexdigest()[:16]


class TuningPipeline:
    """Run the DiffTune stage sequence, optionally checkpointed and resumable."""

    def __init__(self, adapter: Any, config: Any,
                 log: Optional[Callable[[str], None]] = None,
                 featurizer: Optional[BlockFeaturizer] = None,
                 checkpoint_dir: Optional[str] = None,
                 featurization_store: Any = None) -> None:
        self.adapter = adapter
        self.config = config
        self.log = log or (lambda message: None)
        self.featurizer = featurizer or BlockFeaturizer(adapter.opcode_table)
        self.checkpoint_dir = checkpoint_dir
        self.featurization_store = featurization_store

    def stage_names(self) -> list:
        return [stage.name for stage in build_stages(self.config)]

    def run(self, blocks: Sequence[Any], true_timings: np.ndarray,
            simulated_examples: Optional[Sequence[Any]] = None,
            resume: bool = False, stop_after: Optional[str] = None) -> PipelineState:
        """Execute (or resume) the pipeline; returns the final state.

        Args:
            blocks: Ground-truth training blocks.
            true_timings: Measured timings aligned with ``blocks``.
            simulated_examples: Optional pre-collected simulated dataset; the
                collection stage becomes a no-op.
            resume: Restore completed stages from the checkpoint directory
                instead of re-running them.  Requires ``checkpoint_dir``.
            stop_after: Stop (checkpoint included) after the named stage —
                the hook the resume tests and staged CLI runs use.
        """
        true_timings = np.asarray(true_timings, dtype=np.float64)
        if len(blocks) != len(true_timings):
            raise ValueError("blocks and true_timings must be aligned")
        stages = build_stages(self.config)
        names = [stage.name for stage in stages]
        if stop_after is not None and stop_after not in names:
            raise ValueError(f"unknown stage {stop_after!r}; expected one of {names}")
        if stop_after is not None and self.checkpoint_dir is None:
            raise ValueError("stop_after without a checkpoint directory would "
                             "discard the completed stages' work")

        store: Optional[CheckpointStore] = None
        if self.checkpoint_dir is not None:
            store = CheckpointStore(self.checkpoint_dir)
            store.bind_fingerprint(
                run_fingerprint(self.adapter, self.config, blocks, true_timings),
                resume)
            if not resume:
                store.reset_stages()
        elif resume:
            raise ValueError("resume=True requires a checkpoint directory")

        # Corpus-backed block sources stay lazy (list() would parse the whole
        # corpus); plain iterables are materialized as before.
        kept_blocks = (blocks if hasattr(blocks, "content_fingerprint")
                       else list(blocks))
        if simulated_examples is not None and not hasattr(simulated_examples,
                                                          "block_arrays"):
            simulated_examples = list(simulated_examples)
        state = PipelineState(
            adapter=self.adapter, config=self.config, blocks=kept_blocks,
            true_timings=true_timings, rng=np.random.default_rng(self.config.seed),
            featurizer=self.featurizer, log=self.log,
            simulated_examples=simulated_examples,
            featurization_store=self.featurization_store,
            checkpoint_store=store, resume=resume)

        for stage in stages:
            if store is not None and resume and store.is_complete(stage.name):
                stage.load(state, store)
                store.restore_rng(stage.name, state.rng)
                state.resumed_stages.append(stage.name)
                self.log(f"resume: restored completed stage '{stage.name}' "
                         f"from {self.checkpoint_dir}")
            else:
                stage.run(state)
                if store is not None:
                    stage.save(state, store)
                    store.mark_complete(stage.name, state.rng)
            if stop_after == stage.name:
                self.log(f"stopping after stage '{stage.name}' as requested")
                break
        return state
