"""On-disk checkpoint store for resumable tuning pipelines.

Layout of one checkpoint directory (one per tuning target)::

    <dir>/
      manifest.json                      # completed stages, rng states, fingerprint
      <stage_name>/
        *.npz                            # array artifacts (autodiff.serialization)
        *.json                          # scalar metadata

The manifest records, per completed stage, the NumPy bit-generator state of
the pipeline's random generator *after* the stage ran.  Restoring that state
when a completed stage is skipped on ``--resume`` is what makes a resumed run
bit-identical to an uninterrupted one: every later draw (initial table
sample, refinement-round sampling, shuffles) continues the exact same random
stream.

The manifest also pins a *fingerprint* of the run configuration and dataset.
Resuming against a checkpoint directory written by a different configuration
would silently mix incompatible artifacts, so a mismatch raises instead.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

import numpy as np

from repro.autodiff.serialization import (load_arrays, load_parameter_arrays,
                                          save_arrays, save_parameter_arrays)

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


class CheckpointMismatchError(RuntimeError):
    """A checkpoint directory belongs to a different run configuration."""


class CheckpointStore:
    """Per-stage artifact persistence with a completion manifest."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._manifest: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def manifest(self) -> Dict[str, Any]:
        if self._manifest is None:
            if os.path.exists(self.manifest_path):
                with open(self.manifest_path) as handle:
                    self._manifest = json.load(handle)
            else:
                self._manifest = {"version": MANIFEST_VERSION,
                                  "fingerprint": None, "stages": {}}
        return self._manifest

    def _write_manifest(self) -> None:
        # Write-then-rename: a kill mid-write (the exact scenario --resume
        # exists for) must never leave a truncated manifest behind.
        os.makedirs(self.directory, exist_ok=True)
        temp_path = self.manifest_path + ".tmp"
        with open(temp_path, "w") as handle:
            json.dump(self.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, self.manifest_path)

    def bind_fingerprint(self, fingerprint: str, resume: bool) -> None:
        """Pin (or verify) the run fingerprint this directory belongs to.

        A fresh run over a directory with a *different* fingerprint fails
        too: silently overwriting another run's checkpoints is never what
        the caller wants — delete the directory or pick another one.
        """
        manifest = self.manifest()
        existing = manifest.get("fingerprint")
        if existing is None:
            manifest["fingerprint"] = fingerprint
            self._write_manifest()
            return
        if existing != fingerprint:
            action = "resume" if resume else "overwrite"
            raise CheckpointMismatchError(
                f"refusing to {action} checkpoint directory {self.directory!r}: it was "
                f"written by a different configuration/dataset (fingerprint {existing} "
                f"!= {fingerprint}); delete it or choose another --checkpoint-dir")

    # ------------------------------------------------------------------
    # Stage completion
    # ------------------------------------------------------------------
    def completed_stages(self) -> List[str]:
        return list(self.manifest()["stages"])

    def reset_stages(self) -> None:
        """Forget stage completions (fresh, non-resume run over this directory).

        Keeping stale completion entries around would let a later ``--resume``
        mix artifacts from two different (if identically configured) runs.
        Artifact files are overwritten as the new run progresses.
        """
        if self.manifest()["stages"]:
            self.manifest()["stages"] = {}
            self._write_manifest()

    def is_complete(self, stage_name: str) -> bool:
        return stage_name in self.manifest()["stages"]

    def mark_complete(self, stage_name: str, rng: np.random.Generator) -> None:
        """Record a stage as complete, snapshotting the rng stream position."""
        self.manifest()["stages"][stage_name] = {
            "rng_state": _jsonify_rng_state(rng.bit_generator.state),
        }
        self._write_manifest()

    def restore_rng(self, stage_name: str, rng: np.random.Generator) -> None:
        """Rewind ``rng`` to the stream position saved after ``stage_name``."""
        entry = self.manifest()["stages"].get(stage_name)
        if entry is None:
            raise KeyError(f"stage {stage_name!r} has no checkpoint entry")
        rng.bit_generator.state = _unjsonify_rng_state(entry["rng_state"])

    # ------------------------------------------------------------------
    # Artifact files
    # ------------------------------------------------------------------
    def stage_dir(self, stage_name: str) -> str:
        path = os.path.join(self.directory, stage_name)
        os.makedirs(path, exist_ok=True)
        return path

    def artifact_path(self, stage_name: str, filename: str) -> str:
        return os.path.join(self.stage_dir(stage_name), filename)

    def save_json(self, stage_name: str, filename: str, payload: Any) -> str:
        path = self.artifact_path(stage_name, filename)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def load_json(self, stage_name: str, filename: str) -> Any:
        with open(self.artifact_path(stage_name, filename)) as handle:
            return json.load(handle)

    def save_arrays(self, stage_name: str, filename: str,
                    arrays: Dict[str, np.ndarray]) -> str:
        path = self.artifact_path(stage_name, filename)
        save_arrays(arrays, path)
        return path

    def load_arrays(self, stage_name: str, filename: str) -> Dict[str, np.ndarray]:
        return load_arrays(self.artifact_path(stage_name, filename))

    def save_parameter_arrays(self, stage_name: str, filename: str, arrays) -> str:
        path = self.artifact_path(stage_name, filename)
        save_parameter_arrays(arrays, path)
        return path

    def load_parameter_arrays(self, stage_name: str, filename: str):
        return load_parameter_arrays(self.artifact_path(stage_name, filename))


def _jsonify_rng_state(state: Any) -> Any:
    """NumPy bit-generator states contain plain ints/strs/dicts; pass through
    with NumPy scalars coerced so json can serialize them."""
    if isinstance(state, dict):
        return {key: _jsonify_rng_state(value) for key, value in state.items()}
    if isinstance(state, (np.integer,)):
        return int(state)
    if isinstance(state, np.ndarray):
        return {"__ndarray__": state.tolist(), "dtype": str(state.dtype)}
    return state


def _unjsonify_rng_state(state: Any) -> Any:
    if isinstance(state, dict):
        if "__ndarray__" in state:
            return np.array(state["__ndarray__"], dtype=state["dtype"])
        return {key: _unjsonify_rng_state(value) for key, value in state.items()}
    return state
