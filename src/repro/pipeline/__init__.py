"""Orchestrated, checkpointable, multi-target DiffTune runs.

This package turns the end-to-end DiffTune run into an explicit pipeline of
resumable stages:

1. :mod:`~repro.pipeline.stages` — the :class:`~repro.pipeline.stages.Stage`
   abstraction and the concrete stage sequence (simulated-dataset collection,
   surrogate training, table optimization, refinement rounds,
   extraction/eval), each with ``run`` / ``save`` / ``load``.
2. :mod:`~repro.pipeline.checkpoint` — the on-disk
   :class:`~repro.pipeline.checkpoint.CheckpointStore` (per-stage artifact
   archives plus a manifest recording completion and rng stream positions).
3. :mod:`~repro.pipeline.pipeline` — the
   :class:`~repro.pipeline.pipeline.TuningPipeline` driver: runs the stage
   sequence, checkpoints after every stage, and resumes bit-identically at
   the first incomplete stage.
4. :mod:`~repro.pipeline.multi_target` — fan-out of independent per-target
   pipelines (``repro tune --targets ...``) over a process pool.

:class:`~repro.core.difftune.DiffTune` runs on this layer; ``repro tune``
exposes it on the command line.
"""

from repro.pipeline.checkpoint import CheckpointMismatchError, CheckpointStore
from repro.pipeline.multi_target import (TargetOutcome, TargetSpec, tune_target,
                                         tune_targets)
from repro.pipeline.pipeline import TuningPipeline, run_fingerprint
from repro.pipeline.stages import (CollectDatasetStage, ExtractEvaluateStage,
                                   OptimizeTableStage, PipelineState,
                                   RefinementRoundStage, Stage, TrainSurrogateStage,
                                   build_stages, collect_examples)

__all__ = [
    "CheckpointMismatchError",
    "CheckpointStore",
    "TargetOutcome",
    "TargetSpec",
    "tune_target",
    "tune_targets",
    "TuningPipeline",
    "run_fingerprint",
    "Stage",
    "PipelineState",
    "CollectDatasetStage",
    "TrainSurrogateStage",
    "OptimizeTableStage",
    "RefinementRoundStage",
    "ExtractEvaluateStage",
    "build_stages",
    "collect_examples",
]
