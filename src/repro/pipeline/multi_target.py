"""Fan a tuning run out over several microarchitecture targets.

``repro tune --targets haswell ivybridge skylake zen2`` runs one full
(checkpointable, resumable) pipeline per target.  Targets are independent —
separate datasets, adapters, checkpoints — so they fan out across a process
pool exactly the way the simulation engine fans tables out
(:meth:`repro.engine.engine.SimulationEngine.run_pairs`): a module-level,
picklable task function, a ``fork``-preferring multiprocessing context, and
deterministic per-target results regardless of scheduling.  ``workers <= 1``
runs the targets sequentially in-process with full logging.

Every target writes its checkpoints under ``<checkpoint_root>/<target>/``,
so a killed multi-target run resumes per target: finished targets replay
instantly from their final-stage artifacts, the interrupted one picks up at
its first incomplete stage.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class TargetSpec:
    """Everything one target task needs, in picklable plain-data form.

    ``target``, ``simulator``, and ``config_preset`` are registry keys
    (:data:`repro.api.registries.TARGETS` / ``SIMULATORS`` / ``PRESETS``),
    so entry-point-registered plugins work here unchanged.
    """

    target: str
    simulator: str = "mca"
    num_blocks: int = 300
    seed: int = 0
    #: Directory of a pre-built :class:`~repro.corpus.sharded.ShardedCorpus`
    #: to tune against instead of building an in-memory dataset.  The corpus
    #: is opened read-only in every pool worker — its shards and the mmap
    #: featurization store next to it are shared OS pages, not copies.
    corpus_path: Optional[str] = None
    #: Build/open the mmap featurization store beside the corpus and serve
    #: per-block arrays from it during surrogate training.
    corpus_featurize: bool = True
    config_preset: str = "fast"  # any key of the PRESETS registry
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    stop_after: Optional[str] = None
    output_path: Optional[str] = None
    learn_fields: Optional[List[str]] = None
    narrow_sampling: bool = True
    batch_training: bool = True
    batch_table_optimization: bool = True
    engine_workers: int = 0
    verbose: bool = False


@dataclass
class TargetOutcome:
    """Result of tuning one target (plain data, returned across processes)."""

    target: str
    completed: bool
    train_error: Optional[float] = None
    test_error: Optional[float] = None
    default_test_error: Optional[float] = None
    elapsed_seconds: float = 0.0
    resumed_stages: List[str] = field(default_factory=list)
    output_path: Optional[str] = None
    stopped_after: Optional[str] = None
    #: ``"ExceptionType: message"`` when the target's pipeline raised (the
    #: fan-out records the failure instead of sinking its siblings).
    error: Optional[str] = None
    #: Full traceback text of the failure, for post-mortem without re-running.
    traceback: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def _config_from_preset(spec: TargetSpec):
    from repro.api.registries import PRESETS
    from repro.api.registry import UnknownKeyError

    try:
        factory = PRESETS.get(spec.config_preset)
    except UnknownKeyError as error:
        # Keep the historical ValueError contract of this layer.
        raise ValueError(f"unknown config preset: {error}") from error
    config = factory(spec.seed)
    config.surrogate_training.batched = spec.batch_training
    config.table_optimization.batched = spec.batch_table_optimization
    return config


def tune_target(spec: TargetSpec) -> TargetOutcome:
    """Run one target's pipeline end to end (module-level: pool-picklable).

    Imports are deferred to runtime both to keep worker start-up lean and to
    keep this module importable from :mod:`repro.core.difftune`'s package
    initialization without a cycle.
    """
    from repro.api.registries import SIMULATORS, TARGETS
    from repro.bhive import build_dataset
    from repro.core.difftune import DiffTune
    from repro.eval.metrics import error_and_tau

    import numpy as np

    start_time = time.time()
    corpus = None
    if spec.corpus_path is not None:
        from repro.corpus import ShardedCorpus

        from repro.api.registries import same_target

        corpus = ShardedCorpus(spec.corpus_path)
        if not same_target(corpus.uarch_name, spec.target):
            raise ValueError(
                f"corpus at {spec.corpus_path!r} was generated for "
                f"{corpus.uarch_name!r}, not {spec.target!r}")
        train_blocks = corpus.split_view("train")
        test_blocks = corpus.split_view("test")
        train_timings = train_blocks.timings()
        test_timings = test_blocks.timings()
    else:
        dataset = build_dataset(spec.target, num_blocks=spec.num_blocks,
                                seed=spec.seed)
        train = dataset.train_examples
        test = dataset.test_examples
        train_blocks = [example.block for example in train]
        train_timings = np.array([example.timing for example in train])
        test_blocks = [example.block for example in test]
        test_timings = np.array([example.timing for example in test])

    kwargs = {"narrow_sampling": spec.narrow_sampling,
              "engine_workers": spec.engine_workers}
    if spec.learn_fields is not None:
        kwargs["learn_fields"] = spec.learn_fields
    adapter = SIMULATORS.get(spec.simulator).create_adapter(
        TARGETS.get(spec.target), **kwargs)
    log = (lambda message: print(f"[{spec.target}] {message}")) if spec.verbose \
        else (lambda message: None)
    featurization_store = None
    if corpus is not None and spec.corpus_featurize:
        import os

        from repro.core.surrogate import BlockFeaturizer
        from repro.corpus import ShardedFeaturizationStore

        featurization_store = ShardedFeaturizationStore(
            os.path.join(spec.corpus_path, "featurization"),
            BlockFeaturizer(adapter.opcode_table)).ensure(corpus)
    difftune = DiffTune(adapter, _config_from_preset(spec), log=log)
    result = difftune.learn(train_blocks, train_timings,
                            checkpoint_dir=spec.checkpoint_dir,
                            resume=spec.resume, stop_after=spec.stop_after,
                            featurization_store=featurization_store)
    elapsed = time.time() - start_time
    if result is None:
        return TargetOutcome(target=spec.target, completed=False,
                             elapsed_seconds=elapsed,
                             stopped_after=spec.stop_after)

    output_path = spec.output_path
    if output_path is not None:
        adapter.table_from_arrays(result.learned_arrays).save_json(output_path)
    test_error, _ = error_and_tau(
        adapter.predict_timings(result.learned_arrays, test_blocks), test_timings)
    default_test_error, _ = error_and_tau(
        adapter.predict_timings(adapter.default_arrays(), test_blocks), test_timings)
    return TargetOutcome(target=spec.target, completed=True,
                         train_error=result.train_error,
                         test_error=float(test_error),
                         default_test_error=float(default_test_error),
                         elapsed_seconds=elapsed,
                         resumed_stages=list(result.resumed_stages),
                         output_path=output_path)


def _tune_target_guarded(spec: TargetSpec) -> TargetOutcome:
    """``tune_target`` with failures captured as data (module-level: picklable).

    One crashing target must not abort the pool fan-out; the exception and
    its traceback come back in the outcome instead, so siblings finish and
    the caller decides what a partial result is worth.
    """
    import traceback as traceback_module

    start_time = time.time()
    try:
        return tune_target(spec)
    except Exception as error:  # noqa: BLE001 - converted to outcome data
        return TargetOutcome(
            target=spec.target, completed=False,
            elapsed_seconds=time.time() - start_time,
            error=f"{type(error).__name__}: {error}",
            traceback=traceback_module.format_exc())


def tune_targets(specs: Sequence[TargetSpec], workers: int = 0,
                 log: Optional[Callable[[str], None]] = None,
                 strict: bool = False) -> Dict[str, TargetOutcome]:
    """Tune every target, fanning out across processes when ``workers > 1``.

    Returns outcomes keyed by target name, in input order.  The parallel
    path produces the same outcomes as the sequential one — each target's
    pipeline is fully determined by its spec.

    A target whose pipeline raises is recorded as a failed
    :class:`TargetOutcome` (``error`` + ``traceback`` set) while its
    siblings run to completion; pass ``strict=True`` to re-raise the first
    failure instead (the historical abort-the-fan-out behavior).
    """
    log = log or (lambda message: None)
    names = [spec.target for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate targets: {names}")
    task = tune_target if strict else _tune_target_guarded
    if workers > 1 and len(specs) > 1:
        start_methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else start_methods[0])
        processes = min(workers, len(specs))
        log(f"tuning {len(specs)} targets across {processes} worker processes")
        with context.Pool(processes=processes) as pool:
            outcomes = pool.map(task, list(specs))
    else:
        outcomes = []
        for spec in specs:
            log(f"tuning target {spec.target}")
            outcomes.append(task(spec))
    for outcome in outcomes:
        if outcome.error is not None:
            log(f"target {outcome.target} failed: {outcome.error}")
    return {outcome.target: outcome for outcome in outcomes}
