"""The stages of a DiffTune tuning run, with per-stage checkpoint artifacts.

Each :class:`Stage` implements the same small contract:

* ``run(state)``    — execute the stage, mutating the shared
  :class:`PipelineState`;
* ``save(state, store)``  — persist the stage's artifacts (NumPy archives via
  :mod:`repro.autodiff.serialization`, JSON for scalars) into a
  :class:`~repro.pipeline.checkpoint.CheckpointStore`;
* ``load(state, store)``  — restore those artifacts into the state instead of
  re-running, when a resumed pipeline finds the stage already complete.

The stage sequence mirrors Figure 1 of the paper plus the local-refinement
extension: simulated-dataset collection, surrogate training, parameter-table
optimization, zero or more refinement rounds, and final extraction/eval.

Imports deliberately target ``repro.core.<module>`` submodules (never the
``repro.core`` package root): :mod:`repro.core.difftune` imports this package
at module level, and the submodule form keeps that cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.autodiff.serialization import load_state_dict, save_state_dict
from repro.core.extraction import extract_parameter_arrays
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays
from repro.core.simulated_dataset import SimulatedExample, collect_simulated_dataset
from repro.core.surrogate import (BlockFeaturizer, FeaturizationCache,
                                  build_surrogate)
from repro.core.surrogate_training import (SurrogateTrainingConfig, SurrogateTrainingResult,
                                           train_surrogate)
from repro.core.table_optimization import (TableOptimizationResult,
                                           optimize_parameter_table)
from repro.corpus.streaming import (CollectionCheckpoint, StreamingExamples,
                                    StreamingSimulatedDataset,
                                    collect_simulated_dataset_streaming)
from repro.pipeline.checkpoint import CheckpointStore


def corpus_backed(blocks: Any) -> bool:
    """Whether ``blocks`` is a corpus-backed (disk-sharded, lazy) source.

    Corpus views advertise a :meth:`content_fingerprint`; plain block lists
    do not.  Corpus-backed runs stream dataset collection and training so
    peak memory stays proportional to one shard, not the corpus.
    """
    return hasattr(blocks, "content_fingerprint")


@dataclass
class PipelineState:
    """Everything a tuning run accumulates as its stages execute.

    ``config`` is a :class:`~repro.core.difftune.DiffTuneConfig` (typed as
    ``Any`` to keep this module import-cycle-free).
    """

    adapter: Any
    config: Any
    blocks: Sequence[Any]
    true_timings: np.ndarray
    rng: np.random.Generator
    featurizer: BlockFeaturizer
    log: Callable[[str], None] = lambda message: None

    simulated_examples: Optional[Sequence[Any]] = None
    #: Round-grouped streaming dataset backing ``simulated_examples`` when the
    #: run is corpus-backed (collection streamed to/from disk).
    streaming_dataset: Optional[StreamingSimulatedDataset] = None
    #: Optional mmap featurization store serving per-block arrays to training.
    featurization_store: Any = None
    #: Set by the pipeline when checkpointing, for mid-stage partial saves.
    checkpoint_store: Optional[CheckpointStore] = None
    resume: bool = False
    surrogate: Any = None
    surrogate_result: Optional[SurrogateTrainingResult] = None
    table_result: Optional[TableOptimizationResult] = None
    best_arrays: Optional[ParameterArrays] = None
    best_error: float = float("inf")
    learned_arrays: Optional[ParameterArrays] = None
    train_error: Optional[float] = None
    #: Stage names restored from a checkpoint rather than executed.
    resumed_stages: List[str] = field(default_factory=list)

    def log_engine_stats(self) -> None:
        """Report the shared engine's cache behaviour (engine-backed adapters)."""
        try:
            stats = self.adapter.engine.stats
        except NotImplementedError:
            return
        self.log(f"engine: {stats['executed']} simulations, "
                 f"{stats['result_hits']} cache hits, "
                 f"{stats['compile_misses']} blocks compiled "
                 f"(reused {stats['compile_hits']} times)")


class Stage:
    """One resumable unit of a tuning pipeline."""

    name: str = "stage"

    def run(self, state: PipelineState) -> None:
        raise NotImplementedError

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        raise NotImplementedError

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared (de)serialization of a simulated dataset
# ----------------------------------------------------------------------
def _examples_to_arrays(examples: Sequence[SimulatedExample]) -> Dict[str, np.ndarray]:
    """Pack a simulated dataset into flat arrays.

    Sampled tables are shared by reference across the examples drawn with
    them (``blocks_per_table`` at a time); dedup by identity keeps the
    archive proportional to the number of *tables*, mirroring the in-memory
    layout.  Blocks are stored as indices into the ground-truth block list.
    """
    table_index_by_id: Dict[int, int] = {}
    tables: List[ParameterArrays] = []
    example_table = np.empty(len(examples), dtype=np.int64)
    example_block = np.empty(len(examples), dtype=np.int64)
    example_timing = np.empty(len(examples), dtype=np.float64)
    for position, example in enumerate(examples):
        key = id(example.arrays)
        table_index = table_index_by_id.get(key)
        if table_index is None:
            table_index = len(tables)
            table_index_by_id[key] = table_index
            tables.append(example.arrays)
        example_table[position] = table_index
        example_block[position] = example.block_index
        example_timing[position] = example.simulated_timing
    return {
        "table_global_values": np.stack([table.global_values for table in tables]),
        "table_per_instruction_values": np.stack(
            [table.per_instruction_values for table in tables]),
        "example_table": example_table,
        "example_block": example_block,
        "example_timing": example_timing,
    }


def _examples_from_arrays(arrays: Dict[str, np.ndarray],
                          blocks: Sequence[Any]) -> List[SimulatedExample]:
    tables = [ParameterArrays(global_values=arrays["table_global_values"][index],
                              per_instruction_values=arrays["table_per_instruction_values"][index])
              for index in range(arrays["table_global_values"].shape[0])]
    examples: List[SimulatedExample] = []
    for table_index, block_index, timing in zip(arrays["example_table"],
                                                arrays["example_block"],
                                                arrays["example_timing"]):
        examples.append(SimulatedExample(arrays=tables[int(table_index)],
                                         block_index=int(block_index),
                                         block=blocks[int(block_index)],
                                         simulated_timing=float(timing)))
    return examples


def collect_examples(adapter: Any, config: Any, blocks: Sequence[Any],
                     rng: np.random.Generator,
                     num_examples: Optional[int] = None,
                     table_sampler: Optional[Callable] = None
                     ) -> List[SimulatedExample]:
    """Collect a simulated dataset with the adapter's field freezing applied.

    Shared by the collection stage, the refinement stages, and
    :meth:`repro.core.difftune.DiffTune.collect_simulated_dataset`.
    """
    spec = adapter.parameter_spec()
    if table_sampler is None:
        def table_sampler(generator: np.random.Generator) -> ParameterArrays:
            return adapter.freeze_unlearned_fields(spec.sample(generator))
    return collect_simulated_dataset(
        adapter, blocks,
        config.simulated_dataset_size if num_examples is None else num_examples,
        rng, blocks_per_table=config.blocks_per_table, table_sampler=table_sampler)


# ----------------------------------------------------------------------
# Concrete stages
# ----------------------------------------------------------------------
def _streaming_examples(state: PipelineState,
                        dataset: StreamingSimulatedDataset) -> StreamingExamples:
    """Index-addressed training view over a streamed dataset."""
    return StreamingExamples(dataset, state.blocks,
                             FeaturizationCache(state.featurizer),
                             store=state.featurization_store)


def _collection_checkpoint_interval(blocks: Any, config: Any) -> int:
    """Examples between partial saves: one corpus shard's worth (floor 1)."""
    corpus = getattr(blocks, "corpus", blocks)
    return max(int(getattr(corpus, "shard_size", 0)) or 1024, 1)


class CollectDatasetStage(Stage):
    """Stage 1: sample parameter tables and record the simulator's timings.

    With corpus-backed blocks the stage streams: examples accumulate in a
    :class:`~repro.corpus.streaming.StreamingSimulatedDataset` (arrays, not
    per-example objects), partial progress checkpoints to the stage directory
    every corpus-shard's worth of examples, and a killed run resumes from the
    last partial bit-identically (the rng stream position is saved with it).
    """

    name = "collect_dataset"
    DATASET_FILE = "simulated_dataset.npz"

    def run(self, state: PipelineState) -> None:
        if state.simulated_examples is not None:
            # A pre-collected dataset was handed in (tests, shared-dataset
            # ablations); nothing to do — and nothing was logged before.
            return
        if corpus_backed(state.blocks):
            self._run_streaming(state)
            return
        state.log(f"collecting simulated dataset "
                  f"({state.config.simulated_dataset_size} examples)")
        state.simulated_examples = collect_examples(state.adapter, state.config,
                                                    state.blocks, state.rng)
        state.log_engine_stats()

    def _run_streaming(self, state: PipelineState) -> None:
        config = state.config
        state.log(f"collecting simulated dataset "
                  f"({config.simulated_dataset_size} examples, streaming)")
        spec = state.adapter.parameter_spec()

        def table_sampler(generator: np.random.Generator) -> ParameterArrays:
            return state.adapter.freeze_unlearned_fields(spec.sample(generator))

        checkpoint = None
        checkpoint_every = 0
        if state.checkpoint_store is not None:
            checkpoint = CollectionCheckpoint(
                state.checkpoint_store.stage_dir(self.name))
            if not state.resume:
                # reset_stages() only clears completion entries; a stale
                # partial from an earlier run must not leak into this one.
                checkpoint.clear()
            checkpoint_every = _collection_checkpoint_interval(state.blocks,
                                                               config)
        dataset = collect_simulated_dataset_streaming(
            state.adapter, state.blocks, config.simulated_dataset_size,
            state.rng, blocks_per_table=config.blocks_per_table,
            table_sampler=table_sampler, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every)
        state.streaming_dataset = dataset
        state.simulated_examples = _streaming_examples(state, dataset)
        state.log_engine_stats()

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        dataset = (state.streaming_dataset
                   or getattr(state.simulated_examples, "dataset", None))
        if dataset is not None:
            store.save_arrays(self.name, self.DATASET_FILE, dataset.to_arrays())
            return
        store.save_arrays(self.name, self.DATASET_FILE,
                          _examples_to_arrays(state.simulated_examples))

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        arrays = store.load_arrays(self.name, self.DATASET_FILE)
        if corpus_backed(state.blocks):
            state.streaming_dataset = StreamingSimulatedDataset.from_arrays(arrays)
            state.simulated_examples = _streaming_examples(
                state, state.streaming_dataset)
            return
        state.simulated_examples = _examples_from_arrays(arrays, state.blocks)


def _save_surrogate_outcome(stage_name: str, state: PipelineState,
                            store: CheckpointStore) -> None:
    save_state_dict(state.surrogate,
                    store.artifact_path(stage_name, "surrogate_state.npz"))
    result = state.surrogate_result
    store.save_json(stage_name, "surrogate_result.json", {
        "epoch_losses": result.epoch_losses,
        "final_training_error": result.final_training_error,
        "used_batched_path": result.used_batched_path,
        "examples_per_second": result.examples_per_second,
    })


def _load_surrogate_outcome(stage_name: str, state: PipelineState,
                            store: CheckpointStore) -> None:
    load_state_dict(state.surrogate,
                    store.artifact_path(stage_name, "surrogate_state.npz"))
    payload = store.load_json(stage_name, "surrogate_result.json")
    state.surrogate_result = SurrogateTrainingResult(
        epoch_losses=[float(value) for value in payload["epoch_losses"]],
        final_training_error=float(payload["final_training_error"]),
        used_batched_path=bool(payload["used_batched_path"]),
        examples_per_second=float(payload["examples_per_second"]))


class TrainSurrogateStage(Stage):
    """Stage 2: fit the differentiable surrogate to the simulated dataset."""

    name = "train_surrogate"

    def run(self, state: PipelineState) -> None:
        state.surrogate = build_surrogate(state.adapter.parameter_spec(),
                                          state.featurizer, state.config.surrogate)
        state.log(f"training surrogate on {len(state.simulated_examples)} "
                  f"simulated examples")
        state.surrogate_result = train_surrogate(state.surrogate,
                                                 state.simulated_examples,
                                                 state.config.surrogate_training)
        state.log(f"surrogate training error: "
                  f"{state.surrogate_result.final_training_error:.3f}")

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        _save_surrogate_outcome(self.name, state, store)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        state.surrogate = build_surrogate(state.adapter.parameter_spec(),
                                          state.featurizer, state.config.surrogate)
        _load_surrogate_outcome(self.name, state, store)


def _optimize_and_extract(state: PipelineState,
                          initial_arrays: ParameterArrays) -> ParameterArrays:
    """Run phase two from ``initial_arrays`` and return the extracted table."""
    per_mask, global_mask = state.adapter.unlearned_dimension_masks()
    state.table_result = optimize_parameter_table(
        state.surrogate, state.blocks, state.true_timings,
        state.config.table_optimization,
        initial_arrays=initial_arrays,
        frozen_per_instruction_mask=per_mask,
        frozen_global_mask=global_mask)
    return extract_parameter_arrays(state.adapter.parameter_spec(),
                                    state.table_result.learned_arrays)


def _save_table_outcome(stage_name: str, state: PipelineState,
                        store: CheckpointStore) -> None:
    result = state.table_result
    store.save_parameter_arrays(stage_name, "table_learned.npz", result.learned_arrays)
    store.save_parameter_arrays(stage_name, "table_initial.npz", result.initial_arrays)
    store.save_parameter_arrays(stage_name, "best_arrays.npz", state.best_arrays)
    store.save_json(stage_name, "table_result.json", {
        "epoch_losses": result.epoch_losses,
        "used_batched_path": result.used_batched_path,
        "examples_per_second": result.examples_per_second,
        "best_error": state.best_error,
    })


def _load_table_outcome(stage_name: str, state: PipelineState,
                        store: CheckpointStore) -> None:
    payload = store.load_json(stage_name, "table_result.json")
    state.table_result = TableOptimizationResult(
        learned_arrays=store.load_parameter_arrays(stage_name, "table_learned.npz"),
        epoch_losses=[float(value) for value in payload["epoch_losses"]],
        initial_arrays=store.load_parameter_arrays(stage_name, "table_initial.npz"),
        used_batched_path=bool(payload["used_batched_path"]),
        examples_per_second=float(payload["examples_per_second"]))
    state.best_arrays = store.load_parameter_arrays(stage_name, "best_arrays.npz")
    state.best_error = float(payload["best_error"])


class OptimizeTableStage(Stage):
    """Stage 3: train the parameter table through the frozen surrogate."""

    name = "optimize_table"

    def run(self, state: PipelineState) -> None:
        state.log("optimizing the parameter table through the frozen surrogate")
        spec = state.adapter.parameter_spec()
        initial_arrays = state.adapter.freeze_unlearned_fields(spec.sample(state.rng))
        learned = _optimize_and_extract(state, initial_arrays)
        error = mape_loss_value(state.adapter.predict_timings(learned, state.blocks),
                                state.true_timings)
        state.log(f"round 0 learned-table training error: {error:.3f}")
        state.best_arrays, state.best_error = learned, error

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        _save_table_outcome(self.name, state, store)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        _load_table_outcome(self.name, state, store)


class RefinementRoundStage(Stage):
    """One local-surrogate refinement round (re-collect, fine-tune, re-optimize).

    Re-collects a simulated dataset sampled *near* the current estimate,
    fine-tunes the surrogate on it, re-optimizes the table starting from the
    current best estimate, and keeps the candidate if it improves the
    training error — the strategy the paper points to (Shirobokov et al.)
    for keeping the surrogate accurate where the optimizer actually goes.
    """

    def __init__(self, round_index: int) -> None:
        self.round_index = round_index
        self.name = f"refinement_round_{round_index + 1:02d}"

    def run(self, state: PipelineState) -> None:
        config = state.config
        round_number = self.round_index + 1
        state.log(f"refinement round {round_number}: resampling near the estimate")
        spec = state.adapter.parameter_spec()
        center = state.best_arrays

        def sample_near(generator: np.random.Generator) -> ParameterArrays:
            return state.adapter.freeze_unlearned_fields(
                spec.sample_near(center, generator, config.refinement_spread))

        local_examples = collect_examples(state.adapter, config, state.blocks,
                                          state.rng,
                                          num_examples=config.refinement_dataset_size,
                                          table_sampler=sample_near)
        refinement_training = SurrogateTrainingConfig(
            learning_rate=config.surrogate_training.learning_rate,
            batch_size=config.surrogate_training.batch_size,
            epochs=config.refinement_epochs,
            gradient_clip=config.surrogate_training.gradient_clip,
            seed=config.surrogate_training.seed + round_number,
            log_every=config.surrogate_training.log_every,
            batched=config.surrogate_training.batched)
        state.surrogate_result = train_surrogate(state.surrogate, local_examples,
                                                 refinement_training)
        state.log(f"refined surrogate error: "
                  f"{state.surrogate_result.final_training_error:.3f}")
        candidate = _optimize_and_extract(state, center)
        candidate_error = mape_loss_value(
            state.adapter.predict_timings(candidate, state.blocks), state.true_timings)
        state.log(f"refinement round {round_number} training error: "
                  f"{candidate_error:.3f}")
        if candidate_error < state.best_error:
            state.best_arrays, state.best_error = candidate, candidate_error

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        _save_surrogate_outcome(self.name, state, store)
        _save_table_outcome(self.name, state, store)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        _load_surrogate_outcome(self.name, state, store)
        _load_table_outcome(self.name, state, store)


class ExtractEvaluateStage(Stage):
    """Final stage: promote the best candidate to the run's learned table."""

    name = "extract_evaluate"

    def run(self, state: PipelineState) -> None:
        state.learned_arrays = state.best_arrays
        state.train_error = state.best_error

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_parameter_arrays(self.name, "learned_arrays.npz",
                                    state.learned_arrays)
        store.save_json(self.name, "summary.json", {"train_error": state.train_error})

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        state.learned_arrays = store.load_parameter_arrays(self.name,
                                                           "learned_arrays.npz")
        state.train_error = float(store.load_json(self.name, "summary.json")
                                  ["train_error"])


def build_stages(config: Any) -> List[Stage]:
    """The stage sequence for one :class:`~repro.core.difftune.DiffTuneConfig`."""
    stages: List[Stage] = [CollectDatasetStage(), TrainSurrogateStage(),
                           OptimizeTableStage()]
    stages.extend(RefinementRoundStage(index)
                  for index in range(config.refinement_rounds))
    stages.append(ExtractEvaluateStage())
    return stages
