"""Learning-rate schedules for the autodiff optimizers.

The paper trains with fixed learning rates (0.001 for the surrogate, 0.05 for
the parameter table), but the reduced-scale experiments in this reproduction
benefit from decaying schedules, and the ablation benchmarks sweep them.  All
schedules mutate ``optimizer.lr`` in place and follow the same protocol:
``step()`` advances one unit (epoch or optimizer step, as the caller decides)
and returns the new learning rate.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.autodiff.optim import Optimizer


class LRScheduler:
    """Base class for learning-rate schedules attached to one optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        if not hasattr(optimizer, "lr"):
            raise TypeError("optimizer has no learning-rate attribute")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.last_step = 0

    def get_lr(self, step: int) -> float:
        """Learning rate at ``step`` (0 is the pre-training value)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one schedule unit and update the optimizer in place."""
        self.last_step += 1
        new_lr = float(self.get_lr(self.last_step))
        self.optimizer.lr = new_lr
        return new_lr

    def history(self, num_steps: int) -> List[float]:
        """Learning rates the schedule would produce for ``num_steps`` steps."""
        return [float(self.get_lr(step)) for step in range(1, num_steps + 1)]


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if gamma <= 0.0:
            raise ValueError("gamma must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.step_size))


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` after every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if gamma <= 0.0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** step)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if min_lr < 0.0:
            raise ValueError("min_lr must be non-negative")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class LinearWarmup(LRScheduler):
    """Linear warmup to the base rate, then delegate to an optional schedule.

    During the first ``warmup_steps`` steps the learning rate ramps linearly
    from ``base_lr / warmup_steps`` to ``base_lr``; afterwards the wrapped
    schedule (if any) takes over, with its step count starting at zero once
    warmup completes.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int,
                 after: Optional[LRScheduler] = None) -> None:
        super().__init__(optimizer)
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        if after is not None and after.optimizer is not optimizer:
            raise ValueError("the wrapped schedule must drive the same optimizer")
        self.warmup_steps = warmup_steps
        self.after = after

    def get_lr(self, step: int) -> float:
        if step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        if self.after is None:
            return self.base_lr
        return self.after.get_lr(step - self.warmup_steps)
