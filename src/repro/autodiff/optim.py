"""Stochastic first-order optimizers for autodiff parameters.

DiffTune trains both the surrogate weights and the simulator parameter table
with Adam (Kingma & Ba, 2015).  SGD with optional momentum is also provided
for baselines and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base optimizer over a list of tensors with ``requires_grad=True``."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer requires at least one parameter")
        for parameter in self.parameters:
            if not isinstance(parameter, Tensor):
                raise TypeError("optimizer parameters must be Tensors")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State (de)serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Internal optimizer state as arrays keyed by parameter position.

        Parameters are identified by their index in :attr:`parameters`, so a
        state dict round-trips between optimizer instances built over the
        same parameter list in the same order (the checkpoint/resume
        contract of the pipeline layer).  The base optimizer is stateless.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if state:
            raise KeyError(f"unexpected optimizer state entries: {sorted(state)}")

    def _moments_to_state(self, name: str, moments: Dict[int, np.ndarray]
                          ) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for index, parameter in enumerate(self.parameters):
            moment = moments.get(id(parameter))
            if moment is not None:
                state[f"{name}.{index}"] = moment.copy()
        return state

    def _moments_from_state(self, name: str, state: Dict[str, np.ndarray]
                            ) -> Dict[int, np.ndarray]:
        moments: Dict[int, np.ndarray] = {}
        for key, value in state.items():
            if not key.startswith(name + "."):
                continue
            index = int(key[len(name) + 1:])
            if not 0 <= index < len(self.parameters):
                raise KeyError(f"optimizer state {key!r} indexes a missing parameter")
            parameter = self.parameters[index]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for {key}: expected "
                                 f"{parameter.data.shape}, got {value.shape}")
            moments[id(parameter)] = value.copy()
        return moments

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; return the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                update = velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self._moments_to_state("velocity", self._velocity)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._velocity = self._moments_from_state("velocity", state)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015).

    Both the surrogate and the parameter table are trained with Adam in the
    paper (batch size 256, learning rates 0.001 and 0.05 respectively).
    """

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
            first = self.beta1 * first + (1.0 - self.beta1) * grad
            second = self.beta2 * second + (1.0 - self.beta2) * grad * grad
            self._first_moment[key] = first
            self._second_moment[key] = second
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data = parameter.data - self.lr * corrected_first / (
                np.sqrt(corrected_second) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {"step_count": np.array(self._step_count, dtype=np.int64)}
        state.update(self._moments_to_state("first_moment", self._first_moment))
        state.update(self._moments_to_state("second_moment", self._second_moment))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "step_count" not in state:
            raise KeyError("Adam state dict is missing 'step_count'")
        self._step_count = int(np.asarray(state["step_count"]))
        self._first_moment = self._moments_from_state("first_moment", state)
        self._second_moment = self._moments_from_state("second_moment", state)


class LearningRateSchedule:
    """Simple step-decay learning-rate schedule applied to an optimizer."""

    def __init__(self, optimizer: Optimizer, decay_factor: float = 0.5,
                 decay_every: int = 1) -> None:
        if not hasattr(optimizer, "lr"):
            raise TypeError("optimizer has no learning rate attribute")
        if decay_every < 1:
            raise ValueError("decay_every must be >= 1")
        self.optimizer = optimizer
        self.decay_factor = decay_factor
        self.decay_every = decay_every
        self._epoch = 0

    def step_epoch(self) -> float:
        """Advance one epoch, decaying the learning rate when due."""
        self._epoch += 1
        if self._epoch % self.decay_every == 0:
            self.optimizer.lr *= self.decay_factor
        return self.optimizer.lr
