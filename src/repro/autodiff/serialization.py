"""Saving and loading of training state: modules, optimizers, parameter arrays.

State is stored as compressed ``.npz`` archives so that trained surrogates,
optimizer moments, and learned parameter tables can be checkpointed between
(and now *within*) the optimization stages of DiffTune.  The pipeline layer
(:mod:`repro.pipeline`) builds its per-stage artifact files on these helpers.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.autodiff.modules import Module
from repro.autodiff.optim import Optimizer


def _write_npz(path: str, arrays: Dict[str, np.ndarray]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # npz keys cannot contain certain characters reliably across versions, so
    # keys are stored verbatim — NumPy handles dotted names fine.
    np.savez_compressed(path, **arrays)


def save_arrays(arrays: Dict[str, np.ndarray], path: str) -> None:
    """Serialize a flat ``name -> array`` mapping to ``path`` as an .npz archive."""
    _write_npz(path, {key: np.asarray(value) for key, value in arrays.items()})


def load_arrays(path: str) -> Dict[str, np.ndarray]:
    """Load a ``name -> array`` mapping saved by :func:`save_arrays`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_state_dict(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to ``path`` as an .npz archive."""
    _write_npz(path, module.state_dict())


def load_state_dict(module: Module, path: str) -> Module:
    """Load an .npz archive produced by :func:`save_state_dict` into ``module``."""
    module.load_state_dict(load_arrays(path))
    return module


def save_optimizer_state(optimizer: Optimizer, path: str) -> None:
    """Serialize an optimizer's internal state (Adam moments, SGD velocity).

    The state is keyed by parameter *position*, so it round-trips into a
    fresh optimizer constructed over the same parameter list in the same
    order — the situation a resumed training stage is in.
    """
    _write_npz(path, optimizer.state_dict())


def load_optimizer_state(optimizer: Optimizer, path: str) -> Optimizer:
    """Restore state saved by :func:`save_optimizer_state` into ``optimizer``."""
    optimizer.load_state_dict(load_arrays(path))
    return optimizer


def save_parameter_arrays(arrays, path: str) -> None:
    """Serialize a :class:`~repro.core.parameters.ParameterArrays` to .npz.

    Duck-typed (anything with ``global_values`` / ``per_instruction_values``
    NumPy attributes) so this module stays free of an import cycle with
    :mod:`repro.core`.
    """
    _write_npz(path, {
        "global_values": np.asarray(arrays.global_values, dtype=np.float64),
        "per_instruction_values": np.asarray(arrays.per_instruction_values,
                                             dtype=np.float64),
    })


def load_parameter_arrays(path: str):
    """Load a :class:`~repro.core.parameters.ParameterArrays` from .npz."""
    from repro.core.parameters import ParameterArrays

    state = load_arrays(path)
    missing = {"global_values", "per_instruction_values"} - set(state)
    if missing:
        raise KeyError(f"{path} is not a ParameterArrays archive; missing {sorted(missing)}")
    return ParameterArrays(global_values=state["global_values"],
                           per_instruction_values=state["per_instruction_values"])
