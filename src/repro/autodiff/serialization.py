"""Saving and loading of module state dicts.

State is stored as a compressed ``.npz`` archive so that trained surrogates
and learned parameter tables can be checkpointed between the two optimization
phases of DiffTune (surrogate training and parameter-table training).
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.autodiff.modules import Module


def save_state_dict(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to ``path`` as an .npz archive."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # npz keys cannot contain certain characters reliably across versions, so
    # keys are stored verbatim — NumPy handles dotted names fine.
    np.savez_compressed(path, **state)


def load_state_dict(module: Module, path: str) -> Module:
    """Load an .npz archive produced by :func:`save_state_dict` into ``module``."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
