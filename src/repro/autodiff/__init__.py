"""Reverse-mode automatic differentiation substrate.

This package replaces PyTorch in the DiffTune pipeline.  It provides a small
but complete reverse-mode autodiff engine built on NumPy:

* :class:`~repro.autodiff.tensor.Tensor` — an n-dimensional array that records
  the operations applied to it and can back-propagate gradients.
* :mod:`~repro.autodiff.functional` — differentiable operations (matmul,
  element-wise math, reductions, concatenation, stacking, ...).
* :mod:`~repro.autodiff.modules` — neural-network building blocks (Linear,
  Embedding, LSTM cells and stacks, MLPs) with a ``Module`` container that
  tracks parameters.
* :mod:`~repro.autodiff.optim` — stochastic first-order optimizers (SGD, Adam).
* :mod:`~repro.autodiff.serialization` — save/load of module state.

The engine is intentionally small: it implements exactly what the DiffTune
surrogate (an Ithemal-style stacked-LSTM regressor) and the parameter-table
optimization loop require, with shapes and semantics chosen to mirror the
corresponding PyTorch operations.
"""

from repro.autodiff.tensor import (Tensor, no_grad, is_grad_enabled, gather,
                                   masked_mean, masked_sum)
from repro.autodiff import functional
from repro.autodiff.modules import (
    Module,
    Parameter,
    Linear,
    Embedding,
    LayerNorm,
    GRUCell,
    GRU,
    LSTMCell,
    LSTM,
    StackedLSTM,
    MLP,
    Sequential,
    ReLU,
    Tanh,
    Dropout,
)
from repro.autodiff.optim import Optimizer, SGD, Adam
from repro.autodiff.schedules import (
    LRScheduler,
    StepLR,
    ExponentialLR,
    CosineAnnealingLR,
    LinearWarmup,
)
from repro.autodiff.gradcheck import gradcheck, assert_gradients_close
from repro.autodiff.serialization import (save_arrays, load_arrays,
                                          save_state_dict, load_state_dict,
                                          save_optimizer_state, load_optimizer_state,
                                          save_parameter_arrays, load_parameter_arrays)
from repro.autodiff import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "gather",
    "masked_sum",
    "masked_mean",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "GRUCell",
    "GRU",
    "LSTMCell",
    "LSTM",
    "StackedLSTM",
    "MLP",
    "Sequential",
    "ReLU",
    "Tanh",
    "Dropout",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "LinearWarmup",
    "gradcheck",
    "assert_gradients_close",
    "save_arrays",
    "load_arrays",
    "save_state_dict",
    "load_state_dict",
    "save_optimizer_state",
    "load_optimizer_state",
    "save_parameter_arrays",
    "load_parameter_arrays",
    "init",
]
