"""Neural-network modules built on the autodiff tensor.

The module hierarchy mirrors the pieces the DiffTune surrogate needs:

* :class:`Linear` — fully connected layer.
* :class:`Embedding` — token-id → vector lookup table.
* :class:`LSTMCell` / :class:`LSTM` / :class:`StackedLSTM` — recurrent layers
  used for the per-instruction and per-block sequence models.
* :class:`MLP`, :class:`Sequential`, :class:`ReLU`, :class:`Tanh`,
  :class:`Dropout` — glue for the prediction head and for baseline models.

All modules expose ``parameters()`` / ``named_parameters()`` /
``state_dict()`` / ``load_state_dict()`` so that optimizers and the
serialization helpers can treat them uniformly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import init
from repro.autodiff.tensor import Tensor, concat, gather


class Parameter(Tensor):
    """A tensor that is registered as a learnable module parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by ``parameters()`` and
    ``state_dict()``.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (prefix + name, parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix + module_name + ".")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.has_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.has_bias:
            out = out + self.bias
        return out


class Embedding(Module):
    """A lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.uniform_embedding((num_embeddings, embedding_dim), rng),
                                name="weight")

    def forward(self, token_ids: Sequence[int]) -> Tensor:
        """Look up ``token_ids`` (any shape — scalars, sequences, or padded
        ``(B, I, T)`` id arrays); the result appends the embedding dim."""
        indices = np.asarray(token_ids, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): {indices.tolist()}"
            )
        return gather(self.weight, indices)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout.  Active only in training mode."""

    def __init__(self, probability: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= probability < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.probability = probability
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.probability == 0.0:
            return x
        keep = 1.0 - self.probability
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._order)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers."""

    def __init__(self, sizes: Sequence[int], rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP requires at least an input and an output size")
        rng = rng or np.random.default_rng(0)
        layers: List[Module] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            if index < len(sizes) - 2:
                layers.append(ReLU())
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)


class LayerNorm(Module):
    """Layer normalization over the last dimension.

    Normalizes each input vector to zero mean and unit variance, then applies
    a learned affine transform.  Used by the deeper surrogate variants to keep
    stacked recurrent layers trainable at small batch sizes.
    """

    def __init__(self, normalized_size: int, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_size < 1:
            raise ValueError("normalized_size must be >= 1")
        self.normalized_size = normalized_size
        self.eps = eps
        self.gain = Parameter(np.ones(normalized_size), name="gain")
        self.bias = Parameter(np.zeros(normalized_size), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_size:
            raise ValueError(
                f"LayerNorm expected last dimension {self.normalized_size}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True) if x.ndim > 1 else x.mean().reshape(1)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True) if x.ndim > 1 \
            else (centered * centered).mean().reshape(1)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gain + self.bias


class GRUCell(Module):
    """A single gated-recurrent-unit cell.

    Provided as a lighter-weight alternative to the LSTM cell for surrogate
    ablations: it has ~25% fewer parameters per hidden unit, which matters at
    the CPU-budget scale of this reproduction.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates are ordered: reset, update, candidate.
        self.weight_input = Parameter(
            init.xavier_uniform((input_size, 3 * hidden_size), rng), name="weight_input")
        self.weight_hidden = Parameter(
            init.xavier_uniform((hidden_size, 3 * hidden_size), rng), name="weight_hidden")
        self.bias = Parameter(np.zeros(3 * hidden_size), name="bias")

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_size
        input_part = x.matmul(self.weight_input) + self.bias
        hidden_part = hidden.matmul(self.weight_hidden)
        reset_gate = (input_part[..., 0:h] + hidden_part[..., 0:h]).sigmoid()
        update_gate = (input_part[..., h:2 * h] + hidden_part[..., h:2 * h]).sigmoid()
        candidate = (input_part[..., 2 * h:3 * h]
                     + reset_gate * hidden_part[..., 2 * h:3 * h]).tanh()
        return update_gate * hidden + (1.0 - update_gate) * candidate

    def initial_state(self, batch_shape: Tuple[int, ...] = ()) -> Tensor:
        return Tensor(np.zeros(tuple(batch_shape) + (self.hidden_size,)))


class GRU(Module):
    """Process a sequence of vectors with a single-layer GRU.

    Mirrors :class:`LSTM`: the input is a sequence of tensors of shape
    ``(input_size,)`` (or ``(batch, input_size)``) and the output is the final
    hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, sequence: Sequence[Tensor],
                hidden: Optional[Tensor] = None) -> Tensor:
        return self.forward_all(sequence, hidden)[-1]

    def forward_all(self, sequence: Sequence[Tensor],
                    hidden: Optional[Tensor] = None) -> List[Tensor]:
        """Return the hidden state after every element of the sequence."""
        if len(sequence) == 0:
            raise ValueError("GRU.forward requires a non-empty sequence")
        if hidden is None:
            hidden = self.cell.initial_state(sequence[0].shape[:-1])
        hidden_states: List[Tensor] = []
        for element in sequence:
            hidden = self.cell(element, hidden)
            hidden_states.append(hidden)
        return hidden_states


class LSTMCell(Module):
    """A single LSTM cell following the standard gate formulation."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates are ordered: input, forget, cell, output.
        self.weight_input = Parameter(
            init.xavier_uniform((input_size, 4 * hidden_size), rng), name="weight_input")
        self.weight_hidden = Parameter(
            init.xavier_uniform((hidden_size, 4 * hidden_size), rng), name="weight_hidden")
        bias = np.zeros(4 * hidden_size)
        # Initialize forget-gate bias to 1, a standard trick for trainability.
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        hidden, cell = state
        gates = x.matmul(self.weight_input) + hidden.matmul(self.weight_hidden) + self.bias
        h = self.hidden_size
        input_gate = gates[..., 0:h].sigmoid()
        forget_gate = gates[..., h:2 * h].sigmoid()
        cell_candidate = gates[..., 2 * h:3 * h].tanh()
        output_gate = gates[..., 3 * h:4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def initial_state(self, batch_shape: Tuple[int, ...] = ()) -> Tuple[Tensor, Tensor]:
        shape = tuple(batch_shape) + (self.hidden_size,)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))


class LSTM(Module):
    """Process a sequence of vectors with a single-layer LSTM.

    The input is a sequence of tensors of shape ``(input_size,)`` (or
    ``(batch, input_size)``); the output is the final hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, sequence: Sequence[Tensor],
                state: Optional[Tuple[Tensor, Tensor]] = None) -> Tensor:
        outputs = self.forward_all(sequence, state)
        return outputs[-1]

    def forward_all(self, sequence: Sequence[Tensor],
                    state: Optional[Tuple[Tensor, Tensor]] = None) -> List[Tensor]:
        """Return the hidden state after every element of the sequence."""
        if len(sequence) == 0:
            raise ValueError("LSTM.forward requires a non-empty sequence")
        first = sequence[0]
        batch_shape = first.shape[:-1]
        if state is None:
            state = self.cell.initial_state(batch_shape)
        hidden_states: List[Tensor] = []
        hidden, cell = state
        for element in sequence:
            hidden, cell = self.cell(element, (hidden, cell))
            hidden_states.append(hidden)
        return hidden_states

    def forward_batch(self, steps: Sequence[Tensor], mask: np.ndarray) -> Tensor:
        """Final hidden state of a padded minibatch: ``steps[t]`` is ``(B, D)``.

        ``mask`` has shape ``(T, B)`` with 1 where the step is real and 0 on
        padding.  Masked steps hold the previous state, so after the loop each
        row's hidden state equals its state after its own last real step —
        identical to running that example alone through :meth:`forward`.
        """
        return self.forward_all_batch(steps, mask)[-1]

    def forward_all_batch(self, steps: Sequence[Tensor],
                          mask: np.ndarray) -> List[Tensor]:
        """Per-step hidden states of a padded minibatch (masked state holds)."""
        if len(steps) == 0:
            raise ValueError("LSTM.forward_batch requires a non-empty sequence")
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape[0] != len(steps):
            raise ValueError(f"mask covers {mask.shape[0]} steps, got {len(steps)}")
        hidden, cell = self.cell.initial_state(steps[0].shape[:-1])
        hidden_states: List[Tensor] = []
        for index, element in enumerate(steps):
            step_mask = mask[index]
            new_hidden, new_cell = self.cell(element, (hidden, cell))
            if step_mask.all():
                hidden, cell = new_hidden, new_cell
            else:
                keep = step_mask[..., None]
                hidden = new_hidden * keep + hidden * (1.0 - keep)
                cell = new_cell * keep + cell * (1.0 - keep)
            hidden_states.append(hidden)
        return hidden_states


class StackedLSTM(Module):
    """A stack of LSTM layers, as used by the DiffTune surrogate.

    The paper replaces each of Ithemal's LSTMs with a stack of 4 LSTMs to give
    the surrogate enough capacity to model the dependence on the parameter
    table (Section IV).  The stack depth is configurable here.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 4,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("StackedLSTM requires at least one layer")
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.input_size = input_size
        rng = rng or np.random.default_rng(0)
        self._layer_names: List[str] = []
        for index in range(num_layers):
            layer = LSTM(input_size if index == 0 else hidden_size, hidden_size, rng=rng)
            name = f"lstm{index}"
            setattr(self, name, layer)
            self._layer_names.append(name)

    def forward(self, sequence: Sequence[Tensor]) -> Tensor:
        outputs = self.forward_all(sequence)
        return outputs[-1]

    def forward_all(self, sequence: Sequence[Tensor]) -> List[Tensor]:
        """Return the top layer's hidden state after every sequence element."""
        current: List[Tensor] = list(sequence)
        for name in self._layer_names:
            layer: LSTM = getattr(self, name)
            current = layer.forward_all(current)
        return current

    def forward_batch(self, steps: Sequence[Tensor], mask: np.ndarray) -> Tensor:
        """Final top-layer hidden state over a padded minibatch (see LSTM).

        Masked steps hold every layer's state, so each lower layer feeds the
        next exactly the per-step hidden states the per-example path would
        produce; padding never leaks across layers.
        """
        current: List[Tensor] = list(steps)
        for name in self._layer_names:
            layer: LSTM = getattr(self, name)
            current = layer.forward_all_batch(current, mask)
        return current[-1]
