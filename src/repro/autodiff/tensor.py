"""A reverse-mode automatic differentiation tensor.

The :class:`Tensor` class wraps a NumPy array and records the computation
graph of operations applied to it.  Calling :meth:`Tensor.backward` on a
scalar result propagates gradients back to every tensor in the graph that has
``requires_grad=True``.

The design mirrors PyTorch's eager autograd at a much smaller scale:

* every operation creates a new ``Tensor`` whose ``_backward`` closure knows
  how to push its output gradient onto its parents;
* ``backward`` performs a topological sort of the graph and applies the
  closures in reverse order;
* gradients accumulate into ``Tensor.grad`` (a plain NumPy array).

Broadcasting is supported for element-wise operations; gradients of broadcast
operands are reduced back to the operand's original shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Used for evaluation passes (e.g. computing validation error of the
    surrogate) where building the graph would only waste memory.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """An n-dimensional array that supports reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents if is_grad_enabled() else ()
        self._backward = _backward if is_grad_enabled() else None
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and is_grad_enabled():
            out._parents = tuple(p for p in parents if p.requires_grad or p._parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Args:
            grad: The gradient of some scalar loss with respect to this
                tensor.  Defaults to ``1.0`` which requires this tensor to be
                a scalar.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=np.float64)

        order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        # Seed the output gradient.  Even if this tensor does not itself
        # require grad, its backward closure still needs the seed to push
        # gradients onto its ancestors.
        seeded_temporarily = False
        if self.requires_grad:
            self._accumulate(grad)
        else:
            self.grad = grad
            seeded_temporarily = True

        for node in reversed(order):
            if node._backward is None:
                continue
            node_grad = node.grad
            if node_grad is None:
                continue
            node._backward(node_grad)

        if seeded_temporarily:
            self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic operations
    # ------------------------------------------------------------------
    def _binary(
        self,
        other: ArrayLike,
        forward: Callable[[np.ndarray, np.ndarray], np.ndarray],
        backward_self: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        backward_other: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = forward(self.data, other_t.data)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(backward_self(grad, self.data, other_t.data))
            if other_t.requires_grad:
                other_t._accumulate(backward_other(grad, self.data, other_t.data))

        return Tensor._make(data, (self, other_t), _backward)

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a + b,
            lambda g, a, b: g,
            lambda g, a, b: g,
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a - b,
            lambda g, a, b: g,
            lambda g, a, b: -g,
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a * b,
            lambda g, a, b: g * b,
            lambda g, a, b: g * a,
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a / b,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        data = self.data ** exponent

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(data, (self,), _backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def _backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if self.requires_grad:
                if b.ndim == 1 and a.ndim == 1:
                    self._accumulate(grad * b)
                elif b.ndim == 1:
                    self._accumulate(np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b)
                else:
                    g = grad
                    if g.ndim == 1:
                        g = g[None, :]
                        self._accumulate((g @ b.swapaxes(-1, -2)).reshape(a.shape))
                    else:
                        self._accumulate(_unbroadcast(g @ b.swapaxes(-1, -2), a.shape))
            if other_t.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    other_t._accumulate(grad * a)
                elif a.ndim == 1:
                    other_t._accumulate(np.outer(a, grad))
                else:
                    g = grad
                    if g.ndim == 1:
                        g = g[:, None]
                        other_t._accumulate((a.swapaxes(-1, -2) @ g).reshape(b.shape))
                    else:
                        other_t._accumulate(_unbroadcast(a.swapaxes(-1, -2) @ g, b.shape))

        return Tensor._make(data, (self, other_t), _backward)

    # ------------------------------------------------------------------
    # Element-wise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), _backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), _backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), _backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), _backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), _backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(data, (self,), _backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), _backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        """Differentiable lower clamp (gradient passes where data > minimum)."""
        mask = self.data > minimum
        data = np.maximum(self.data, minimum)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), _backward)

    def clamp(self, minimum: float, maximum: float) -> "Tensor":
        """Differentiable two-sided clamp (gradient passes inside the range)."""
        if minimum > maximum:
            raise ValueError("clamp requires minimum <= maximum")
        mask = (self.data > minimum) & (self.data < maximum)
        data = np.clip(self.data, minimum, maximum)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), _backward)

    def softplus(self) -> "Tensor":
        data = np.logaddexp(0.0, self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return Tensor._make(data, (self,), _backward)

    # ------------------------------------------------------------------
    # Reductions and shape manipulation
    # ------------------------------------------------------------------
    def sum(self, axis: Union[int, Tuple[int, ...], None] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def _backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(g, self.data.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                expanded = np.broadcast_to(g, self.data.shape)
            self._accumulate(expanded)

        return Tensor._make(data, (self,), _backward)

    def mean(self, axis: Union[int, Tuple[int, ...], None] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[entry] for entry in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        """Broadcast to ``shape``; gradients are summed back over the new dims."""
        data = np.broadcast_to(self.data, shape)

        def _backward(grad: np.ndarray) -> None:
            # _accumulate's _unbroadcast reduces the gradient back to our shape.
            self._accumulate(np.asarray(grad))

        return Tensor._make(np.array(data), (self,), _backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return Tensor._make(data, (self,), _backward)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        data = np.transpose(self.data, axes)

        def _backward(grad: np.ndarray) -> None:
            if axes is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(data, (self,), _backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def _backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), _backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return NumPy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise maximum with gradient routed to the larger operand.

    Ties send the gradient to the first operand, matching NumPy's behaviour
    for ``np.maximum`` subgradients.
    """
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def _backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if a.requires_grad:
            a._accumulate(grad * a_wins)
        if b.requires_grad:
            b._accumulate(grad * (~a_wins))

    return Tensor._make(data, (a, b), _backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if not tensor.requires_grad:
                continue
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), _backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def _backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for index, tensor in enumerate(tensors):
            if not tensor.requires_grad:
                continue
            tensor._accumulate(np.take(grad, index, axis=axis))

    return Tensor._make(data, tuple(tensors), _backward)


def gather(source: Tensor, indices, axis: int = 0) -> Tensor:
    """Index ``source`` along ``axis`` with an integer array, scatter-adding grads.

    The batched analogue of ``source[indices]``: ``indices`` may have any
    shape, and the result replaces ``axis`` with the index shape (NumPy
    ``take`` semantics).  Repeated indices accumulate gradient into the same
    source row, which is what embedding lookups over whole minibatches need.
    """
    source = source if isinstance(source, Tensor) else Tensor(source)
    idx = np.asarray(indices, dtype=np.int64)
    axis_norm = axis % max(source.data.ndim, 1)
    data = np.take(source.data, idx, axis=axis_norm)

    def _backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        full = np.zeros_like(source.data)
        # The result axes [axis, axis + idx.ndim) index into `axis` of the
        # source; move them (and the source axis) to the front so a single
        # np.add.at scatters every row, accumulating duplicates.
        moved_full = np.moveaxis(full, axis_norm, 0)
        moved_grad = np.moveaxis(grad,
                                 tuple(range(axis_norm, axis_norm + idx.ndim)),
                                 tuple(range(idx.ndim)))
        np.add.at(moved_full, idx, moved_grad)
        source._accumulate(full)

    return Tensor._make(data, (source,), _backward)


def masked_sum(x: Tensor, mask, axis: Union[int, Tuple[int, ...], None] = None,
               keepdims: bool = False) -> Tensor:
    """Sum of ``x * mask`` over ``axis``; gradients flow only where mask != 0.

    ``mask`` is a constant (NumPy) array broadcastable against ``x`` — the
    padding masks of ragged minibatches.  A single fused primitive avoids
    materializing the masked intermediate in the autodiff graph.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    mask_array = np.asarray(mask, dtype=np.float64)
    data = (x.data * mask_array).sum(axis=axis, keepdims=keepdims)

    def _backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        x._accumulate(np.broadcast_to(g, np.broadcast(x.data, mask_array).shape)
                      * mask_array)

    return Tensor._make(data, (x,), _backward)


def masked_mean(x: Tensor, mask, axis: Union[int, Tuple[int, ...], None] = None,
                keepdims: bool = False, minimum_count: float = 1.0) -> Tensor:
    """Mean of the unmasked entries of ``x`` over ``axis``.

    Divides each output element by the number of mask-selected inputs that
    contributed to it (clamped to ``minimum_count`` so fully masked slots —
    padded instructions past a block's real length — yield 0, not NaN).  The
    division is implemented as multiplication by a reciprocal so values match
    :meth:`Tensor.mean` bit patterns on fully unmasked inputs.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    mask_array = np.asarray(mask, dtype=np.float64)
    full_shape = np.broadcast(x.data, mask_array).shape
    counts = np.broadcast_to(mask_array, full_shape).sum(axis=axis, keepdims=keepdims)
    inverse = 1.0 / np.maximum(counts, minimum_count)
    data = (x.data * mask_array).sum(axis=axis, keepdims=keepdims) * inverse

    def _backward(grad: np.ndarray) -> None:
        g = np.asarray(grad) * inverse
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        x._accumulate(np.broadcast_to(g, full_shape) * mask_array)

    return Tensor._make(data, (x,), _backward)
