"""Functional interface to differentiable operations.

Thin wrappers around :class:`~repro.autodiff.tensor.Tensor` methods plus a few
composite operations (losses, activations) used throughout the DiffTune
surrogate and parameter-table optimization.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.autodiff.tensor import Tensor, concat, stack
from repro.autodiff.tensor import gather as _gather
from repro.autodiff.tensor import masked_mean as _masked_mean
from repro.autodiff.tensor import masked_sum as _masked_sum

ArrayLike = Union[Tensor, np.ndarray, float, int]


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a).matmul(b)


def exp(x: Tensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    return as_tensor(x).log()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def softplus(x: Tensor) -> Tensor:
    return as_tensor(x).softplus()


def absolute(x: Tensor) -> Tensor:
    return as_tensor(x).abs()


def sqrt(x: Tensor) -> Tensor:
    return as_tensor(x).sqrt()


def clamp_min(x: Tensor, minimum: float) -> Tensor:
    return as_tensor(x).clamp_min(minimum)


def mean(x: Tensor, axis: Optional[int] = None) -> Tensor:
    return as_tensor(x).mean(axis=axis)


def total(x: Tensor, axis: Optional[int] = None) -> Tensor:
    """Sum of all elements (named ``total`` to avoid shadowing built-in sum)."""
    return as_tensor(x).sum(axis=axis)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    return concat(list(tensors), axis=axis)


def stack_tensors(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    return stack(list(tensors), axis=axis)


def dot(a: Tensor, b: Tensor) -> Tensor:
    """Inner product of two 1-D tensors."""
    return (as_tensor(a) * as_tensor(b)).sum()


# ----------------------------------------------------------------------
# Batched primitives (minibatch fast path).  Stacked matmul needs no
# wrapper: `matmul` above already broadcasts leading batch dimensions with
# gradients reduced back to each operand's shape.
# ----------------------------------------------------------------------
def gather(source: Tensor, indices, axis: int = 0) -> Tensor:
    """Per-row gather (embedding-style lookup) with scatter-add gradients."""
    return _gather(as_tensor(source), indices, axis=axis)


def masked_sum(x: Tensor, mask, axis: Union[int, Tuple[int, ...], None] = None,
               keepdims: bool = False) -> Tensor:
    """Masked reduction over ragged (padded) batches: sum of unmasked entries."""
    return _masked_sum(as_tensor(x), mask, axis=axis, keepdims=keepdims)


def masked_mean(x: Tensor, mask, axis: Union[int, Tuple[int, ...], None] = None,
                keepdims: bool = False) -> Tensor:
    """Masked reduction over ragged (padded) batches: mean of unmasked entries."""
    return _masked_mean(as_tensor(x), mask, axis=axis, keepdims=keepdims)


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: ArrayLike) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: ArrayLike) -> Tensor:
    """Mean absolute error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def mape_loss(prediction: Tensor, target: ArrayLike, epsilon: float = 1e-6) -> Tensor:
    """Mean absolute percentage error — the loss used throughout DiffTune.

    ``|prediction - target| / max(target, epsilon)`` averaged over the batch.
    Matches the paper's error definition (Section V-A).
    """
    prediction = as_tensor(prediction)
    target_array = np.maximum(np.asarray(as_tensor(target).data, dtype=np.float64), epsilon)
    diff = (prediction - Tensor(target_array)).abs()
    return (diff / Tensor(target_array)).mean()


def huber_loss(prediction: Tensor, target: ArrayLike, delta: float = 1.0) -> Tensor:
    """Huber (smooth L1) loss, occasionally useful for robust surrogate fits."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = (diff * diff) * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    mask = (abs_diff.data <= delta).astype(np.float64)
    combined = quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)
    return combined.mean()
