"""Weight initialization schemes for the autodiff modules."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for weight matrices."""
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, appropriate before ReLU activations."""
    fan_in = shape[0] if len(shape) > 0 else 1
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization, commonly used for recurrent weights."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(flat)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return q


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def uniform_embedding(shape: Tuple[int, ...], rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
    """Small uniform initialization for embedding tables."""
    return rng.uniform(-scale, scale, size=shape)
