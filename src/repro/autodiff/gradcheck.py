"""Numerical gradient checking for the autodiff engine.

The DiffTune pipeline relies on the gradients the surrogate produces with
respect to both its weights (phase 3, surrogate training) and its parameter
inputs (phase 4, parameter-table training).  :func:`gradcheck` verifies those
gradients against central finite differences, which is how the autodiff
engine's correctness is established in the test suite and how new operations
should be validated when they are added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor


@dataclass
class GradCheckResult:
    """Outcome of a gradient check for a single input tensor.

    Attributes:
        max_absolute_error: Largest absolute difference between analytic and
            numeric gradient entries.
        max_relative_error: Largest relative difference (absolute difference
            over the larger of the two magnitudes, with a floor).
        analytic: The gradient produced by reverse-mode differentiation.
        numeric: The gradient estimated by central finite differences.
    """

    max_absolute_error: float
    max_relative_error: float
    analytic: np.ndarray
    numeric: np.ndarray

    def passed(self, absolute_tolerance: float = 1e-5,
               relative_tolerance: float = 1e-3) -> bool:
        """Whether the analytic gradient matches the numeric estimate."""
        return (self.max_absolute_error <= absolute_tolerance
                or self.max_relative_error <= relative_tolerance)


def numeric_gradient(function: Callable[[Sequence[Tensor]], Tensor],
                     inputs: Sequence[Tensor], index: int,
                     epsilon: float = 1e-6) -> np.ndarray:
    """Estimate ``d function(inputs) / d inputs[index]`` by central differences.

    Args:
        function: Maps the input tensors to a scalar :class:`Tensor`.
        inputs: The input tensors; only ``inputs[index]`` is perturbed.
        index: Which input to differentiate with respect to.
        epsilon: Perturbation step.

    Returns:
        An array with the same shape as ``inputs[index].data``.
    """
    target = inputs[index]
    gradient = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    flat_gradient = gradient.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        plus = float(function(inputs).data.sum())
        flat[position] = original - epsilon
        minus = float(function(inputs).data.sum())
        flat[position] = original
        flat_gradient[position] = (plus - minus) / (2.0 * epsilon)
    return gradient


def analytic_gradients(function: Callable[[Sequence[Tensor]], Tensor],
                       inputs: Sequence[Tensor]) -> List[Optional[np.ndarray]]:
    """Compute reverse-mode gradients of ``function`` for every input tensor."""
    for tensor in inputs:
        tensor.zero_grad()
    output = function(inputs)
    summed = output.sum() if output.size > 1 else output
    summed.backward()
    return [None if tensor.grad is None else tensor.grad.copy() for tensor in inputs]


def gradcheck(function: Callable[[Sequence[Tensor]], Tensor],
              inputs: Sequence[Tensor], epsilon: float = 1e-6
              ) -> Dict[int, GradCheckResult]:
    """Compare analytic and numeric gradients for every differentiable input.

    Args:
        function: Maps the input tensors to a (scalar or reducible) tensor.
            The function must be deterministic and must rebuild its graph on
            every call (i.e. be a pure function of the inputs).
        inputs: Input tensors.  Only those with ``requires_grad=True`` are
            checked.
        epsilon: Finite-difference step.

    Returns:
        A mapping from input index to its :class:`GradCheckResult`.
    """
    analytic = analytic_gradients(function, inputs)
    results: Dict[int, GradCheckResult] = {}
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic_grad = analytic[index]
        if analytic_grad is None:
            analytic_grad = np.zeros_like(tensor.data)
        numeric = numeric_gradient(function, inputs, index, epsilon=epsilon)
        absolute = np.abs(analytic_grad - numeric)
        denominator = np.maximum(np.maximum(np.abs(analytic_grad), np.abs(numeric)), 1e-8)
        relative = absolute / denominator
        results[index] = GradCheckResult(
            max_absolute_error=float(absolute.max()) if absolute.size else 0.0,
            max_relative_error=float(relative.max()) if relative.size else 0.0,
            analytic=analytic_grad,
            numeric=numeric,
        )
    return results


def assert_gradients_close(function: Callable[[Sequence[Tensor]], Tensor],
                           inputs: Sequence[Tensor], epsilon: float = 1e-6,
                           absolute_tolerance: float = 1e-5,
                           relative_tolerance: float = 1e-3) -> None:
    """Raise :class:`AssertionError` if any checked gradient disagrees.

    Convenience wrapper used by the test suite; failure messages include the
    offending input index and the observed errors.
    """
    results = gradcheck(function, inputs, epsilon=epsilon)
    failures = []
    for index, result in results.items():
        if not result.passed(absolute_tolerance, relative_tolerance):
            failures.append(
                f"input {index}: max abs err {result.max_absolute_error:.3e}, "
                f"max rel err {result.max_relative_error:.3e}")
    if failures:
        raise AssertionError("gradient check failed: " + "; ".join(failures))
