"""Instruction operands: registers, immediates, and memory references."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.isa.registers import canonical_register, register_by_name


class Operand:
    """Base class for instruction operands."""

    def read_registers(self) -> Tuple[str, ...]:
        """Canonical register names read when this operand is a source."""
        return ()

    def written_registers(self) -> Tuple[str, ...]:
        """Canonical register names written when this operand is a destination."""
        return ()

    def address_registers(self) -> Tuple[str, ...]:
        """Canonical register names used for address generation (memory only)."""
        return ()

    def to_assembly(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class RegisterOperand(Operand):
    """A register operand, e.g. ``%eax``."""

    name: str

    def __post_init__(self) -> None:
        # Validate eagerly so bad register names fail at construction time.
        register_by_name(self.name)

    @property
    def canonical(self) -> str:
        return canonical_register(self.name)

    def read_registers(self) -> Tuple[str, ...]:
        return (self.canonical,)

    def written_registers(self) -> Tuple[str, ...]:
        return (self.canonical,)

    def to_assembly(self) -> str:
        return f"%{self.name.lstrip('%')}"

    def __str__(self) -> str:
        return self.to_assembly()


@dataclass(frozen=True)
class ImmediateOperand(Operand):
    """An immediate constant operand, e.g. ``$5``."""

    value: int = 0

    def to_assembly(self) -> str:
        return f"${self.value}"

    def __str__(self) -> str:
        return self.to_assembly()


@dataclass(frozen=True)
class MemoryOperand(Operand):
    """A memory reference ``disp(base, index, scale)`` in AT&T syntax.

    The simulators treat the *address expression* (displacement, base, index,
    scale) as the identity of the memory location for store-to-load dependency
    tracking, matching the modeling granularity of basic-block simulators.
    """

    displacement: int = 0
    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.base is not None:
            register_by_name(self.base)
        if self.index is not None:
            register_by_name(self.index)
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid memory scale: {self.scale}")

    def address_registers(self) -> Tuple[str, ...]:
        registers = []
        if self.base is not None:
            registers.append(canonical_register(self.base))
        if self.index is not None:
            registers.append(canonical_register(self.index))
        return tuple(registers)

    def read_registers(self) -> Tuple[str, ...]:
        # Reading *through* a memory operand reads the address registers; the
        # memory value itself is tracked separately by the load/store unit.
        return self.address_registers()

    def written_registers(self) -> Tuple[str, ...]:
        # Writing to memory does not write any register, but still needs the
        # address registers as inputs; the instruction handles that via
        # address_registers().
        return ()

    def location_key(self) -> Tuple[int, Optional[str], Optional[str], int]:
        """A hashable identity for the referenced location (syntactic)."""
        base = canonical_register(self.base) if self.base else None
        index = canonical_register(self.index) if self.index else None
        return (self.displacement, base, index, self.scale)

    def to_assembly(self) -> str:
        inner = []
        if self.base is not None:
            inner.append(f"%{self.base}")
        if self.index is not None:
            inner.append(f"%{self.index}")
            inner.append(str(self.scale))
        elif self.scale != 1:
            inner.append("")
            inner.append(str(self.scale))
        inside = ",".join(inner)
        displacement = str(self.displacement) if self.displacement else ""
        if inside:
            return f"{displacement}({inside})"
        return f"{displacement or 0}"

    def __str__(self) -> str:
        return self.to_assembly()
