"""Ithemal-style canonicalization of basic blocks into token streams.

The DiffTune surrogate (Section IV, Figure 3 of the paper) consumes each
instruction as a token sequence::

    ( opcode <S> source-tokens... <D> destination-tokens... <E> )

where register operands map to register tokens, immediates map to a shared
``CONST`` token, and memory operands map to a ``MEM`` token followed by their
address-register tokens.  A :class:`TokenVocabulary` assigns stable integer
ids to every token so the surrogate's embedding table can look them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.registers import REGISTERS

#: Structural marker tokens used by the canonicalization.
MARKER_TOKENS: Tuple[str, ...] = ("<BLOCK>", "<S>", "<D>", "<E>", "CONST", "MEM", "<UNK>")


class TokenVocabulary:
    """Maps canonicalization tokens (opcodes, registers, markers) to ids."""

    def __init__(self, opcode_table: Optional[OpcodeTable] = None) -> None:
        self.opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in MARKER_TOKENS:
            self._intern(token)
        for register_name in sorted(REGISTERS):
            self._intern(f"REG:{REGISTERS[register_name].canonical}")
        for opcode in self.opcode_table:
            self._intern(f"OP:{opcode.name}")

    def _intern(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def token_id(self, token: str) -> int:
        """Return the id of ``token``, falling back to ``<UNK>`` if unseen."""
        return self._token_to_id.get(token, self._token_to_id["<UNK>"])

    def token(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def opcode_token_id(self, opcode_name: str) -> int:
        return self.token_id(f"OP:{opcode_name}")

    def register_token_id(self, canonical_register: str) -> int:
        return self.token_id(f"REG:{canonical_register}")


@dataclass(frozen=True)
class CanonicalInstruction:
    """Token-id sequence for one instruction plus its opcode index."""

    token_ids: Tuple[int, ...]
    opcode_index: int
    opcode_name: str


def canonicalize_instruction(instruction: Instruction,
                             vocabulary: TokenVocabulary) -> CanonicalInstruction:
    """Canonicalize one instruction into its surrogate token-id sequence."""
    tokens: List[int] = [vocabulary.opcode_token_id(instruction.opcode.name)]
    tokens.append(vocabulary.token_id("<S>"))
    destination = instruction.operands[-1] if instruction.operands else None
    sources = instruction.operands[:-1] if len(instruction.operands) > 1 else ()
    # Single-operand forms are both source and destination.
    if len(instruction.operands) == 1:
        sources = instruction.operands

    def emit(operand) -> None:
        if isinstance(operand, RegisterOperand):
            tokens.append(vocabulary.register_token_id(operand.canonical))
        elif isinstance(operand, ImmediateOperand):
            tokens.append(vocabulary.token_id("CONST"))
        elif isinstance(operand, MemoryOperand):
            tokens.append(vocabulary.token_id("MEM"))
            for register in operand.address_registers():
                tokens.append(vocabulary.register_token_id(register))

    for operand in sources:
        emit(operand)
    tokens.append(vocabulary.token_id("<D>"))
    if destination is not None:
        emit(destination)
    tokens.append(vocabulary.token_id("<E>"))
    opcode_index = vocabulary.opcode_table.index_of(instruction.opcode.name)
    return CanonicalInstruction(token_ids=tuple(tokens), opcode_index=opcode_index,
                                opcode_name=instruction.opcode.name)


def canonicalize_block(block: BasicBlock,
                       vocabulary: TokenVocabulary) -> List[CanonicalInstruction]:
    """Canonicalize every instruction of a basic block."""
    return [canonicalize_instruction(instruction, vocabulary) for instruction in block]
