"""The opcode universe used by the simulators and the dataset generator.

Opcodes are named in LLVM's style — mnemonic, operand width, operand form —
for example ``ADD32rr`` (register-register 32-bit add), ``ADD32mr`` (add a
register into memory) or ``PUSH64r``.  Each opcode carries the structural
metadata the simulators need:

* how many explicit source/destination operands it has and of which kind,
* whether it reads and/or writes memory,
* its :class:`UopClass`, a coarse execution-resource class used by the target
  descriptions (`repro.targets`) to derive default latencies, port maps and
  micro-op counts,
* whether a register-register form can act as a *zero idiom* (``xor %eax,
  %eax``), which the reference hardware model dispatches with zero latency.

The default table built by :func:`build_default_opcode_table` contains on the
order of 800 opcodes, mirroring the 837-opcode vocabulary of the BHive dataset
used in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class OperandForm(str, enum.Enum):
    """Encoding of an opcode's explicit operand shapes (LLVM suffix style)."""

    RR = "rr"    # reg (src), reg (src+dst)
    RI = "ri"    # imm (src), reg (src+dst)
    RM = "rm"    # mem (src), reg (src+dst)           -- load + op
    MR = "mr"    # reg (src), mem (src+dst)           -- load + op + store
    MI = "mi"    # imm (src), mem (src+dst)           -- load + op + store
    R = "r"      # single reg operand
    M = "m"      # single mem operand
    I = "i"      # single immediate operand
    RRI = "rri"  # reg, reg, imm (e.g. three-operand imul)


class UopClass(str, enum.Enum):
    """Coarse execution-resource class of an opcode."""

    ALU = "alu"                # simple integer ALU (add, sub, logic, cmp, test)
    MOV = "mov"                # register moves / sign extensions
    SHIFT = "shift"            # shifts and rotates
    MUL = "mul"                # integer multiply
    DIV = "div"                # integer divide
    LEA = "lea"                # address generation
    LOAD = "load"              # pure loads
    STORE = "store"            # pure stores
    PUSH = "push"              # push (store + stack-pointer update)
    POP = "pop"                # pop (load + stack-pointer update)
    CMOV = "cmov"              # conditional moves
    SETCC = "setcc"            # flag-to-register
    VEC_ALU = "vec_alu"        # vector integer/fp add, logic, compare, blend
    VEC_MUL = "vec_mul"        # vector multiply / FMA
    VEC_DIV = "vec_div"        # vector divide / sqrt
    VEC_MOV = "vec_mov"        # vector register moves / loads / stores / shuffles
    CVT = "cvt"                # int<->float conversions
    NOP = "nop"                # no-ops


#: Uop classes whose register-register form zeroes the destination when both
#: operands are the same register (zero idioms on Intel hardware).
_ZERO_IDIOM_MNEMONICS = {"xor", "sub", "pxor", "xorps", "xorpd", "psubb", "psubd"}


@dataclass(frozen=True)
class Opcode:
    """A single opcode with structural metadata.

    Attributes:
        name: LLVM-style opcode name, e.g. ``"ADD32mr"``.
        mnemonic: Assembly mnemonic without width suffix, e.g. ``"add"``.
        form: The operand form (see :class:`OperandForm`).
        width: Operand width in bits.
        uop_class: Coarse execution class used to derive target parameters.
        reads_memory: Whether the instruction loads from memory.
        writes_memory: Whether the instruction stores to memory.
        is_vector: Whether operands are vector registers.
        can_zero_idiom: Whether the rr form with identical operands is a
            dependency-breaking zero idiom on real hardware.
        implicit_uses: Canonical register names read implicitly (e.g. ``rsp``).
        implicit_defs: Canonical register names written implicitly.
    """

    name: str
    mnemonic: str
    form: OperandForm
    width: int
    uop_class: UopClass
    reads_memory: bool = False
    writes_memory: bool = False
    is_vector: bool = False
    can_zero_idiom: bool = False
    implicit_uses: Tuple[str, ...] = ()
    implicit_defs: Tuple[str, ...] = ()

    @property
    def is_load(self) -> bool:
        return self.reads_memory

    @property
    def is_store(self) -> bool:
        return self.writes_memory

    def __str__(self) -> str:
        return self.name


class OpcodeTable:
    """An ordered collection of opcodes with lookup by name.

    The table assigns each opcode a stable integer index used by the parameter
    tables (per-instruction parameter vectors) and by the surrogate's token
    vocabulary.
    """

    def __init__(self, opcodes: Iterable[Opcode]) -> None:
        self._opcodes: List[Opcode] = []
        self._by_name: Dict[str, int] = {}
        for opcode in opcodes:
            self.add(opcode)

    def add(self, opcode: Opcode) -> None:
        if opcode.name in self._by_name:
            raise ValueError(f"duplicate opcode: {opcode.name}")
        self._by_name[opcode.name] = len(self._opcodes)
        self._opcodes.append(opcode)

    def __len__(self) -> int:
        return len(self._opcodes)

    def __iter__(self) -> Iterator[Opcode]:
        return iter(self._opcodes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, key) -> Opcode:
        if isinstance(key, str):
            return self._opcodes[self._by_name[key]]
        return self._opcodes[key]

    def get(self, name: str) -> Optional[Opcode]:
        index = self._by_name.get(name)
        return None if index is None else self._opcodes[index]

    def index_of(self, name: str) -> int:
        """Return the stable integer index of an opcode name."""
        try:
            return self._by_name[name]
        except KeyError as error:
            raise KeyError(f"unknown opcode: {name!r}") from error

    def names(self) -> List[str]:
        return [opcode.name for opcode in self._opcodes]

    def by_class(self, uop_class: UopClass) -> List[Opcode]:
        return [opcode for opcode in self._opcodes if opcode.uop_class == uop_class]


# ----------------------------------------------------------------------
# Default opcode table construction
# ----------------------------------------------------------------------
_WIDTH_SUFFIX = {8: "8", 16: "16", 32: "32", 64: "64"}

_INT_ALU_MNEMONICS = ["add", "sub", "and", "or", "xor", "cmp", "test", "adc", "sbb"]
_INT_SHIFT_MNEMONICS = ["shl", "shr", "sar", "rol", "ror"]
_INT_WIDTHS = [8, 16, 32, 64]
_MAIN_WIDTHS = [16, 32, 64]

_VEC_ALU_MNEMONICS = ["addps", "addpd", "subps", "subpd", "addss", "addsd", "subss", "subsd",
                      "minps", "maxps", "andps", "orps", "xorps", "paddd", "paddq", "psubd",
                      "pand", "por", "pxor", "pcmpeqd", "blendps"]
_VEC_MUL_MNEMONICS = ["mulps", "mulpd", "mulss", "mulsd", "pmulld",
                      "vfmadd213ps", "vfmadd213pd", "vfmadd231ss", "vfmadd231sd"]
_VEC_DIV_MNEMONICS = ["divps", "divpd", "divss", "divsd", "sqrtps", "sqrtpd", "sqrtss", "sqrtsd"]
_VEC_MOV_MNEMONICS = ["movaps", "movups", "movapd", "movdqa", "movdqu", "movss", "movsd",
                      "unpcklps", "shufps", "pshufd", "palignr", "insertps"]
_CVT_MNEMONICS = ["cvtsi2ss", "cvtsi2sd", "cvtss2si", "cvtsd2si", "cvttss2si", "cvttsd2si",
                  "cvtps2pd", "cvtpd2ps"]
_CMOV_CONDITIONS = ["e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns"]
_SETCC_CONDITIONS = ["e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae"]


def _int_forms_for(mnemonic: str) -> List[OperandForm]:
    if mnemonic in ("cmp", "test"):
        # Compare/test do not write a register destination but use the same forms.
        return [OperandForm.RR, OperandForm.RI, OperandForm.RM, OperandForm.MR, OperandForm.MI]
    return [OperandForm.RR, OperandForm.RI, OperandForm.RM, OperandForm.MR, OperandForm.MI]


def build_default_opcode_table() -> OpcodeTable:
    """Build the default ~800-opcode table used throughout the reproduction."""
    opcodes: List[Opcode] = []

    def add(name: str, mnemonic: str, form: OperandForm, width: int, uop_class: UopClass,
            reads_memory: bool = False, writes_memory: bool = False, is_vector: bool = False,
            can_zero_idiom: bool = False, implicit_uses: Tuple[str, ...] = (),
            implicit_defs: Tuple[str, ...] = ()) -> None:
        opcodes.append(Opcode(
            name=name, mnemonic=mnemonic, form=form, width=width, uop_class=uop_class,
            reads_memory=reads_memory, writes_memory=writes_memory, is_vector=is_vector,
            can_zero_idiom=can_zero_idiom, implicit_uses=implicit_uses,
            implicit_defs=implicit_defs))

    # Integer ALU ops in every width and form.
    for mnemonic in _INT_ALU_MNEMONICS:
        for width in _INT_WIDTHS:
            for form in _int_forms_for(mnemonic):
                name = f"{mnemonic.upper()}{_WIDTH_SUFFIX[width]}{form.value}"
                add(name, mnemonic, form, width, UopClass.ALU,
                    reads_memory=form in (OperandForm.RM, OperandForm.MR, OperandForm.MI),
                    writes_memory=form in (OperandForm.MR, OperandForm.MI),
                    can_zero_idiom=(mnemonic in _ZERO_IDIOM_MNEMONICS and form == OperandForm.RR))

    # inc/dec/neg/not: single-operand register and memory forms.
    for mnemonic in ["inc", "dec", "neg", "not"]:
        for width in _INT_WIDTHS:
            add(f"{mnemonic.upper()}{_WIDTH_SUFFIX[width]}r", mnemonic, OperandForm.R, width,
                UopClass.ALU)
            add(f"{mnemonic.upper()}{_WIDTH_SUFFIX[width]}m", mnemonic, OperandForm.M, width,
                UopClass.ALU, reads_memory=True, writes_memory=True)

    # Moves: all forms; register loads and stores come from the rm/mr forms.
    for width in _INT_WIDTHS:
        suffix = _WIDTH_SUFFIX[width]
        add(f"MOV{suffix}rr", "mov", OperandForm.RR, width, UopClass.MOV)
        add(f"MOV{suffix}ri", "mov", OperandForm.RI, width, UopClass.MOV)
        add(f"MOV{suffix}rm", "mov", OperandForm.RM, width, UopClass.LOAD, reads_memory=True)
        add(f"MOV{suffix}mr", "mov", OperandForm.MR, width, UopClass.STORE, writes_memory=True)
        add(f"MOV{suffix}mi", "mov", OperandForm.MI, width, UopClass.STORE, writes_memory=True)

    # Sign/zero extensions between widths.
    for mnemonic, uop_class in [("movsx", UopClass.MOV), ("movzx", UopClass.MOV)]:
        for source_width in (8, 16, 32):
            for dest_width in (16, 32, 64):
                if dest_width <= source_width:
                    continue
                name = f"{mnemonic.upper()}{_WIDTH_SUFFIX[dest_width]}rr{_WIDTH_SUFFIX[source_width]}"
                add(name, mnemonic, OperandForm.RR, dest_width, uop_class)
                name_m = f"{mnemonic.upper()}{_WIDTH_SUFFIX[dest_width]}rm{_WIDTH_SUFFIX[source_width]}"
                add(name_m, mnemonic, OperandForm.RM, dest_width, UopClass.LOAD, reads_memory=True)

    # Shifts and rotates: by immediate and by %cl.
    for mnemonic in _INT_SHIFT_MNEMONICS:
        for width in _INT_WIDTHS:
            suffix = _WIDTH_SUFFIX[width]
            add(f"{mnemonic.upper()}{suffix}ri", mnemonic, OperandForm.RI, width, UopClass.SHIFT)
            add(f"{mnemonic.upper()}{suffix}r1", mnemonic, OperandForm.R, width, UopClass.SHIFT)
            add(f"{mnemonic.upper()}{suffix}rCL", mnemonic, OperandForm.R, width, UopClass.SHIFT,
                implicit_uses=("rcx",))
            add(f"{mnemonic.upper()}{suffix}mi", mnemonic, OperandForm.MI, width, UopClass.SHIFT,
                reads_memory=True, writes_memory=True)

    # Integer multiply and divide.
    for width in _MAIN_WIDTHS:
        suffix = _WIDTH_SUFFIX[width]
        add(f"IMUL{suffix}rr", "imul", OperandForm.RR, width, UopClass.MUL)
        add(f"IMUL{suffix}rm", "imul", OperandForm.RM, width, UopClass.MUL, reads_memory=True)
        add(f"IMUL{suffix}rri", "imul", OperandForm.RRI, width, UopClass.MUL)
        add(f"MUL{suffix}r", "mul", OperandForm.R, width, UopClass.MUL,
            implicit_uses=("rax",), implicit_defs=("rax", "rdx"))
        add(f"DIV{suffix}r", "div", OperandForm.R, width, UopClass.DIV,
            implicit_uses=("rax", "rdx"), implicit_defs=("rax", "rdx"))
        add(f"IDIV{suffix}r", "idiv", OperandForm.R, width, UopClass.DIV,
            implicit_uses=("rax", "rdx"), implicit_defs=("rax", "rdx"))

    # LEA.
    for width in (32, 64):
        add(f"LEA{_WIDTH_SUFFIX[width]}r", "lea", OperandForm.RM, width, UopClass.LEA)

    # Stack operations.
    add("PUSH64r", "push", OperandForm.R, 64, UopClass.PUSH, writes_memory=True,
        implicit_uses=("rsp",), implicit_defs=("rsp",))
    add("PUSH64i", "push", OperandForm.I, 64, UopClass.PUSH, writes_memory=True,
        implicit_uses=("rsp",), implicit_defs=("rsp",))
    add("POP64r", "pop", OperandForm.R, 64, UopClass.POP, reads_memory=True,
        implicit_uses=("rsp",), implicit_defs=("rsp",))

    # Conditional moves and set-on-condition.
    for condition in _CMOV_CONDITIONS:
        for width in _MAIN_WIDTHS:
            suffix = _WIDTH_SUFFIX[width]
            add(f"CMOV{condition.upper()}{suffix}rr", f"cmov{condition}", OperandForm.RR, width,
                UopClass.CMOV, implicit_uses=("rflags",))
            add(f"CMOV{condition.upper()}{suffix}rm", f"cmov{condition}", OperandForm.RM, width,
                UopClass.CMOV, reads_memory=True, implicit_uses=("rflags",))
    for condition in _SETCC_CONDITIONS:
        add(f"SET{condition.upper()}r", f"set{condition}", OperandForm.R, 8, UopClass.SETCC,
            implicit_uses=("rflags",))

    # Vector arithmetic (xmm-width scalar/packed SSE-style and a ymm AVX subset).
    for mnemonic in _VEC_ALU_MNEMONICS:
        add(f"{mnemonic.upper()}rr", mnemonic, OperandForm.RR, 128, UopClass.VEC_ALU,
            is_vector=True, can_zero_idiom=mnemonic in _ZERO_IDIOM_MNEMONICS)
        add(f"{mnemonic.upper()}rm", mnemonic, OperandForm.RM, 128, UopClass.VEC_ALU,
            is_vector=True, reads_memory=True)
        add(f"V{mnemonic.upper()}Yrr", f"v{mnemonic}", OperandForm.RR, 256, UopClass.VEC_ALU,
            is_vector=True, can_zero_idiom=mnemonic in _ZERO_IDIOM_MNEMONICS)
    for mnemonic in _VEC_MUL_MNEMONICS:
        add(f"{mnemonic.upper()}rr", mnemonic, OperandForm.RR, 128, UopClass.VEC_MUL, is_vector=True)
        add(f"{mnemonic.upper()}rm", mnemonic, OperandForm.RM, 128, UopClass.VEC_MUL,
            is_vector=True, reads_memory=True)
    for mnemonic in _VEC_DIV_MNEMONICS:
        add(f"{mnemonic.upper()}rr", mnemonic, OperandForm.RR, 128, UopClass.VEC_DIV, is_vector=True)
        add(f"{mnemonic.upper()}rm", mnemonic, OperandForm.RM, 128, UopClass.VEC_DIV,
            is_vector=True, reads_memory=True)
    for mnemonic in _VEC_MOV_MNEMONICS:
        add(f"{mnemonic.upper()}rr", mnemonic, OperandForm.RR, 128, UopClass.VEC_MOV, is_vector=True)
        add(f"{mnemonic.upper()}rm", mnemonic, OperandForm.RM, 128, UopClass.VEC_MOV,
            is_vector=True, reads_memory=True)
        add(f"{mnemonic.upper()}mr", mnemonic, OperandForm.MR, 128, UopClass.VEC_MOV,
            is_vector=True, writes_memory=True)
    for mnemonic in _CVT_MNEMONICS:
        add(f"{mnemonic.upper()}rr", mnemonic, OperandForm.RR, 128, UopClass.CVT, is_vector=True)
        add(f"{mnemonic.upper()}rm", mnemonic, OperandForm.RM, 128, UopClass.CVT,
            is_vector=True, reads_memory=True)

    # VZEROUPPER and NOP.
    add("VZEROUPPER", "vzeroupper", OperandForm.I, 256, UopClass.NOP, is_vector=True)
    add("NOOP", "nop", OperandForm.I, 64, UopClass.NOP)

    return OpcodeTable(opcodes)


#: A module-level default table.  Building it is cheap (milliseconds) but
#: callers that care about identity should reuse this instance.
DEFAULT_OPCODE_TABLE = build_default_opcode_table()
