"""The x86-64 register file (the subset basic-block simulators need).

Registers are modeled structurally: each register has a name, a width in bits,
and a *canonical* architectural register (e.g. ``eax``, ``ax`` and ``al`` all
alias ``rax``).  Dependency analysis in the simulators is done on canonical
registers, which matches how llvm-mca tracks register reads and writes for its
register-renaming model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Register:
    """An architectural register.

    Attributes:
        name: Assembly name without the ``%`` sigil (e.g. ``"rax"``).
        width: Width in bits (8, 16, 32, 64, 128, or 256).
        canonical: Name of the full-width register this register aliases
            (``"rax"`` for ``"eax"``; vector registers alias their ymm form).
        is_vector: Whether this is an xmm/ymm vector register.
    """

    name: str
    width: int
    canonical: str
    is_vector: bool = False

    def __str__(self) -> str:
        return f"%{self.name}"


_GPR_FAMILIES: List[Tuple[str, str, str, str]] = [
    # (64-bit, 32-bit, 16-bit, 8-bit)
    ("rax", "eax", "ax", "al"),
    ("rbx", "ebx", "bx", "bl"),
    ("rcx", "ecx", "cx", "cl"),
    ("rdx", "edx", "dx", "dl"),
    ("rsi", "esi", "si", "sil"),
    ("rdi", "edi", "di", "dil"),
    ("rbp", "ebp", "bp", "bpl"),
    ("rsp", "esp", "sp", "spl"),
    ("r8", "r8d", "r8w", "r8b"),
    ("r9", "r9d", "r9w", "r9b"),
    ("r10", "r10d", "r10w", "r10b"),
    ("r11", "r11d", "r11w", "r11b"),
    ("r12", "r12d", "r12w", "r12b"),
    ("r13", "r13d", "r13w", "r13b"),
    ("r14", "r14d", "r14w", "r14b"),
    ("r15", "r15d", "r15w", "r15b"),
]

_NUM_VECTOR_REGISTERS = 16


def _build_register_table() -> Dict[str, Register]:
    table: Dict[str, Register] = {}
    widths = (64, 32, 16, 8)
    for family in _GPR_FAMILIES:
        canonical = family[0]
        for width, name in zip(widths, family):
            table[name] = Register(name=name, width=width, canonical=canonical)
    for index in range(_NUM_VECTOR_REGISTERS):
        canonical = f"ymm{index}"
        table[f"xmm{index}"] = Register(
            name=f"xmm{index}", width=128, canonical=canonical, is_vector=True)
        table[f"ymm{index}"] = Register(
            name=f"ymm{index}", width=256, canonical=canonical, is_vector=True)
    # Flags and instruction pointer (structural only).
    table["rflags"] = Register(name="rflags", width=64, canonical="rflags")
    table["rip"] = Register(name="rip", width=64, canonical="rip")
    return table


REGISTERS: Dict[str, Register] = _build_register_table()

#: General-purpose 64-bit register names, convenient for block generators.
GPR64: List[str] = [family[0] for family in _GPR_FAMILIES]
#: General-purpose 32-bit register names.
GPR32: List[str] = [family[1] for family in _GPR_FAMILIES]
#: General-purpose 16-bit register names.
GPR16: List[str] = [family[2] for family in _GPR_FAMILIES]
#: General-purpose 8-bit register names.
GPR8: List[str] = [family[3] for family in _GPR_FAMILIES]
#: Vector register names.
XMM: List[str] = [f"xmm{index}" for index in range(_NUM_VECTOR_REGISTERS)]
YMM: List[str] = [f"ymm{index}" for index in range(_NUM_VECTOR_REGISTERS)]

#: GPR names for a given operand width in bits.
GPR_BY_WIDTH: Dict[int, List[str]] = {64: GPR64, 32: GPR32, 16: GPR16, 8: GPR8}


def register_by_name(name: str) -> Register:
    """Look up a register by assembly name (with or without the ``%`` sigil)."""
    clean = name.lstrip("%").lower()
    try:
        return REGISTERS[clean]
    except KeyError as error:
        raise KeyError(f"unknown register: {name!r}") from error


def canonical_register(name: str) -> str:
    """Return the canonical (full-width) register name that ``name`` aliases."""
    return register_by_name(name).canonical


def registers_for_width(width: int, vector: bool = False) -> List[str]:
    """Return the register names available at a given width."""
    if vector:
        if width == 128:
            return list(XMM)
        if width == 256:
            return list(YMM)
        raise ValueError(f"unsupported vector width: {width}")
    try:
        return list(GPR_BY_WIDTH[width])
    except KeyError as error:
        raise ValueError(f"unsupported general-purpose width: {width}") from error
