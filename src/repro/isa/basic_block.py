"""Basic blocks: straight-line sequences of instructions.

A :class:`BasicBlock` is the unit of simulation and measurement throughout
the reproduction, exactly as in llvm-mca and the BHive dataset: a sequence of
assembly instructions with no branches, jumps, or loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import UopClass


@dataclass(frozen=True)
class BasicBlock:
    """An immutable straight-line sequence of instructions.

    Attributes:
        instructions: The instructions in program order.
        source_applications: Optional labels naming the applications this
            block was drawn from (mirrors BHive's per-application grouping —
            a block may belong to several applications).
    """

    instructions: Tuple[Instruction, ...]
    source_applications: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.instructions, tuple):
            object.__setattr__(self, "instructions", tuple(self.instructions))
        if not isinstance(self.source_applications, tuple):
            object.__setattr__(self, "source_applications", tuple(self.source_applications))
        if len(self.instructions) == 0:
            raise ValueError("a basic block must contain at least one instruction")

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # ------------------------------------------------------------------
    # Structural summaries
    # ------------------------------------------------------------------
    def opcode_names(self) -> List[str]:
        return [instruction.opcode.name for instruction in self.instructions]

    def unique_opcode_names(self) -> Set[str]:
        return set(self.opcode_names())

    def num_loads(self) -> int:
        return sum(1 for instruction in self.instructions if instruction.is_load)

    def num_stores(self) -> int:
        return sum(1 for instruction in self.instructions if instruction.is_store)

    def num_vector_instructions(self) -> int:
        return sum(1 for instruction in self.instructions if instruction.is_vector)

    def num_scalar_arithmetic(self) -> int:
        scalar_classes = {UopClass.ALU, UopClass.SHIFT, UopClass.MUL, UopClass.DIV,
                          UopClass.LEA, UopClass.CMOV, UopClass.SETCC}
        return sum(1 for instruction in self.instructions
                   if instruction.opcode.uop_class in scalar_classes
                   and not instruction.opcode.is_vector)

    def to_assembly(self) -> str:
        """Render the block as newline-separated AT&T assembly."""
        return "\n".join(instruction.to_assembly() for instruction in self.instructions)

    def __str__(self) -> str:
        return self.to_assembly()

    def structural_key(self) -> Tuple[str, ...]:
        """A hashable identity used to keep dataset splits block-wise disjoint.

        Memoized on the instance: the key is pure text rendering of the
        immutable instruction tuple, and hot paths (the block-compilation
        cache, dataset splits) look it up far more often than blocks are
        created.
        """
        key = self.__dict__.get("_structural_key")
        if key is None:
            key = tuple(instruction.to_assembly()
                        for instruction in self.instructions)
            object.__setattr__(self, "_structural_key", key)
        return key

    # ------------------------------------------------------------------
    # Dependency analysis helpers
    # ------------------------------------------------------------------
    def register_dependencies(self) -> List[Tuple[int, int, str]]:
        """Use-def register dependencies within one iteration of the block.

        Returns a list of ``(producer_index, consumer_index, register)``
        triples where the consumer reads a register last written by the
        producer, considering instructions in program order.
        """
        dependencies: List[Tuple[int, int, str]] = []
        last_writer: Dict[str, int] = {}
        for index, instruction in enumerate(self.instructions):
            for register in instruction.source_registers():
                if register in last_writer:
                    dependencies.append((last_writer[register], index, register))
            for register in instruction.destination_registers():
                last_writer[register] = index
        return dependencies

    def loop_carried_registers(self) -> Set[str]:
        """Registers read before being written (live-in under loop execution).

        BHive measures blocks executed repeatedly in a loop, so a register
        that is read at the top of the block and written at the bottom forms a
        loop-carried dependency chain; the simulators model this by unrolling.
        """
        read_first: Set[str] = set()
        written: Set[str] = set()
        for instruction in self.instructions:
            for register in instruction.source_registers():
                if register not in written:
                    read_first.add(register)
            written.update(instruction.destination_registers())
        return read_first & written
