"""Instructions: an opcode plus concrete operands.

An :class:`Instruction` knows, structurally, which canonical registers it
reads and writes (explicit operands plus implicit uses/defs from the opcode),
whether it loads or stores, and the identity of the memory location it
touches.  That is all the information the simulators need to build use-def
dependency chains and to model the load/store unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.isa.opcodes import Opcode, OperandForm, UopClass
from repro.isa.operands import ImmediateOperand, MemoryOperand, Operand, RegisterOperand


@dataclass(frozen=True)
class Instruction:
    """A single assembly instruction.

    Operands are stored in AT&T order: sources first, destination last.  For
    two-operand forms such as ``addl %eax, %ebx`` the destination register is
    also a source (read-modify-write), which the dependency analysis accounts
    for.
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.opcode.reads_memory

    @property
    def is_store(self) -> bool:
        return self.opcode.writes_memory

    @property
    def is_vector(self) -> bool:
        return self.opcode.is_vector

    def memory_operand(self) -> Optional[MemoryOperand]:
        """Return the memory operand, if any."""
        for operand in self.operands:
            if isinstance(operand, MemoryOperand):
                return operand
        return None

    def register_operands(self) -> List[RegisterOperand]:
        return [operand for operand in self.operands if isinstance(operand, RegisterOperand)]

    def is_zero_idiom(self) -> bool:
        """Whether this instruction is a dependency-breaking zero idiom.

        True for register-register forms of xor-like opcodes whose two
        register operands are the same architectural register (e.g.
        ``xorl %r13d, %r13d``).
        """
        if not self.opcode.can_zero_idiom:
            return False
        registers = self.register_operands()
        if len(registers) != 2:
            return False
        return registers[0].canonical == registers[1].canonical

    # ------------------------------------------------------------------
    # Dependency information
    # ------------------------------------------------------------------
    def _destination_operand(self) -> Optional[Operand]:
        """The destination operand under AT&T ordering, if the form has one."""
        form = self.opcode.form
        if not self.operands:
            return None
        if form in (OperandForm.RR, OperandForm.RI, OperandForm.RM, OperandForm.MR,
                    OperandForm.MI, OperandForm.RRI):
            return self.operands[-1]
        if form in (OperandForm.R, OperandForm.M):
            return self.operands[0]
        return None

    def source_registers(self) -> Tuple[str, ...]:
        """Canonical registers read by this instruction (explicit + implicit)."""
        reads: List[str] = []
        form = self.opcode.form
        destination = self._destination_operand()
        for operand in self.operands:
            if isinstance(operand, RegisterOperand):
                is_destination = operand is destination
                is_read_modify_write = self._destination_is_also_source()
                if not is_destination or is_read_modify_write:
                    reads.extend(operand.read_registers())
            elif isinstance(operand, MemoryOperand):
                reads.extend(operand.address_registers())
        reads.extend(self.opcode.implicit_uses)
        # A pure register write of a sub-register (32-bit writes zero-extend,
        # but 8/16-bit writes merge) would also read the destination; that
        # detail is beyond the simulators' modeling granularity, so we ignore
        # it, exactly as llvm-mca's scheduling model does.
        return tuple(dict.fromkeys(reads))

    def destination_registers(self) -> Tuple[str, ...]:
        """Canonical registers written by this instruction (explicit + implicit)."""
        writes: List[str] = []
        destination = self._destination_operand()
        if isinstance(destination, RegisterOperand) and self._writes_register_destination():
            writes.extend(destination.written_registers())
        writes.extend(self.opcode.implicit_defs)
        if self._writes_flags():
            writes.append("rflags")
        return tuple(dict.fromkeys(writes))

    def _destination_is_also_source(self) -> bool:
        """Whether the destination operand is also read (read-modify-write)."""
        mnemonic = self.opcode.mnemonic
        if mnemonic in ("mov", "movaps", "movups", "movapd", "movdqa", "movdqu",
                        "movss", "movsd", "movsx", "movzx", "lea", "pop"):
            return False
        if self.opcode.uop_class in (UopClass.CMOV,):
            return True
        if self.opcode.uop_class in (UopClass.SETCC, UopClass.CVT, UopClass.LOAD,
                                     UopClass.STORE, UopClass.NOP):
            return False
        return True

    def _writes_register_destination(self) -> bool:
        """Whether the destination operand (if a register) is actually written."""
        if self.opcode.mnemonic in ("cmp", "test", "push"):
            return False
        return True

    def _writes_flags(self) -> bool:
        return self.opcode.uop_class in (UopClass.ALU, UopClass.SHIFT, UopClass.MUL,
                                         UopClass.DIV) or self.opcode.mnemonic in ("cmp", "test")

    def memory_location(self) -> Optional[Tuple[int, Optional[str], Optional[str], int]]:
        """Identity of the memory location touched, for store-to-load forwarding."""
        memory = self.memory_operand()
        if memory is None:
            if self.opcode.uop_class in (UopClass.PUSH, UopClass.POP):
                # Stack accesses through the implicit stack pointer.
                return (0, "rsp", None, 1)
            return None
        return memory.location_key()

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def to_assembly(self) -> str:
        """Render the instruction in AT&T-style assembly."""
        from repro.isa.parser import format_instruction

        return format_instruction(self)

    def __str__(self) -> str:
        return self.to_assembly()
