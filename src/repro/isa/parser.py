"""AT&T-style assembly parsing and formatting.

The parser handles the subset of AT&T x86-64 syntax that appears in basic
blocks: mnemonics with optional width suffixes, register operands (``%rax``),
immediates (``$5``), and memory references (``16(%rsp)``,
``8(%rax,%rbx,4)``).  It resolves each textual instruction to an opcode in an
:class:`~repro.isa.opcodes.OpcodeTable` by reconstructing the LLVM-style
opcode name from the mnemonic, operand width, and operand form.

The formatter is the inverse: it renders :class:`Instruction` objects back to
assembly text, which the dataset serialization and the examples rely on.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (DEFAULT_OPCODE_TABLE, Opcode, OpcodeTable, OperandForm, UopClass)
from repro.isa.operands import ImmediateOperand, MemoryOperand, Operand, RegisterOperand
from repro.isa.registers import REGISTERS, register_by_name


class ParseError(ValueError):
    """Raised when assembly text cannot be parsed or matched to an opcode."""


_WIDTH_BY_SUFFIX = {"b": 8, "w": 16, "l": 32, "q": 64}
_SUFFIX_BY_WIDTH = {8: "b", 16: "w", 32: "l", 64: "q"}

_MEMORY_PATTERN = re.compile(
    r"^(?P<disp>-?\d*)\((?P<inner>[^)]*)\)$")


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    if not text:
        raise ParseError("empty operand")
    if text.startswith("$"):
        try:
            value = int(text[1:], 0)
        except ValueError as error:
            raise ParseError(f"invalid immediate: {text!r}") from error
        return ImmediateOperand(value=value)
    if text.startswith("%"):
        name = text[1:].lower()
        if name not in REGISTERS:
            raise ParseError(f"unknown register: {text!r}")
        return RegisterOperand(name=name)
    match = _MEMORY_PATTERN.match(text)
    if match:
        displacement = int(match.group("disp")) if match.group("disp") else 0
        inner = [part.strip() for part in match.group("inner").split(",")]
        base = inner[0][1:].lower() if inner and inner[0].startswith("%") else None
        index = None
        scale = 1
        if len(inner) >= 2 and inner[1]:
            if not inner[1].startswith("%"):
                raise ParseError(f"invalid index register in {text!r}")
            index = inner[1][1:].lower()
        if len(inner) >= 3 and inner[2]:
            scale = int(inner[2])
        return MemoryOperand(displacement=displacement, base=base, index=index, scale=scale)
    # Bare displacement, e.g. "16" as an absolute address.
    try:
        return MemoryOperand(displacement=int(text, 0))
    except ValueError as error:
        raise ParseError(f"unparseable operand: {text!r}") from error


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = ""
    for character in text:
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
        if character == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += character
    if current.strip():
        parts.append(current)
    return [part.strip() for part in parts if part.strip()]


def _operand_form(operands: Sequence[Operand]) -> Tuple[str, Optional[OperandForm]]:
    """Classify the operand list into a form code string and OperandForm."""
    kinds = "".join(
        "r" if isinstance(op, RegisterOperand)
        else "i" if isinstance(op, ImmediateOperand)
        else "m"
        for op in operands)
    # AT&T order is source(s) then destination; LLVM names use destination-first
    # form codes, so reverse the kind string.
    reversed_kinds = kinds[::-1]
    form_map = {
        "rr": OperandForm.RR,
        "ri": OperandForm.RI,
        "rm": OperandForm.RM,
        "mr": OperandForm.MR,
        "mi": OperandForm.MI,
        "r": OperandForm.R,
        "m": OperandForm.M,
        "i": OperandForm.I,
        "rri": OperandForm.RRI,
        "": OperandForm.I,
    }
    return reversed_kinds, form_map.get(reversed_kinds)


def _mnemonic_and_width(mnemonic: str) -> Tuple[str, Optional[int]]:
    """Strip an AT&T width suffix from a mnemonic when present."""
    lowered = mnemonic.lower()
    # Vector / SSE mnemonics and a few scalar ones end in letters that look
    # like width suffixes but are part of the name (movss, addsd, paddd, ...).
    non_suffixed = {"movss", "movsd", "addss", "addsd", "subss", "subsd", "mulss", "mulsd",
                    "divss", "divsd", "sqrtss", "sqrtsd", "cmovb", "cmovbe", "cmovl",
                    "vfmadd231sd", "vfmadd213pd", "lea", "paddq", "paddd", "psubd",
                    "pmulld", "pand", "pcmpeqd", "cvtsi2sd", "cvtpd2ps", "setb", "setl",
                    "pushq", "popq"}
    if lowered in ("pushq", "popq"):
        return lowered[:-1], 64
    if lowered in non_suffixed and lowered not in ("pushq", "popq"):
        return lowered, None
    if len(lowered) > 2 and lowered[-1] in _WIDTH_BY_SUFFIX:
        candidate_base = lowered[:-1]
        # Only strip when the base is a known scalar mnemonic; this avoids
        # mangling names like "shufps".
        scalar_bases = {"add", "sub", "and", "or", "xor", "cmp", "test", "adc", "sbb", "mov",
                        "inc", "dec", "neg", "not", "shl", "shr", "sar", "rol", "ror", "imul",
                        "mul", "div", "idiv", "lea", "push", "pop"}
        if candidate_base in scalar_bases:
            return candidate_base, _WIDTH_BY_SUFFIX[lowered[-1]]
    return lowered, None


def _infer_width(operands: Sequence[Operand], fallback: Optional[int]) -> int:
    for operand in operands:
        if isinstance(operand, RegisterOperand):
            register = register_by_name(operand.name)
            if not register.is_vector:
                return register.width
            return register.width
    return fallback or 64


_WIDTH_NAME = {8: "8", 16: "16", 32: "32", 64: "64"}


def _candidate_opcode_names(mnemonic: str, width: int, form_code: str,
                            operands: Sequence[Operand]) -> List[str]:
    upper = mnemonic.upper()
    candidates = []
    is_vector = any(isinstance(op, RegisterOperand) and register_by_name(op.name).is_vector
                    for op in operands)
    if is_vector or width in (128, 256):
        candidates.append(f"{upper}{form_code}")
        candidates.append(f"V{upper}Y{form_code}")
    width_name = _WIDTH_NAME.get(width, "64")
    candidates.append(f"{upper}{width_name}{form_code}")
    candidates.append(f"{upper}{form_code}")
    candidates.append(upper)
    # LEA opcodes are named LEA32r / LEA64r even though their operand form is
    # memory-source, register-destination.
    if mnemonic == "lea":
        candidates.insert(0, f"{upper}{width_name}r")
    # movsx/movzx carry both widths; try the common source widths.
    if mnemonic in ("movsx", "movzx"):
        for source_width in ("8", "16", "32"):
            candidates.insert(0, f"{upper}{width_name}{form_code}{source_width}")
    # Shift by an implicit 1 or by %cl.
    if form_code == "r" and mnemonic in ("shl", "shr", "sar", "rol", "ror"):
        candidates.insert(0, f"{upper}{width_name}r1")
    return candidates


def parse_instruction(text: str, opcode_table: Optional[OpcodeTable] = None) -> Instruction:
    """Parse one AT&T-syntax instruction into an :class:`Instruction`."""
    opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
    text = text.strip().rstrip(";")
    if not text:
        raise ParseError("empty instruction")
    pieces = text.split(None, 1)
    raw_mnemonic = pieces[0]
    operand_text = pieces[1] if len(pieces) > 1 else ""
    operands = tuple(_parse_operand(part) for part in _split_operands(operand_text))
    mnemonic, suffix_width = _mnemonic_and_width(raw_mnemonic)
    width = _infer_width(operands, suffix_width) if operands else (suffix_width or 64)
    if suffix_width is not None and not any(
            isinstance(op, RegisterOperand) for op in operands):
        width = suffix_width
    form_code, _ = _operand_form(operands)
    for candidate in _candidate_opcode_names(mnemonic, width, form_code, operands):
        opcode = opcode_table.get(candidate)
        if opcode is not None:
            return Instruction(opcode=opcode, operands=operands)
    raise ParseError(
        f"could not resolve {text!r} (mnemonic={mnemonic}, width={width}, form={form_code})")


def parse_block(text: str, opcode_table: Optional[OpcodeTable] = None,
                source_applications: Sequence[str] = ()) -> BasicBlock:
    """Parse newline- or semicolon-separated assembly text into a basic block."""
    lines: List[str] = []
    for line in text.replace(";", "\n").splitlines():
        stripped = line.split("#")[0].strip()
        if stripped:
            lines.append(stripped)
    if not lines:
        raise ParseError("no instructions found in block text")
    instructions = tuple(parse_instruction(line, opcode_table) for line in lines)
    return BasicBlock(instructions=instructions,
                      source_applications=tuple(source_applications))


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def _format_mnemonic(instruction: Instruction) -> str:
    opcode = instruction.opcode
    mnemonic = opcode.mnemonic
    if opcode.is_vector or opcode.uop_class == UopClass.NOP:
        return mnemonic
    if mnemonic in ("push", "pop"):
        return mnemonic + "q"
    if mnemonic in ("movsx", "movzx", "lea"):
        suffix = _SUFFIX_BY_WIDTH.get(opcode.width, "q")
        return mnemonic if mnemonic != "lea" else "lea" + suffix
    if mnemonic.startswith(("cmov", "set")):
        return mnemonic
    suffix = _SUFFIX_BY_WIDTH.get(opcode.width, "")
    return mnemonic + suffix


def format_instruction(instruction: Instruction) -> str:
    """Render an :class:`Instruction` in AT&T syntax."""
    mnemonic = _format_mnemonic(instruction)
    if not instruction.operands:
        return mnemonic
    operand_text = ", ".join(operand.to_assembly() for operand in instruction.operands)
    return f"{mnemonic} {operand_text}"
