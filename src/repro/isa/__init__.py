"""x86-like instruction-set substrate.

This package models the part of x86-64 that basic-block CPU simulators care
about: opcodes with operand forms, register operands and their widths, memory
operands, and straight-line basic blocks.  It also provides a small AT&T-style
assembly parser/formatter and the Ithemal-style canonicalization that turns a
basic block into a token stream for the learned surrogate.

It intentionally does *not* model instruction semantics (values); the
simulators only need structural information — which registers and memory
locations each instruction reads and writes, and which opcode it is — to build
dependency chains and look up scheduling parameters.
"""

from repro.isa.registers import Register, REGISTERS, register_by_name, canonical_register
from repro.isa.opcodes import Opcode, OpcodeTable, OperandForm, UopClass, build_default_opcode_table
from repro.isa.operands import Operand, RegisterOperand, ImmediateOperand, MemoryOperand
from repro.isa.instruction import Instruction
from repro.isa.basic_block import BasicBlock
from repro.isa.parser import parse_block, parse_instruction, format_instruction, ParseError
from repro.isa.canonicalize import TokenVocabulary, canonicalize_block

__all__ = [
    "Register",
    "REGISTERS",
    "register_by_name",
    "canonical_register",
    "Opcode",
    "OpcodeTable",
    "OperandForm",
    "UopClass",
    "build_default_opcode_table",
    "Operand",
    "RegisterOperand",
    "ImmediateOperand",
    "MemoryOperand",
    "Instruction",
    "BasicBlock",
    "parse_block",
    "parse_instruction",
    "format_instruction",
    "ParseError",
    "TokenVocabulary",
    "canonicalize_block",
]
