"""Error analyses: per-application/category breakdowns, histograms, sensitivity.

These functions regenerate the analysis artifacts of the paper's evaluation
and analysis sections:

* :func:`per_application_error` / :func:`per_category_error` — Table V.
* :func:`parameter_histograms` — Figure 4 (default vs learned distributions).
* :func:`global_parameter_sensitivity` — Figure 5 (error while sweeping
  DispatchWidth or ReorderBufferSize).
* :func:`case_study_report` — the Section VI-C case studies (PUSH64r,
  XOR32rr, ADD32mr) on individual blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bhive.categories import BlockCategory
from repro.bhive.dataset import BasicBlockDataset
from repro.engine.factories import mca_engine
from repro.eval.metrics import mean_absolute_percentage_error
from repro.isa.basic_block import BasicBlock
from repro.llvm_mca.params import MCAParameterTable
from repro.llvm_mca.simulator import MCASimulator

Predictor = Callable[[Sequence[BasicBlock]], np.ndarray]


def _grouped_error(dataset: BasicBlockDataset, groups: Dict, predictor: Predictor
                   ) -> Dict[str, Tuple[int, float]]:
    """Error per group: returns ``{group: (num_blocks, error)}``."""
    results: Dict[str, Tuple[int, float]] = {}
    for group, indices in groups.items():
        blocks = [dataset[index].block for index in indices]
        targets = np.array([dataset[index].timing for index in indices])
        if not blocks:
            continue
        predictions = predictor(blocks)
        results[str(group)] = (len(blocks),
                               mean_absolute_percentage_error(predictions, targets))
    return results


def per_application_error(dataset: BasicBlockDataset, predictor: Predictor
                          ) -> Dict[str, Tuple[int, float]]:
    """Test-set error grouped by source application (Table V, top half)."""
    return _grouped_error(dataset, dataset.per_application_indices(), predictor)


def per_category_error(dataset: BasicBlockDataset, predictor: Predictor
                       ) -> Dict[str, Tuple[int, float]]:
    """Test-set error grouped by resource category (Table V, bottom half)."""
    return _grouped_error(dataset, dataset.per_category_indices(), predictor)


# ----------------------------------------------------------------------
# Figure 4: parameter-value histograms
# ----------------------------------------------------------------------
def parameter_histograms(default_table: MCAParameterTable, learned_table: MCAParameterTable,
                         max_value: int = 10) -> Dict[str, Dict[str, List[int]]]:
    """Histograms of default vs learned per-instruction parameter values.

    Returns, for each parameter family, ``{"default": counts, "learned":
    counts}`` where ``counts[v]`` is the number of values equal to ``v``
    (values above ``max_value`` are clipped into the last bucket), matching
    the presentation of Figure 4.
    """
    def histogram(values: np.ndarray) -> List[int]:
        clipped = np.clip(values.astype(np.int64).ravel(), 0, max_value)
        return np.bincount(clipped, minlength=max_value + 1).tolist()

    return {
        "NumMicroOps": {"default": histogram(default_table.num_micro_ops),
                        "learned": histogram(learned_table.num_micro_ops)},
        "WriteLatency": {"default": histogram(default_table.write_latency),
                         "learned": histogram(learned_table.write_latency)},
        "ReadAdvanceCycles": {"default": histogram(default_table.read_advance_cycles),
                              "learned": histogram(learned_table.read_advance_cycles)},
        "PortMap": {"default": histogram(default_table.port_map),
                    "learned": histogram(learned_table.port_map)},
    }


# ----------------------------------------------------------------------
# Figure 5: sensitivity to global parameters
# ----------------------------------------------------------------------
def global_parameter_sensitivity(table: MCAParameterTable, dataset: BasicBlockDataset,
                                 parameter: str, values: Sequence[int],
                                 max_blocks: Optional[int] = None) -> List[Tuple[int, float]]:
    """Error of llvm-mca while sweeping one global parameter (Figure 5).

    Deprecated thin shim over :func:`repro.campaigns.sweep_error_curve`
    (bit-identical numbers); new code should call the campaign machinery.

    Args:
        table: Base parameter table (default or learned).
        dataset: Dataset whose test split is evaluated.
        parameter: ``"DispatchWidth"`` or ``"ReorderBufferSize"``.
        values: Values to sweep over.
        max_blocks: Optionally evaluate on only the first N test blocks.

    Returns:
        ``[(value, error), ...]`` in the order given.
    """
    import warnings

    warnings.warn(
        "global_parameter_sensitivity() is deprecated; use "
        "repro.campaigns.sweep_error_curve (or a one-at-a-time grid "
        "campaign) — the campaign machinery produces identical numbers",
        DeprecationWarning, stacklevel=2)
    if parameter not in ("DispatchWidth", "ReorderBufferSize"):
        raise ValueError("parameter must be DispatchWidth or ReorderBufferSize")
    from repro.campaigns.runner import sweep_error_curve

    return sweep_error_curve(table, dataset, parameter, values,
                             max_blocks=max_blocks, engine=mca_engine())


# ----------------------------------------------------------------------
# Section VI-C case studies
# ----------------------------------------------------------------------
@dataclass
class CaseStudy:
    """One case-study block with default/learned predictions and ground truth."""

    name: str
    assembly: str
    true_timing: float
    default_prediction: float
    learned_prediction: float
    default_latency: int
    learned_latency: int


def case_study_report(blocks: Dict[str, Tuple[BasicBlock, str]],
                      default_table: MCAParameterTable, learned_table: MCAParameterTable,
                      measure: Callable[[BasicBlock], float]) -> List[CaseStudy]:
    """Build the Section VI-C case-study comparison.

    Args:
        blocks: ``{case name: (block, opcode of interest)}``.
        default_table: The expert default table.
        learned_table: The learned table.
        measure: Ground-truth measurement function for a block.
    """
    default_simulator = MCASimulator(default_table)
    learned_simulator = MCASimulator(learned_table)
    report = []
    for name, (block, opcode_name) in blocks.items():
        report.append(CaseStudy(
            name=name,
            assembly=block.to_assembly(),
            true_timing=measure(block),
            default_prediction=default_simulator.predict_timing(block),
            learned_prediction=learned_simulator.predict_timing(block),
            default_latency=default_table.latency_of(opcode_name),
            learned_latency=learned_table.latency_of(opcode_name),
        ))
    return report
