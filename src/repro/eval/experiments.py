"""Experiment drivers: one function per paper table or figure.

Each driver builds (or accepts) a dataset, runs the relevant predictors, and
returns a plain-data dictionary with the rows the paper reports.  The
benchmark harness under ``benchmarks/`` times these drivers and prints their
output; the examples call them directly.

Scale note: every driver takes a ``num_blocks`` / config argument so the same
code runs at test scale (seconds), benchmark scale (minutes), or larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.iaca import IACAModel
from repro.baselines.ithemal import IthemalBaseline, IthemalConfig
from repro.baselines.opentuner import OpenTunerBaseline, OpenTunerConfig
from repro.bhive.dataset import BasicBlockDataset, build_dataset
from repro.api.registries import SIMULATORS
from repro.core.config import fast_config
from repro.core.difftune import DiffTune, DiffTuneConfig
from repro.core.simulated_dataset import random_table_errors
from repro.core.parameters import ParameterArrays
from repro.eval.analysis import (case_study_report, parameter_histograms,
                                 per_application_error, per_category_error)
from repro.eval.metrics import error_and_tau, mean_absolute_percentage_error
from repro.isa.parser import parse_block
from repro.targets import get_uarch
from repro.targets.hardware import HardwareModel
from repro.targets.measured_tables import build_measured_latency_table


#: The scale tiers every benchmark scenario supports, smallest first.
SCALE_TIERS = ("smoke", "quick", "full")


@dataclass
class ExperimentScale:
    """Knobs that shrink or grow every experiment uniformly."""

    num_blocks: int = 500
    difftune: DiffTuneConfig = field(default_factory=fast_config)
    opentuner_budget: int = 40000
    ithemal_epochs: int = 4
    seed: int = 0

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        """The scale used by the benchmark harness (minutes per experiment)."""
        config = fast_config()
        config.simulated_dataset_size = 2500
        config.refinement_rounds = 2
        return cls(num_blocks=500, difftune=config, opentuner_budget=30000,
                   ithemal_epochs=4)

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A tiny scale for integration tests and CI gating (seconds)."""
        from repro.core.config import test_config

        return cls(num_blocks=120, difftune=test_config(), opentuner_budget=2000,
                   ithemal_epochs=1)

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """The reduced scale the benchmark harness records (minutes total).

        This is the scale EXPERIMENTS.md results were collected at; it used
        to live in ``benchmarks/conftest.py`` as ``benchmark_scale()``.
        """
        config = fast_config()
        config.simulated_dataset_size = 2200
        config.surrogate_training.epochs = 3
        config.table_optimization.epochs = 8
        config.refinement_rounds = 2
        config.refinement_dataset_size = 1000
        config.refinement_epochs = 2
        return cls(num_blocks=480, difftune=config, opentuner_budget=25000,
                   ithemal_epochs=5, seed=0)

    @classmethod
    def full(cls) -> "ExperimentScale":
        """The largest routinely-run scale (closest to the paper's grid)."""
        config = fast_config()
        config.simulated_dataset_size = 4000
        config.refinement_rounds = 2
        return cls(num_blocks=1000, difftune=config, opentuner_budget=40000,
                   ithemal_epochs=6)

    @classmethod
    def for_tier(cls, tier: str) -> "ExperimentScale":
        """The preset for one of :data:`SCALE_TIERS`."""
        try:
            return {"smoke": cls.smoke, "quick": cls.quick, "full": cls.full}[tier]()
        except KeyError:
            raise ValueError(f"unknown scale tier {tier!r}; expected one of {SCALE_TIERS}")

    def describe(self) -> Dict[str, float]:
        """A flat, JSON-ready summary of the knobs (for result fingerprints)."""
        return {
            "num_blocks": self.num_blocks,
            "seed": self.seed,
            "opentuner_budget": self.opentuner_budget,
            "ithemal_epochs": self.ithemal_epochs,
            "simulated_dataset_size": self.difftune.simulated_dataset_size,
            "surrogate_epochs": self.difftune.surrogate_training.epochs,
            "table_optimization_epochs": self.difftune.table_optimization.epochs,
            "refinement_rounds": self.difftune.refinement_rounds,
        }


def _dataset_split(dataset: BasicBlockDataset):
    train = dataset.train_examples
    test = dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])
    return train_blocks, train_timings, test_blocks, test_timings


# ----------------------------------------------------------------------
# Table III: dataset summary statistics
# ----------------------------------------------------------------------
def run_table3_dataset_statistics(num_blocks: int = 1000, seed: int = 0,
                                  uarches: Sequence[str] = ("ivybridge", "haswell",
                                                            "skylake", "zen2")
                                  ) -> Dict[str, Dict[str, float]]:
    """Summary statistics of the generated dataset per microarchitecture."""
    results: Dict[str, Dict[str, float]] = {}
    for uarch in uarches:
        dataset = build_dataset(uarch, num_blocks=num_blocks, seed=seed)
        results[get_uarch(uarch).name] = dataset.summary_statistics()
    return results


# ----------------------------------------------------------------------
# Table IV: main results (default / DiffTune / Ithemal / IACA / OpenTuner)
# ----------------------------------------------------------------------
def run_table4_for_uarch(uarch_name: str, scale: Optional[ExperimentScale] = None,
                         dataset: Optional[BasicBlockDataset] = None,
                         include_opentuner: bool = True,
                         include_ithemal: bool = True
                         ) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
    """Table IV rows for one microarchitecture.

    Returns ``{predictor: (error, kendall_tau)}`` on the test split; IACA is
    ``(None, None)`` on non-Intel targets.
    """
    scale = scale or ExperimentScale()
    spec = get_uarch(uarch_name)
    if dataset is None:
        dataset = build_dataset(uarch_name, num_blocks=scale.num_blocks, seed=scale.seed)
    train_blocks, train_timings, test_blocks, test_timings = _dataset_split(dataset)
    adapter = SIMULATORS.get("mca").create_adapter(spec, narrow_sampling=True)
    results: Dict[str, Tuple[Optional[float], Optional[float]]] = {}

    # Default expert parameters.
    default_predictions = adapter.predict_timings(adapter.default_arrays(), test_blocks)
    results["Default"] = error_and_tau(default_predictions, test_timings)

    # DiffTune.
    difftune = DiffTune(adapter, scale.difftune)
    learned = difftune.learn(train_blocks, train_timings)
    learned_predictions = adapter.predict_timings(learned.learned_arrays, test_blocks)
    results["DiffTune"] = error_and_tau(learned_predictions, test_timings)

    # Ithemal baseline (learned directly on measurements).
    if include_ithemal:
        ithemal = IthemalBaseline(adapter.opcode_table,
                                  IthemalConfig(epochs=scale.ithemal_epochs,
                                                seed=scale.seed))
        ithemal.fit(train_blocks, train_timings)
        results["Ithemal"] = error_and_tau(ithemal.predict_many(test_blocks), test_timings)

    # IACA analytical baseline (Intel only).
    iaca = IACAModel(spec)
    if iaca.supported:
        results["IACA"] = error_and_tau(iaca.predict_many(test_blocks), test_timings)
    else:
        results["IACA"] = (None, None)

    # OpenTuner black-box baseline.
    if include_opentuner:
        tuner = OpenTunerBaseline(adapter, OpenTunerConfig(
            evaluation_budget=scale.opentuner_budget,
            blocks_per_evaluation=min(100, len(train_blocks)),
            seed=scale.seed))
        tuned = tuner.tune(train_blocks, train_timings)
        results["OpenTuner"] = error_and_tau(adapter.predict_timings(tuned, test_blocks),
                                             test_timings)
    return results


def run_table4(uarches: Sequence[str] = ("ivybridge", "haswell", "skylake", "zen2"),
               scale: Optional[ExperimentScale] = None,
               include_opentuner: bool = True, include_ithemal: bool = True
               ) -> Dict[str, Dict[str, Tuple[Optional[float], Optional[float]]]]:
    """The full Table IV over all four microarchitectures."""
    scale = scale or ExperimentScale()
    return {
        get_uarch(uarch).name: run_table4_for_uarch(
            uarch, scale, include_opentuner=include_opentuner,
            include_ithemal=include_ithemal)
        for uarch in uarches
    }


# ----------------------------------------------------------------------
# Table V: per-application and per-category error on Haswell
# ----------------------------------------------------------------------
def run_table5(scale: Optional[ExperimentScale] = None,
               dataset: Optional[BasicBlockDataset] = None) -> Dict[str, Dict]:
    """Per-application and per-category error of default vs learned tables."""
    scale = scale or ExperimentScale()
    spec = get_uarch("haswell")
    if dataset is None:
        dataset = build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
    train_blocks, train_timings, _test_blocks, _test_timings = _dataset_split(dataset)
    adapter = SIMULATORS.get("mca").create_adapter(spec, narrow_sampling=True)
    difftune = DiffTune(adapter, scale.difftune)
    learned = difftune.learn(train_blocks, train_timings)

    def default_predictor(blocks):
        return adapter.predict_timings(adapter.default_arrays(), blocks)

    def learned_predictor(blocks):
        return adapter.predict_timings(learned.learned_arrays, blocks)

    return {
        "per_application": {
            "default": per_application_error(dataset, default_predictor),
            "learned": per_application_error(dataset, learned_predictor),
        },
        "per_category": {
            "default": per_category_error(dataset, default_predictor),
            "learned": per_category_error(dataset, learned_predictor),
        },
    }


# ----------------------------------------------------------------------
# Table VI + Figure 4 + Figure 5: learned globals, histograms, sensitivity
# ----------------------------------------------------------------------
def run_table6_and_figures(scale: Optional[ExperimentScale] = None,
                           dataset: Optional[BasicBlockDataset] = None) -> Dict:
    """Global parameters (Table VI), histograms (Fig. 4), sensitivity (Fig. 5)."""
    scale = scale or ExperimentScale()
    spec = get_uarch("haswell")
    if dataset is None:
        dataset = build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
    train_blocks, train_timings, _test_blocks, _test_timings = _dataset_split(dataset)
    adapter = SIMULATORS.get("mca").create_adapter(spec, narrow_sampling=True)
    difftune = DiffTune(adapter, scale.difftune)
    learned_result = difftune.learn(train_blocks, train_timings)
    default_table = adapter.default_table()
    learned_table = adapter.table_from_arrays(learned_result.learned_arrays)

    # One shared engine across the four sweeps: each block compiles once and
    # its per-table results accumulate in the engine cache.
    from repro.campaigns.runner import sweep_error_curve
    from repro.engine.factories import mca_engine

    engine = mca_engine()
    dispatch_sweep_default = sweep_error_curve(
        default_table, dataset, "DispatchWidth", list(range(1, 11)),
        max_blocks=60, engine=engine)
    dispatch_sweep_learned = sweep_error_curve(
        learned_table, dataset, "DispatchWidth", list(range(1, 11)),
        max_blocks=60, engine=engine)
    rob_values = [10, 25, 50, 75, 100, 150, 200, 250, 300, 400]
    rob_sweep_default = sweep_error_curve(
        default_table, dataset, "ReorderBufferSize", rob_values,
        max_blocks=60, engine=engine)
    rob_sweep_learned = sweep_error_curve(
        learned_table, dataset, "ReorderBufferSize", rob_values,
        max_blocks=60, engine=engine)

    return {
        "table6": {
            "default": {"DispatchWidth": default_table.dispatch_width,
                        "ReorderBufferSize": default_table.reorder_buffer_size},
            "learned": {"DispatchWidth": learned_table.dispatch_width,
                        "ReorderBufferSize": learned_table.reorder_buffer_size},
        },
        "figure4": parameter_histograms(default_table, learned_table),
        "figure5": {
            "DispatchWidth": {"default": dispatch_sweep_default,
                              "learned": dispatch_sweep_learned},
            "ReorderBufferSize": {"default": rob_sweep_default,
                                  "learned": rob_sweep_learned},
        },
    }


# ----------------------------------------------------------------------
# Figure 2: surrogate vs simulator while sweeping DispatchWidth
# ----------------------------------------------------------------------
def run_figure2_surrogate_sweep(scale: Optional[ExperimentScale] = None,
                                block_assembly: str = "shrq $5, 16(%rsp)",
                                dataset: Optional[BasicBlockDataset] = None) -> Dict:
    """Timing of llvm-mca vs the trained surrogate while sweeping DispatchWidth."""
    scale = scale or ExperimentScale()
    spec = get_uarch("haswell")
    if dataset is None:
        dataset = build_dataset("haswell", num_blocks=max(200, scale.num_blocks // 2),
                                seed=scale.seed)
    train_blocks, _train_timings, _tb, _tt = _dataset_split(dataset)
    adapter = SIMULATORS.get("mca").create_adapter(spec, narrow_sampling=True)
    difftune = DiffTune(adapter, scale.difftune)
    rng = np.random.default_rng(scale.seed)
    simulated = difftune.collect_simulated_dataset(train_blocks, rng)
    surrogate = difftune.build_surrogate()
    from repro.core.surrogate_training import train_surrogate

    train_surrogate(surrogate, simulated, scale.difftune.surrogate_training)

    block = parse_block(block_assembly)
    parameter_spec = adapter.parameter_spec()
    base_arrays = adapter.default_arrays()
    simulator_curve: List[Tuple[int, float]] = []
    surrogate_curve: List[Tuple[int, float]] = []
    featurized = difftune.featurizer.featurize(block)
    for width in range(1, 11):
        arrays = base_arrays.copy()
        arrays.global_values[parameter_spec.global_field_slice("DispatchWidth")] = width
        simulator_curve.append((width, float(adapter.predict_timing(arrays, block))))
        normalized = parameter_spec.normalize_for_surrogate_training(arrays)
        rows = normalized.per_instruction_values[list(featurized.opcode_indices)]
        prediction = surrogate.predict_value(block, rows, normalized.global_values)
        surrogate_curve.append((width, prediction))
    return {"block": block.to_assembly(), "llvm_mca": simulator_curve,
            "surrogate": surrogate_curve}


# ----------------------------------------------------------------------
# Section II-B: measured min/median/max latency tables
# ----------------------------------------------------------------------
def run_section2b_measured_tables(num_blocks: int = 400, seed: int = 0) -> Dict[str, float]:
    """Error of llvm-mca under measured min/median/max latency tables (Haswell)."""
    spec = get_uarch("haswell")
    dataset = build_dataset("haswell", num_blocks=num_blocks, seed=seed)
    _train_blocks, _train_timings, test_blocks, test_timings = _dataset_split(dataset)
    adapter = SIMULATORS.get("mca").create_adapter(spec)
    results: Dict[str, float] = {}
    default_predictions = adapter.predict_timings(adapter.default_arrays(), test_blocks)
    results["default"] = mean_absolute_percentage_error(default_predictions, test_timings)
    for statistic in ("min", "median", "max"):
        table = build_measured_latency_table(spec, statistic)
        # Same engine as the default-table run above, so the test blocks are
        # compiled once and shared across all four tables.
        predictions = adapter.engine.run_one(table, test_blocks)
        results[statistic] = mean_absolute_percentage_error(predictions, test_timings)
    return results


# ----------------------------------------------------------------------
# Section V-A: random-table error sanity check
# ----------------------------------------------------------------------
def run_section5a_random_tables(num_blocks: int = 200, num_tables: int = 10,
                                seed: int = 0) -> Dict[str, float]:
    """Mean/std error of random parameter tables on Haswell (Section V-A)."""
    spec = get_uarch("haswell")
    dataset = build_dataset("haswell", num_blocks=num_blocks, seed=seed)
    blocks = [example.block for example in dataset.test_examples]
    timings = np.array([example.timing for example in dataset.test_examples])
    adapter = SIMULATORS.get("mca").create_adapter(spec)
    errors = random_table_errors(adapter, blocks, timings, num_tables,
                                 np.random.default_rng(seed))
    return {"mean": float(errors.mean()), "std": float(errors.std()),
            "min": float(errors.min()), "max": float(errors.max())}


# ----------------------------------------------------------------------
# Section VI-B: WriteLatency-only learning
# ----------------------------------------------------------------------
def run_section6b_writelatency_only(scale: Optional[ExperimentScale] = None,
                                    dataset: Optional[BasicBlockDataset] = None
                                    ) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
    """Learning only WriteLatency, keeping every other parameter at its default."""
    scale = scale or ExperimentScale()
    spec = get_uarch("haswell")
    if dataset is None:
        dataset = build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
    train_blocks, train_timings, test_blocks, test_timings = _dataset_split(dataset)
    results: Dict[str, Tuple[Optional[float], Optional[float]]] = {}

    default_adapter = SIMULATORS.get("mca").create_adapter(spec)
    default_predictions = default_adapter.predict_timings(default_adapter.default_arrays(),
                                                          test_blocks)
    results["Default"] = error_and_tau(default_predictions, test_timings)

    latency_adapter = SIMULATORS.get("mca").create_adapter(spec, learn_fields=["WriteLatency"], narrow_sampling=True)
    difftune = DiffTune(latency_adapter, scale.difftune)
    learned = difftune.learn(train_blocks, train_timings)
    predictions = latency_adapter.predict_timings(learned.learned_arrays, test_blocks)
    results["DiffTune (WriteLatency only)"] = error_and_tau(predictions, test_timings)

    full_adapter = SIMULATORS.get("mca").create_adapter(spec, narrow_sampling=True)
    difftune_full = DiffTune(full_adapter, scale.difftune)
    learned_full = difftune_full.learn(train_blocks, train_timings)
    predictions_full = full_adapter.predict_timings(learned_full.learned_arrays, test_blocks)
    results["DiffTune (all parameters)"] = error_and_tau(predictions_full, test_timings)
    return results


# ----------------------------------------------------------------------
# Section VI-C: case studies
# ----------------------------------------------------------------------
CASE_STUDY_BLOCKS = {
    "PUSH64r": ("pushq %rbx\ntestl %r8d, %r8d", "PUSH64r"),
    "XOR32rr (zero idiom)": ("xorl %r13d, %r13d", "XOR32rr"),
    "ADD32mr (memory RMW)": ("addl %eax, 16(%rsp)", "ADD32mr"),
}


def run_section6c_case_studies(scale: Optional[ExperimentScale] = None,
                               dataset: Optional[BasicBlockDataset] = None) -> List:
    """The PUSH64r / XOR32rr / ADD32mr case studies with learned WriteLatency."""
    scale = scale or ExperimentScale()
    spec = get_uarch("haswell")
    if dataset is None:
        dataset = build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
    train_blocks, train_timings, _tb, _tt = _dataset_split(dataset)
    adapter = SIMULATORS.get("mca").create_adapter(spec, learn_fields=["WriteLatency"], narrow_sampling=True)
    difftune = DiffTune(adapter, scale.difftune)
    learned = difftune.learn(train_blocks, train_timings)
    default_table = adapter.default_table()
    learned_table = adapter.table_from_arrays(learned.learned_arrays)
    hardware = HardwareModel(spec, seed=scale.seed)
    blocks = {name: (parse_block(assembly), opcode)
              for name, (assembly, opcode) in CASE_STUDY_BLOCKS.items()}
    return case_study_report(blocks, default_table, learned_table,
                             lambda block: hardware.measure(block, noisy=False))


# ----------------------------------------------------------------------
# Table VIII (Appendix A): llvm_sim
# ----------------------------------------------------------------------
def run_table8_llvm_sim(scale: Optional[ExperimentScale] = None,
                        dataset: Optional[BasicBlockDataset] = None
                        ) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
    """Default vs DiffTune-learned parameters for the llvm_sim model (Haswell)."""
    scale = scale or ExperimentScale()
    spec = get_uarch("haswell")
    if dataset is None:
        dataset = build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
    train_blocks, train_timings, test_blocks, test_timings = _dataset_split(dataset)
    adapter = SIMULATORS.get("llvm_sim").create_adapter(spec)
    results: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
    default_predictions = adapter.predict_timings(adapter.default_arrays(), test_blocks)
    results["Default"] = error_and_tau(default_predictions, test_timings)
    difftune = DiffTune(adapter, scale.difftune)
    learned = difftune.learn(train_blocks, train_timings)
    learned_predictions = adapter.predict_timings(learned.learned_arrays, test_blocks)
    results["DiffTune"] = error_and_tau(learned_predictions, test_timings)
    return results
