"""Evaluation: metrics, error analyses, and per-table/figure experiment drivers.

* :mod:`~repro.eval.metrics` — mean absolute percentage error and Kendall's
  tau rank correlation, the two measures used throughout the paper's
  evaluation.
* :mod:`~repro.eval.analysis` — per-application and per-category error
  breakdowns (Table V), parameter-distribution histograms (Figure 4),
  sensitivity sweeps over global parameters (Figure 5), and the case studies
  of Section VI-C.
* :mod:`~repro.eval.tables` — plain-text rendering of result tables.
* :mod:`~repro.eval.experiments` — one driver function per paper table or
  figure; the benchmark harness and the examples call these.
"""

from repro.eval.metrics import mean_absolute_percentage_error, kendall_tau, error_and_tau
from repro.eval.analysis import (per_application_error, per_category_error,
                                 parameter_histograms, global_parameter_sensitivity,
                                 case_study_report)
from repro.eval.tables import format_table, format_results_table
from repro.eval.plots import (Series, ascii_bar_chart, ascii_histogram, ascii_line_plot,
                              read_series_csv, write_histogram_csv, write_series_csv)
from repro.eval.reports import load_results, render_report, write_report

__all__ = [
    "mean_absolute_percentage_error",
    "kendall_tau",
    "error_and_tau",
    "per_application_error",
    "per_category_error",
    "parameter_histograms",
    "global_parameter_sensitivity",
    "case_study_report",
    "format_table",
    "format_results_table",
    "Series",
    "ascii_line_plot",
    "ascii_histogram",
    "ascii_bar_chart",
    "write_series_csv",
    "write_histogram_csv",
    "read_series_csv",
    "load_results",
    "render_report",
    "write_report",
]
