"""Text plots and figure-data export for the paper's figures.

The paper's evaluation contains three figures built from simple series data:
the surrogate-vs-simulator sweep (Figure 2), the default-vs-learned parameter
histograms (Figure 4), and the global-parameter sensitivity sweeps (Figure 5).
This module renders those as terminal-friendly ASCII plots — which is what the
benchmark harness prints — and exports the underlying series as CSV so the
figures can be regenerated in any plotting tool.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Series:
    """One named data series: aligned x and y values."""

    name: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name}: x and y must be the same length")
        if not self.x:
            raise ValueError(f"series {self.name}: must not be empty")


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------
def ascii_line_plot(series: Sequence[Series], width: int = 60, height: int = 16,
                    title: str = "", x_label: str = "", y_label: str = "") -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Each series gets its own marker character; the y-range is shared so
    curves can be compared (exactly the comparison Figure 2 makes between
    llvm-mca's staircase and the surrogate's smooth curve).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    markers = "ox+*#@%&"
    all_x = np.concatenate([np.asarray(entry.x, dtype=np.float64) for entry in series])
    all_y = np.concatenate([np.asarray(entry.y, dtype=np.float64) for entry in series])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, entry in enumerate(series):
        marker = markers[index % len(markers)]
        for x_value, y_value in zip(entry.x, entry.y):
            column = int(round((float(x_value) - x_min) / x_span * (width - 1)))
            row = int(round((float(y_value) - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        level = y_max - (y_max - y_min) * row_index / (height - 1)
        lines.append(f"{level:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10.2f}{'':^{max(width - 20, 0)}}{x_max:>10.2f}")
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "  ".join(f"{markers[index % len(markers)]}={entry.name}"
                       for index, entry in enumerate(series))
    lines.append("legend: " + legend)
    if y_label:
        lines.insert(1 if title else 0, f"y: {y_label}")
    return "\n".join(lines)


def ascii_histogram(values: Mapping[str, Sequence[float]], bins: Sequence[float],
                    width: int = 40, title: str = "") -> str:
    """Render one histogram bar chart per named value collection.

    Used for the Figure 4 parameter-distribution comparison: pass
    ``{"default": [...], "learned": [...]}`` and a shared bin specification.
    """
    if len(bins) < 2:
        raise ValueError("need at least two bin edges")
    lines: List[str] = []
    if title:
        lines.append(title)
    max_count = 1
    counted: Dict[str, np.ndarray] = {}
    for name, collection in values.items():
        counts, _ = np.histogram(np.asarray(list(collection), dtype=np.float64), bins=bins)
        counted[name] = counts
        max_count = max(max_count, int(counts.max()) if counts.size else 1)
    for name, counts in counted.items():
        lines.append(f"{name}:")
        for bin_index, count in enumerate(counts):
            bar = "#" * int(round(count / max_count * width))
            low, high = bins[bin_index], bins[bin_index + 1]
            lines.append(f"  [{low:6.1f}, {high:6.1f}) {count:6d} {bar}")
    return "\n".join(lines)


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 40,
                    title: str = "", value_format: str = "{:.1f}") -> str:
    """Render labelled horizontal bars (used for per-application error tables)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be aligned")
    if not labels:
        raise ValueError("need at least one bar")
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(label) for label in labels)
    maximum = max(max(values), 1e-12)
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / maximum * width))
        rendered = value_format.format(value)
        lines.append(f"{label:<{label_width}} {rendered:>8} {bar}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CSV export
# ----------------------------------------------------------------------
def write_series_csv(path: str, series: Sequence[Series], x_name: str = "x") -> None:
    """Write aligned series to CSV: one x column plus one column per series.

    Series must share their x values (as the figure sweeps do); a mismatch is
    an error rather than a silent reindexing.
    """
    if not series:
        raise ValueError("need at least one series")
    reference = list(series[0].x)
    for entry in series[1:]:
        if list(entry.x) != reference:
            raise ValueError("all series must share the same x values for CSV export")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_name] + [entry.name for entry in series])
        for row_index, x_value in enumerate(reference):
            writer.writerow([x_value] + [entry.y[row_index] for entry in series])


def write_histogram_csv(path: str, values: Mapping[str, Sequence[float]],
                        bins: Sequence[float]) -> None:
    """Write histogram counts to CSV: bin edges plus one count column per name."""
    if len(bins) < 2:
        raise ValueError("need at least two bin edges")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    names = list(values)
    counts = {name: np.histogram(np.asarray(list(values[name]), dtype=np.float64),
                                 bins=bins)[0]
              for name in names}
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bin_low", "bin_high"] + names)
        for bin_index in range(len(bins) - 1):
            writer.writerow([bins[bin_index], bins[bin_index + 1]]
                            + [int(counts[name][bin_index]) for name in names])


def read_series_csv(path: str) -> Tuple[str, List[Series]]:
    """Read a CSV produced by :func:`write_series_csv` back into series."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if len(header) < 2:
            raise ValueError("series CSV needs an x column and at least one series")
        rows = [[float(cell) for cell in row] for row in reader if row]
    x_values = [row[0] for row in rows]
    series = [Series(name=name, x=list(x_values),
                     y=[row[column] for row in rows])
              for column, name in enumerate(header[1:], start=1)]
    return header[0], series
