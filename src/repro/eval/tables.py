"""Plain-text table rendering for experiment results.

The benchmark harness prints the same rows the paper's tables report; these
helpers keep the formatting consistent and readable in terminal output and in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render a simple aligned text table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_percent(value: Optional[float]) -> str:
    """Format a fractional error as a percentage string (or N/A)."""
    if value is None:
        return "N/A"
    return f"{100.0 * value:.1f}%"


def format_results_table(results: Dict[str, Dict[str, Tuple[Optional[float], Optional[float]]]],
                         title: str = "") -> str:
    """Render a Table IV style results table.

    Args:
        results: ``{architecture: {predictor: (error, kendall_tau)}}``.
        title: Optional title line.
    """
    rows = []
    for architecture, predictors in results.items():
        for predictor, (error, tau) in predictors.items():
            rows.append([architecture, predictor, format_percent(error),
                         "N/A" if tau is None else f"{tau:.3f}"])
    return format_table(["Architecture", "Predictor", "Error", "Kendall's Tau"], rows, title)
