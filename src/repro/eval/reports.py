"""Markdown report generation from recorded benchmark results.

Every benchmark under ``benchmarks/`` writes its raw rows to
``benchmarks/results/<name>.json`` (via the harness' ``record_result``
helper).  This module turns that directory into a single markdown report —
the measured half of EXPERIMENTS.md — so the paper-vs-measured record can be
regenerated mechanically after a benchmark run instead of being edited by
hand:

* :func:`load_results` reads every recorded result.
* :func:`render_report` formats them into markdown sections, pairing each
  known experiment with its paper reference.
* :func:`write_report` writes the report to a file (used by
  ``python -m repro.eval.reports``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

#: Human-readable titles and paper references for known result files.
KNOWN_EXPERIMENTS: Dict[str, str] = {
    "table03_dataset": "Table III — dataset summary statistics",
    "table04_ivybridge": "Table IV — main results (Ivy Bridge)",
    "table04_haswell": "Table IV — main results (Haswell)",
    "table04_skylake": "Table IV — main results (Skylake)",
    "table04_zen2": "Table IV — main results (Zen 2)",
    "table05_per_application": "Table V — per-application / per-category error",
    "table06_fig4_fig5": "Table VI + Figures 4/5 — global parameters, histograms, sweeps",
    "fig02_surrogate_sweep": "Figure 2 — surrogate vs simulator DispatchWidth sweep",
    "sec2b_measured_tables": "Section II-B — measured-latency tables",
    "sec5a_random_tables": "Section V-A — random parameter tables",
    "sec6b_writelatency_only": "Section VI-B — WriteLatency-only learning",
    "sec6c_case_studies": "Section VI-C — case studies",
    "table08_llvm_sim": "Table VIII — llvm_sim transfer",
    "ablation_surrogate": "Ablation — surrogate structure and refinement",
    "ablation_port_groups": "Ablation — port-group semantics",
    "baseline_search": "Black-box search baselines beyond OpenTuner",
}


@dataclass
class ExperimentResult:
    """One recorded benchmark result."""

    name: str
    title: str
    payload: object

    @property
    def is_known(self) -> bool:
        return self.name in KNOWN_EXPERIMENTS


def load_results(results_directory: str) -> List[ExperimentResult]:
    """Read every ``*.json`` result under ``results_directory``.

    Unknown files are included (titled by their stem) so ad-hoc benchmarks
    still show up in the report; missing directories yield an empty list.
    """
    if not os.path.isdir(results_directory):
        return []
    results: List[ExperimentResult] = []
    for entry in sorted(os.listdir(results_directory)):
        if not entry.endswith(".json"):
            continue
        name = entry[:-len(".json")]
        path = os.path.join(results_directory, entry)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            payload = {"error": f"could not read {entry}: {error}"}
        results.append(ExperimentResult(name=name,
                                        title=KNOWN_EXPERIMENTS.get(name, name),
                                        payload=payload))
    return results


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return ", ".join(_format_value(item) for item in value)
    return str(value)


def _render_payload(payload, indent: int = 0) -> List[str]:
    """Render a JSON payload as nested markdown bullet lists."""
    prefix = "  " * indent
    lines: List[str] = []
    if isinstance(payload, Mapping):
        for key, value in payload.items():
            if isinstance(value, (Mapping, list)) and value and not _is_flat_sequence(value):
                lines.append(f"{prefix}- **{key}**:")
                lines.extend(_render_payload(value, indent + 1))
            else:
                lines.append(f"{prefix}- **{key}**: {_format_value(value)}")
    elif isinstance(payload, list):
        for item in payload:
            if isinstance(item, (Mapping, list)) and item and not _is_flat_sequence(item):
                lines.append(f"{prefix}-")
                lines.extend(_render_payload(item, indent + 1))
            else:
                lines.append(f"{prefix}- {_format_value(item)}")
    else:
        lines.append(f"{prefix}- {_format_value(payload)}")
    return lines


def _is_flat_sequence(value) -> bool:
    return isinstance(value, (list, tuple)) and all(
        isinstance(item, (int, float, str, bool)) for item in value)


def render_report(results: Sequence[ExperimentResult],
                  title: str = "Measured benchmark results") -> str:
    """Render loaded results as a markdown document."""
    lines = [f"# {title}", "",
             "Generated from `benchmarks/results/*.json`; see EXPERIMENTS.md for the",
             "paper-side numbers each section is compared against.", ""]
    if not results:
        lines.append("_No recorded results found — run "
                     "`pytest benchmarks/ --benchmark-only` first._")
        return "\n".join(lines) + "\n"
    for result in results:
        lines.append(f"## {result.title}")
        lines.append("")
        lines.append(f"Source: `benchmarks/results/{result.name}.json`")
        lines.append("")
        lines.extend(_render_payload(result.payload))
        lines.append("")
    return "\n".join(lines)


def write_report(results_directory: str, output_path: str,
                 title: str = "Measured benchmark results") -> str:
    """Load results, render the report, write it to ``output_path``."""
    report = render_report(load_results(results_directory), title=title)
    directory = os.path.dirname(os.path.abspath(output_path))
    os.makedirs(directory, exist_ok=True)
    with open(output_path, "w") as handle:
        handle.write(report)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="benchmarks/results",
                        help="directory of recorded benchmark results")
    parser.add_argument("--output", default="benchmarks/results/REPORT.md")
    arguments = parser.parse_args(argv)
    write_report(arguments.results, arguments.output)
    print(f"Wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
