"""Evaluation metrics: MAPE and Kendall's tau.

The paper evaluates predictors with two numbers (Section V-A / Table IV):

* **Error** — mean absolute percentage error of the predicted timing against
  the measured timing;
* **Kendall's tau** — the rank correlation coefficient over all pairs of test
  blocks, measuring how often the predictor orders two blocks the same way
  the measurements do (what matters when a model is used to compare code
  alternatives rather than to predict absolute cycle counts).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def mean_absolute_percentage_error(predictions: Sequence[float], targets: Sequence[float],
                                   epsilon: float = 1e-9) -> float:
    """MAPE as defined in Section V-A: mean of |prediction - target| / target."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute error over an empty set")
    return float(np.mean(np.abs(predictions - targets) / np.maximum(np.abs(targets), epsilon)))


def kendall_tau(predictions: Sequence[float], targets: Sequence[float]) -> float:
    """Kendall's tau-a rank correlation between predictions and targets.

    Implemented as the normalized difference between concordant and
    discordant pairs; the O(n^2) pair enumeration is vectorized and perfectly
    adequate for the test-set sizes used here.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    n = predictions.size
    if n < 2:
        raise ValueError("Kendall's tau requires at least two observations")
    prediction_sign = np.sign(predictions[:, None] - predictions[None, :])
    target_sign = np.sign(targets[:, None] - targets[None, :])
    upper = np.triu_indices(n, k=1)
    products = prediction_sign[upper] * target_sign[upper]
    concordant = np.sum(products > 0)
    discordant = np.sum(products < 0)
    total_pairs = n * (n - 1) / 2
    return float((concordant - discordant) / total_pairs)


def error_and_tau(predictions: Sequence[float], targets: Sequence[float]) -> Tuple[float, float]:
    """Convenience: both Table IV metrics at once."""
    return (mean_absolute_percentage_error(predictions, targets),
            kendall_tau(predictions, targets))
