"""repro — a reproduction of DiffTune (Renda et al., MICRO 2020).

DiffTune learns the parameters of basic-block CPU simulators from end-to-end
measurements by optimizing them through a learned differentiable surrogate.
This package contains the complete system: the autodiff/NN substrate, an
x86-like ISA layer, llvm-mca and llvm_sim style simulators, a BHive-like
synthetic dataset with a reference hardware model, the DiffTune optimization
pipeline, the baselines the paper compares against, and the evaluation
drivers that regenerate every table and figure.

The public surface is :mod:`repro.api`: string-keyed component registries
(targets, simulators, surrogates, baselines, presets — extensible via entry
points), typed run specs, and the :class:`~repro.api.session.Session`
facade.

Quickstart::

    from repro.api import Session, TuneSpec

    session = Session.from_spec(TuneSpec(target="haswell", simulator="mca",
                                         preset="fast", num_blocks=500))
    outcome = session.tune()            # dataset -> surrogate -> learned table
    print(f"test error: learned {outcome.test_error:.1%}, "
          f"default {outcome.default_test_error:.1%}")
    outcome.learned_table.save_json("learned.json")

    print(session.evaluate(table="learned.json"))    # error / Kendall's tau
    blocks, _measured = session.split("test")
    timings = session.predict(blocks)                # batched engine call

Discover what is available with ``repro.api.describe()`` or per registry::

    from repro.api import TARGETS, SIMULATORS
    print(TARGETS.names())      # ['haswell', 'ivybridge', 'skylake', 'zen2']
    print(SIMULATORS.names())   # ['llvm_sim', 'mca']

See ``examples/`` for runnable end-to-end scripts and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

from importlib import metadata as _metadata

try:
    #: Single-sourced from the installed package metadata (pyproject.toml).
    __version__ = _metadata.version("difftune-repro")
except _metadata.PackageNotFoundError:  # running from a source tree
    __version__ = "0.0.0+uninstalled"

__all__ = [
    "api",
    "autodiff",
    "isa",
    "llvm_mca",
    "llvm_sim",
    "targets",
    "bhive",
    "core",
    "baselines",
    "eval",
    "__version__",
]
