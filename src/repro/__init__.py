"""repro — a reproduction of DiffTune (Renda et al., MICRO 2020).

DiffTune learns the parameters of basic-block CPU simulators from end-to-end
measurements by optimizing them through a learned differentiable surrogate.
This package contains the complete system: the autodiff/NN substrate, an
x86-like ISA layer, llvm-mca and llvm_sim style simulators, a BHive-like
synthetic dataset with a reference hardware model, the DiffTune optimization
pipeline, the baselines the paper compares against, and the evaluation
drivers that regenerate every table and figure.

Quickstart::

    from repro.bhive import build_dataset
    from repro.core import MCAAdapter, DiffTune, fast_config
    from repro.targets import HASWELL

    dataset = build_dataset("haswell", num_blocks=500)
    adapter = MCAAdapter(HASWELL, narrow_sampling=True)
    difftune = DiffTune(adapter, fast_config())
    train = dataset.train_examples
    result = difftune.learn([e.block for e in train], [e.timing for e in train])
    learned_table = adapter.table_from_arrays(result.learned_arrays)

See ``examples/`` for runnable end-to-end scripts and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

__version__ = "0.1.0"

__all__ = [
    "autodiff",
    "isa",
    "llvm_mca",
    "llvm_sim",
    "targets",
    "bhive",
    "core",
    "baselines",
    "eval",
]
