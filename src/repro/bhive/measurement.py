"""Measurement harness: timing blocks on the hardware substitute.

In BHive, each block is mapped into a loop, its memory accesses are warmed
into L1, and the loop is timed with performance counters several times; the
reported timing is a robust aggregate of those runs, and blocks whose
measurements are unstable (e.g. affected by virtual page aliasing) are
discarded.  The harness here mirrors that protocol against the
:class:`~repro.targets.hardware.HardwareModel`: every block is "run" several
times with measurement noise, the median is reported, and blocks whose runs
disagree too much are filtered out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.targets.hardware import HardwareModel


@dataclass
class MeasurementResult:
    """Timing measurement of one block."""

    timing: float
    runs: Tuple[float, ...]
    stable: bool


class MeasurementHarness:
    """Times basic blocks on a hardware model, BHive-style."""

    def __init__(self, hardware: HardwareModel, runs: int = 3,
                 stability_threshold: float = 0.25, seed: int = 0) -> None:
        """Create a harness.

        Args:
            hardware: The hardware model standing in for the physical CPU.
            runs: Number of repeated timing runs per block.
            stability_threshold: Maximum allowed relative spread
                (max-min)/median across runs before a block is discarded,
                mirroring BHive's filtering of unreliable measurements.
            seed: Seed for the measurement-noise generator.
        """
        if runs < 1:
            raise ValueError("need at least one measurement run")
        self.hardware = hardware
        self.runs = runs
        self.stability_threshold = stability_threshold
        self._rng = np.random.default_rng(seed)

    def measure_block(self, block: BasicBlock) -> MeasurementResult:
        """Measure one block; ``stable`` is False if runs disagree too much."""
        runs = tuple(self.hardware.measure(block, noisy=True, rng=self._rng)
                     for _ in range(self.runs))
        median = float(np.median(runs))
        spread = (max(runs) - min(runs)) / max(median, 1e-9)
        return MeasurementResult(timing=median, runs=runs,
                                 stable=spread <= self.stability_threshold)

    def measure_blocks(self, blocks: Sequence[BasicBlock],
                       drop_unstable: bool = True) -> Tuple[List[BasicBlock], np.ndarray]:
        """Measure many blocks, optionally dropping unstable measurements.

        Returns the (possibly filtered) blocks and their timings, aligned.
        """
        kept_blocks: List[BasicBlock] = []
        timings: List[float] = []
        for block in blocks:
            result = self.measure_block(block)
            if drop_unstable and not result.stable:
                continue
            kept_blocks.append(block)
            timings.append(result.timing)
        return kept_blocks, np.array(timings, dtype=np.float64)
