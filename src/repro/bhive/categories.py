"""Block categorization by hardware resources used.

BHive's validation methodology groups blocks into clusters based on the
hardware resources they exercise; Table V of the paper reports per-category
error for six of those clusters.  The classification here follows the same
descriptions:

* ``Scalar``      — scalar ALU operations only;
* ``Vec``         — purely vector instructions;
* ``Scalar/Vec``  — both scalar and vector arithmetic;
* ``Ld``          — mostly loads;
* ``St``          — mostly stores;
* ``Ld/St``       — a mix of loads and stores.
"""

from __future__ import annotations

import enum

from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import UopClass


class BlockCategory(str, enum.Enum):
    """The six BHive resource-usage categories used in Table V."""

    SCALAR = "Scalar"
    VEC = "Vec"
    SCALAR_VEC = "Scalar/Vec"
    LD = "Ld"
    ST = "St"
    LD_ST = "Ld/St"

    def __str__(self) -> str:
        return self.value


_SCALAR_ARITH_CLASSES = {UopClass.ALU, UopClass.SHIFT, UopClass.MUL, UopClass.DIV,
                         UopClass.LEA, UopClass.CMOV, UopClass.SETCC}
_VECTOR_ARITH_CLASSES = {UopClass.VEC_ALU, UopClass.VEC_MUL, UopClass.VEC_DIV, UopClass.CVT}


def categorize_block(block: BasicBlock) -> BlockCategory:
    """Assign a block to one of the six BHive categories.

    Memory behaviour takes precedence: blocks dominated by loads and/or
    stores fall into the Ld / St / Ld-St buckets; otherwise the scalar /
    vector arithmetic mix decides.
    """
    num_instructions = len(block)
    num_loads = block.num_loads()
    num_stores = block.num_stores()
    memory_fraction = (num_loads + num_stores) / num_instructions

    has_scalar_arith = any(
        instruction.opcode.uop_class in _SCALAR_ARITH_CLASSES and not instruction.opcode.is_vector
        for instruction in block)
    has_vector_arith = any(
        instruction.opcode.uop_class in _VECTOR_ARITH_CLASSES or
        (instruction.opcode.is_vector and instruction.opcode.uop_class != UopClass.VEC_MOV)
        for instruction in block)
    all_vector = all(instruction.opcode.is_vector for instruction in block)

    if memory_fraction >= 0.5:
        load_share = num_loads / max(1, num_loads + num_stores)
        if load_share >= 0.7:
            return BlockCategory.LD
        if load_share <= 0.3:
            return BlockCategory.ST
        return BlockCategory.LD_ST
    if all_vector and num_instructions > 0:
        return BlockCategory.VEC
    if has_scalar_arith and has_vector_arith:
        return BlockCategory.SCALAR_VEC
    if has_vector_arith:
        return BlockCategory.VEC
    return BlockCategory.SCALAR
