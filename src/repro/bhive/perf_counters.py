"""Simulated hardware performance counters.

Fine-grained measurement frameworks (Agner Fog's scripts, uops.info) rely on
per-event hardware performance counters; the paper's related-work discussion
(Section VIII-A) notes that such counters are not always present — AMD Zen
lacks per-port counters — and are not always reliable (Weaver & McKee).  This
module models that measurement substrate on top of the reference hardware
model so the repository can also reproduce the *measurement-based* route to
parameter values that Section II-B compares DiffTune against:

* :class:`CounterSpec` describes which events a microarchitecture exposes.
* :class:`PerformanceCounterUnit` measures a block and returns event counts
  (cycles, retired instructions and micro-ops, per-port dispatch counts), with
  optional sampling noise and multiplexing error, mirroring how real counters
  misbehave.
* :func:`measure_instruction_latency` recovers an instruction's latency the
  way measurement frameworks do — by timing a dependency chain of copies of
  the instruction — which is exactly the methodology whose mismatch with
  llvm-mca's WriteLatency semantics motivates DiffTune (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.llvm_mca.params import NUM_PORTS
from repro.targets.hardware import HardwareModel
from repro.targets.uarch import UarchSpec


@dataclass(frozen=True)
class CounterSpec:
    """Which counter events a microarchitecture exposes.

    Attributes:
        has_cycle_counter: Core clock cycles (every target has this).
        has_uop_counters: Retired micro-op counts.
        has_port_counters: Per-execution-port dispatch counts.  False for the
            AMD targets, matching the lack of per-port counters on Zen that
            the paper points out.
        multiplexed: Whether reading many events at once requires time
            multiplexing, which introduces scaling error.
    """

    has_cycle_counter: bool = True
    has_uop_counters: bool = True
    has_port_counters: bool = True
    multiplexed: bool = False

    @classmethod
    def for_uarch(cls, spec: UarchSpec) -> "CounterSpec":
        """Counter availability for one of the modeled microarchitectures."""
        is_amd = spec.vendor.lower() == "amd"
        return cls(has_cycle_counter=True, has_uop_counters=True,
                   has_port_counters=not is_amd, multiplexed=is_amd)


@dataclass
class CounterReading:
    """One measurement of a block's counter events.

    Attributes:
        cycles: Measured core cycles per block iteration.
        instructions_retired: Instructions retired per iteration.
        uops_retired: Micro-ops retired per iteration (None if unsupported).
        port_dispatch: Micro-ops dispatched per port per iteration (None if
            the target has no per-port counters).
    """

    cycles: float
    instructions_retired: float
    uops_retired: Optional[float]
    port_dispatch: Optional[List[float]]

    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions_retired / max(self.cycles, 1e-9)


class PerformanceCounterUnit:
    """Measures blocks on the hardware model through simulated counters."""

    def __init__(self, hardware: HardwareModel, spec: Optional[CounterSpec] = None,
                 noise: float = 0.01, seed: int = 0) -> None:
        """Create a counter unit.

        Args:
            hardware: The reference hardware model being "measured".
            spec: Counter availability; defaults to the hardware's uarch.
            noise: Relative sampling noise applied to every event count.
            multiplexing adds further error when the spec says so.
            seed: Noise generator seed.
        """
        if noise < 0.0:
            raise ValueError("noise must be non-negative")
        self.hardware = hardware
        self.spec = spec or CounterSpec.for_uarch(hardware.spec)
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Event synthesis
    # ------------------------------------------------------------------
    def _noisy(self, value: float, extra_noise: float = 0.0) -> float:
        total_noise = self.noise + extra_noise
        if total_noise <= 0.0:
            return float(value)
        return float(value * (1.0 + self._rng.normal(0.0, total_noise)))

    def _port_distribution(self, block: BasicBlock) -> List[float]:
        """Micro-ops dispatched per port per iteration, from the uarch's mapping."""
        per_port = [0.0] * NUM_PORTS
        for instruction in block:
            documented = self.hardware.spec.documented_for(instruction.opcode.uop_class)
            port_indices = [port for port, _cycles in documented.ports] or [0]
            share = max(documented.micro_ops, 1) / len(port_indices)
            for port in port_indices:
                if port < NUM_PORTS:
                    per_port[port] += share
        return per_port

    def read(self, block: BasicBlock) -> CounterReading:
        """Measure one block and return its (noisy) counter events."""
        cycles = self.hardware.measure(block, noisy=True, rng=self._rng)
        multiplex_error = 0.03 if self.spec.multiplexed else 0.0
        instructions = self._noisy(len(block), multiplex_error)
        uops = None
        if self.spec.has_uop_counters:
            true_uops = sum(max(self.hardware.spec.true_for(
                instruction.opcode.uop_class).micro_ops, 1.0) for instruction in block)
            uops = self._noisy(true_uops, multiplex_error)
        ports = None
        if self.spec.has_port_counters:
            ports = [self._noisy(value, multiplex_error)
                     for value in self._port_distribution(block)]
        if not self.spec.has_cycle_counter:
            raise RuntimeError("target exposes no cycle counter")
        return CounterReading(cycles=float(cycles), instructions_retired=instructions,
                              uops_retired=uops, port_dispatch=ports)

    def read_many(self, blocks: Sequence[BasicBlock]) -> List[CounterReading]:
        return [self.read(block) for block in blocks]


def measure_instruction_latency(hardware: HardwareModel, instruction: Instruction,
                                chain_length: int = 8, runs: int = 3,
                                seed: int = 0) -> Dict[str, float]:
    """Measure an instruction's latency with a dependency-chain microbenchmark.

    This is the methodology of Agner Fog's tables and uops.info: build a chain
    of ``chain_length`` copies of the instruction, each consuming the previous
    copy's result, time it, and divide by the chain length.  Returns the
    minimum, median and maximum over ``runs`` repetitions — the three summary
    statistics whose disagreement with llvm-mca's single WriteLatency value
    Section II-B quantifies (103% / 150% / 218% error).
    """
    if chain_length < 1 or runs < 1:
        raise ValueError("chain_length and runs must be >= 1")
    block = BasicBlock(instructions=tuple([instruction] * chain_length))
    rng = np.random.default_rng(seed)
    per_copy: List[float] = []
    for _ in range(runs):
        timing = hardware.measure(block, noisy=True, rng=rng)
        per_copy.append(timing / chain_length)
    return {
        "min": float(np.min(per_copy)),
        "median": float(np.median(per_copy)),
        "max": float(np.max(per_copy)),
    }
