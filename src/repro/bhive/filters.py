"""Dataset filters mirroring BHive's measurement-quality screens.

Chen et al. filter their measured blocks before using them to validate
performance models — most importantly they "remove all basic blocks
potentially affected by virtual page aliasing" (Section V-A of the DiffTune
paper), and they discard blocks whose repeated measurements disagree.  The
synthetic dataset in this reproduction is generated rather than measured, but
the same screens are still meaningful (and the measurement harness injects
noise), so this module provides them:

* :func:`filter_page_aliasing_risk` — drop blocks whose memory operands touch
  distinct addresses that alias in the low page-offset bits (the condition
  under which BHive's unrolled measurement loop suffers 4K aliasing stalls).
* :func:`filter_unstable_measurements` — drop blocks whose repeated
  measurements have a high coefficient of variation.
* :func:`filter_timing_outliers` — drop blocks whose timing is implausibly far
  from the per-length trend (harness failures in BHive; generator or hardware
  model artifacts here).
* :func:`filter_block_length` — keep blocks within a length range.
* :class:`FilterReport` — bookkeeping of what each filter removed, so dataset
  statistics tables can report the screening exactly like BHive does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bhive.dataset import LabeledBlock
from repro.isa.basic_block import BasicBlock

#: Page size whose low-order offset bits govern 4K aliasing.
PAGE_SIZE_BYTES = 4096

#: Two memory accesses whose page offsets fall within this many bytes of each
#: other (but at different addresses) are treated as an aliasing risk.
ALIASING_WINDOW_BYTES = 64


@dataclass
class FilterReport:
    """What a filtering pass kept and removed.

    Attributes:
        kept: Examples that survived every filter.
        removed: Mapping from filter name to the examples that filter dropped.
    """

    kept: List[LabeledBlock]
    removed: Dict[str, List[LabeledBlock]] = field(default_factory=dict)

    @property
    def num_removed(self) -> int:
        return sum(len(examples) for examples in self.removed.values())

    def removal_summary(self) -> Dict[str, int]:
        """Filter name -> number of removed blocks (for dataset tables)."""
        return {name: len(examples) for name, examples in self.removed.items()}


# ----------------------------------------------------------------------
# Individual predicates
# ----------------------------------------------------------------------
def has_page_aliasing_risk(block: BasicBlock) -> bool:
    """Whether two memory operands in the block may alias in the same page offset.

    BHive times blocks by unrolling them in a loop over a small mapped arena;
    two accesses to *different* locations whose addresses share low-order bits
    contend for the same cache set / store buffer entry and produce timings
    that do not reflect steady-state behaviour.  The generator's memory
    operands use explicit base registers and displacements, so the page offset
    is simply the displacement modulo the page size.
    """
    offsets: List[Tuple[int, Optional[str], Optional[str], int]] = []
    for instruction in block:
        location = instruction.memory_location()
        if location is None:
            continue
        offsets.append(location)
    for first_index in range(len(offsets)):
        for second_index in range(first_index + 1, len(offsets)):
            first, second = offsets[first_index], offsets[second_index]
            if first == second:
                continue  # same location: a real dependency, not aliasing noise
            first_offset = first[0] % PAGE_SIZE_BYTES
            second_offset = second[0] % PAGE_SIZE_BYTES
            if abs(first_offset - second_offset) < ALIASING_WINDOW_BYTES \
                    and (first[1] != second[1] or first[2] != second[2]):
                return True
    return False


def measurement_instability(timings: Sequence[float]) -> float:
    """Coefficient of variation of repeated measurements of one block."""
    values = np.asarray(list(timings), dtype=np.float64)
    if values.size < 2:
        return 0.0
    mean = float(values.mean())
    if mean <= 0.0:
        return float("inf")
    return float(values.std() / mean)


# ----------------------------------------------------------------------
# Filters over example lists
# ----------------------------------------------------------------------
def filter_page_aliasing_risk(examples: Sequence[LabeledBlock]
                              ) -> Tuple[List[LabeledBlock], List[LabeledBlock]]:
    """Split examples into (kept, removed-for-aliasing-risk)."""
    kept, removed = [], []
    for example in examples:
        (removed if has_page_aliasing_risk(example.block) else kept).append(example)
    return kept, removed


def filter_unstable_measurements(examples: Sequence[LabeledBlock],
                                 repeated_timings: Dict[int, Sequence[float]],
                                 max_coefficient_of_variation: float = 0.10
                                 ) -> Tuple[List[LabeledBlock], List[LabeledBlock]]:
    """Drop examples whose repeated measurements disagree too much.

    Args:
        examples: Candidate examples.
        repeated_timings: Index into ``examples`` -> the per-run timings the
            measurement harness recorded for that block.  Examples without an
            entry are kept (they were measured once).
        max_coefficient_of_variation: Stability threshold.
    """
    if max_coefficient_of_variation <= 0.0:
        raise ValueError("max_coefficient_of_variation must be positive")
    kept, removed = [], []
    for index, example in enumerate(examples):
        runs = repeated_timings.get(index)
        if runs is not None and measurement_instability(runs) > max_coefficient_of_variation:
            removed.append(example)
        else:
            kept.append(example)
    return kept, removed


def filter_timing_outliers(examples: Sequence[LabeledBlock],
                           max_cycles_per_instruction: float = 25.0,
                           min_timing: float = 0.05
                           ) -> Tuple[List[LabeledBlock], List[LabeledBlock]]:
    """Drop blocks whose timing is implausible for their length."""
    if max_cycles_per_instruction <= 0.0 or min_timing <= 0.0:
        raise ValueError("outlier thresholds must be positive")
    kept, removed = [], []
    for example in examples:
        per_instruction = example.timing / max(len(example.block), 1)
        if example.timing < min_timing or per_instruction > max_cycles_per_instruction:
            removed.append(example)
        else:
            kept.append(example)
    return kept, removed


def filter_block_length(examples: Sequence[LabeledBlock], min_length: int = 1,
                        max_length: int = 256
                        ) -> Tuple[List[LabeledBlock], List[LabeledBlock]]:
    """Keep blocks whose length is within ``[min_length, max_length]``.

    256 is the longest block in the BHive dataset (Table III).
    """
    if min_length < 1 or max_length < min_length:
        raise ValueError("invalid length range")
    kept, removed = [], []
    for example in examples:
        if min_length <= len(example.block) <= max_length:
            kept.append(example)
        else:
            removed.append(example)
    return kept, removed


def apply_bhive_filters(examples: Sequence[LabeledBlock],
                        repeated_timings: Optional[Dict[int, Sequence[float]]] = None,
                        max_coefficient_of_variation: float = 0.10,
                        max_cycles_per_instruction: float = 25.0,
                        max_length: int = 256) -> FilterReport:
    """Apply the full BHive-style screening pipeline in the published order.

    Length screening first (it is a static property), then aliasing risk,
    then measurement stability, then the timing-plausibility screen.
    """
    report = FilterReport(kept=list(examples))
    report.kept, removed = filter_block_length(report.kept, max_length=max_length)
    report.removed["length"] = removed
    report.kept, removed = filter_page_aliasing_risk(report.kept)
    report.removed["page_aliasing"] = removed
    if repeated_timings is not None:
        report.kept, removed = filter_unstable_measurements(
            report.kept, repeated_timings, max_coefficient_of_variation)
        report.removed["unstable_measurement"] = removed
    report.kept, removed = filter_timing_outliers(
        report.kept, max_cycles_per_instruction=max_cycles_per_instruction)
    report.removed["timing_outlier"] = removed
    return report
