"""Dataset container: labeled blocks, splits, statistics, serialization.

A :class:`BasicBlockDataset` holds basic blocks together with their measured
timings for one microarchitecture, split 80/10/10 into train / validation /
test sets that are block-wise disjoint (no identical block text appears in
two splits), matching the protocol in Section V-A of the paper.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.bhive.categories import BlockCategory, categorize_block
from repro.bhive.generator import BlockGenerator
from repro.bhive.measurement import MeasurementHarness
from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable
from repro.isa.parser import parse_block
from repro.targets import get_uarch
from repro.targets.hardware import HardwareModel


@dataclass(frozen=True)
class LabeledBlock:
    """A basic block with its measured ground-truth timing."""

    block: BasicBlock
    timing: float

    @property
    def category(self) -> BlockCategory:
        return categorize_block(self.block)


@dataclass
class DatasetSplits:
    """Index lists defining the train / validation / test partition."""

    train: List[int]
    validation: List[int]
    test: List[int]

    def all_indices(self) -> List[int]:
        return list(self.train) + list(self.validation) + list(self.test)


class BasicBlockDataset:
    """Labeled basic blocks for one microarchitecture, with splits."""

    def __init__(self, examples: Sequence[LabeledBlock], uarch_name: str,
                 splits: Optional[DatasetSplits] = None, seed: int = 0) -> None:
        if not examples:
            raise ValueError("dataset requires at least one example")
        self.examples: List[LabeledBlock] = list(examples)
        self.uarch_name = uarch_name
        self.splits = splits or self._default_splits(seed)

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _default_splits(self, seed: int) -> DatasetSplits:
        """80/10/10 split, block-wise disjoint on the assembly text."""
        rng = np.random.default_rng(seed)
        by_key: Dict[Tuple[str, ...], List[int]] = {}
        for index, example in enumerate(self.examples):
            by_key.setdefault(example.block.structural_key(), []).append(index)
        unique_keys = list(by_key.keys())
        order = rng.permutation(len(unique_keys))
        train_count = int(0.8 * len(unique_keys))
        validation_count = int(0.1 * len(unique_keys))
        train, validation, test = [], [], []
        for position, key_index in enumerate(order):
            indices = by_key[unique_keys[key_index]]
            if position < train_count:
                train.extend(indices)
            elif position < train_count + validation_count:
                validation.extend(indices)
            else:
                test.extend(indices)
        if not validation:
            validation = train[-1:]
        if not test:
            test = train[-1:]
        return DatasetSplits(train=train, validation=validation, test=test)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> LabeledBlock:
        return self.examples[index]

    def __iter__(self) -> Iterator[LabeledBlock]:
        return iter(self.examples)

    def subset(self, indices: Sequence[int]) -> List[LabeledBlock]:
        return [self.examples[index] for index in indices]

    @property
    def train_examples(self) -> List[LabeledBlock]:
        return self.subset(self.splits.train)

    @property
    def validation_examples(self) -> List[LabeledBlock]:
        return self.subset(self.splits.validation)

    @property
    def test_examples(self) -> List[LabeledBlock]:
        return self.subset(self.splits.test)

    def blocks(self) -> List[BasicBlock]:
        return [example.block for example in self.examples]

    def timings(self) -> np.ndarray:
        return np.array([example.timing for example in self.examples], dtype=np.float64)

    # ------------------------------------------------------------------
    # Statistics (Table III)
    # ------------------------------------------------------------------
    def summary_statistics(self) -> Dict[str, float]:
        """Summary statistics mirroring Table III of the paper."""
        lengths = np.array([len(example.block) for example in self.examples])
        timings = self.timings()
        unique_opcodes = set()
        train_opcodes, validation_opcodes, test_opcodes = set(), set(), set()
        for split_name, indices, bucket in (
                ("train", self.splits.train, train_opcodes),
                ("validation", self.splits.validation, validation_opcodes),
                ("test", self.splits.test, test_opcodes)):
            for index in indices:
                names = self.examples[index].block.unique_opcode_names()
                bucket.update(names)
                unique_opcodes.update(names)
        return {
            "num_blocks_total": len(self.examples),
            "num_blocks_train": len(self.splits.train),
            "num_blocks_validation": len(self.splits.validation),
            "num_blocks_test": len(self.splits.test),
            "block_length_min": int(lengths.min()),
            "block_length_median": float(np.median(lengths)),
            "block_length_mean": float(lengths.mean()),
            "block_length_max": int(lengths.max()),
            "median_block_timing": float(np.median(timings)),
            "unique_opcodes_train": len(train_opcodes),
            "unique_opcodes_validation": len(validation_opcodes),
            "unique_opcodes_test": len(test_opcodes),
            "unique_opcodes_total": len(unique_opcodes),
        }

    def per_application_indices(self) -> Dict[str, List[int]]:
        """Test-set indices grouped by source application (Table V, top)."""
        groups: Dict[str, List[int]] = {}
        for index in self.splits.test:
            for application in self.examples[index].block.source_applications:
                groups.setdefault(application, []).append(index)
        return groups

    def per_category_indices(self) -> Dict[BlockCategory, List[int]]:
        """Test-set indices grouped by resource category (Table V, bottom)."""
        groups: Dict[BlockCategory, List[int]] = {}
        for index in self.splits.test:
            category = self.examples[index].category
            groups.setdefault(category, []).append(index)
        return groups

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save_json(self, path: str) -> None:
        payload = {
            "uarch": self.uarch_name,
            "examples": [
                {
                    "assembly": example.block.to_assembly(),
                    "applications": list(example.block.source_applications),
                    "timing": example.timing,
                }
                for example in self.examples
            ],
            "splits": {
                "train": self.splits.train,
                "validation": self.splits.validation,
                "test": self.splits.test,
            },
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle)

    @classmethod
    def load_json(cls, path: str,
                  opcode_table: Optional[OpcodeTable] = None) -> "BasicBlockDataset":
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        with open(path) as handle:
            payload = json.load(handle)
        examples = []
        for entry in payload["examples"]:
            block = parse_block(entry["assembly"], opcode_table,
                                source_applications=entry.get("applications", ()))
            examples.append(LabeledBlock(block=block, timing=float(entry["timing"])))
        splits = DatasetSplits(train=payload["splits"]["train"],
                               validation=payload["splits"]["validation"],
                               test=payload["splits"]["test"])
        return cls(examples=examples, uarch_name=payload["uarch"], splits=splits)


def build_dataset(uarch_name: str = "haswell", num_blocks: int = 2000, seed: int = 0,
                  opcode_table: Optional[OpcodeTable] = None,
                  generator: Optional[BlockGenerator] = None) -> BasicBlockDataset:
    """Generate and measure a dataset for one microarchitecture.

    This is the top-level convenience used by the experiments: generate
    ``num_blocks`` synthetic blocks, time them on the target's hardware model
    (dropping unstable measurements), and wrap them with an 80/10/10 split.
    """
    spec = get_uarch(uarch_name)
    generator = generator or BlockGenerator(opcode_table=opcode_table, seed=seed)
    hardware = HardwareModel(spec, seed=seed + 1)
    harness = MeasurementHarness(hardware, seed=seed + 2)
    blocks = generator.generate_blocks(num_blocks)
    kept_blocks, timings = harness.measure_blocks(blocks)
    examples = [LabeledBlock(block=block, timing=float(timing))
                for block, timing in zip(kept_blocks, timings)]
    return BasicBlockDataset(examples=examples, uarch_name=spec.name, seed=seed)
