"""A BHive-like basic-block dataset substrate.

The paper trains and evaluates against the BHive dataset (Chen et al., 2019):
~287k basic blocks sampled from real applications, each timed on several
microarchitectures under the convention that the block executes repeatedly in
a loop with all memory resident in L1.

This package provides the equivalent built entirely from the repository's own
substrates:

* :mod:`~repro.bhive.applications` — per-application generation profiles
  (OpenBLAS, Redis, SQLite, GZip, TensorFlow, Clang/LLVM, Eigen, Embree,
  FFmpeg) describing instruction mix and block-length distributions.
* :mod:`~repro.bhive.generator` — the synthetic block generator.
* :mod:`~repro.bhive.categories` — the Scalar / Vec / Scalar-Vec / Ld / St /
  Ld-St category classification used for the per-category error analysis.
* :mod:`~repro.bhive.measurement` — the timing harness that measures blocks on
  a :class:`~repro.targets.hardware.HardwareModel` (the hardware substitute).
* :mod:`~repro.bhive.dataset` — the dataset container with train/validation/
  test splits, summary statistics (Table III), and (de)serialization.
* :mod:`~repro.bhive.filters` — BHive-style measurement-quality screens
  (page-aliasing risk, unstable measurements, timing outliers).
* :mod:`~repro.bhive.perf_counters` — simulated hardware performance counters
  and latency microbenchmarks (the measurement-based route of Section II-B).
"""

from repro.bhive.applications import APPLICATION_PROFILES, ApplicationProfile
from repro.bhive.categories import BlockCategory, categorize_block
from repro.bhive.generator import BlockGenerator
from repro.bhive.measurement import MeasurementHarness
from repro.bhive.dataset import BasicBlockDataset, DatasetSplits, LabeledBlock, build_dataset
from repro.bhive.filters import (FilterReport, apply_bhive_filters, filter_block_length,
                                 filter_page_aliasing_risk, filter_timing_outliers,
                                 filter_unstable_measurements, has_page_aliasing_risk,
                                 measurement_instability)
from repro.bhive.perf_counters import (CounterReading, CounterSpec, PerformanceCounterUnit,
                                       measure_instruction_latency)

__all__ = [
    "APPLICATION_PROFILES",
    "ApplicationProfile",
    "BlockCategory",
    "categorize_block",
    "BlockGenerator",
    "MeasurementHarness",
    "BasicBlockDataset",
    "DatasetSplits",
    "LabeledBlock",
    "build_dataset",
    "FilterReport",
    "apply_bhive_filters",
    "filter_block_length",
    "filter_page_aliasing_risk",
    "filter_timing_outliers",
    "filter_unstable_measurements",
    "has_page_aliasing_risk",
    "measurement_instability",
    "CounterSpec",
    "CounterReading",
    "PerformanceCounterUnit",
    "measure_instruction_latency",
]
