"""Synthetic basic-block generator.

Generates basic blocks that statistically resemble the BHive corpus: blocks
drawn from per-application profiles with realistic instruction mixes, register
dependency chains, memory reuse (which creates store-to-load pairs), zero
idioms, stack traffic, and a long-tailed length distribution (median ~3,
mean ~5, max in the hundreds).

The generator only uses the public ISA layer, so every generated block can be
parsed back from its assembly text and simulated by both simulators and the
hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.bhive.applications import APPLICATION_PROFILES, ApplicationProfile
from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable, OperandForm, UopClass
from repro.isa.operands import ImmediateOperand, MemoryOperand, Operand, RegisterOperand
from repro.isa.registers import GPR32, GPR64, XMM

#: Instruction kinds the application profiles reference, mapped to the opcode
#: mnemonic pools the generator chooses from.
_KIND_MNEMONICS: Dict[str, Sequence[str]] = {
    "alu": ("add", "sub", "and", "or", "xor", "cmp", "test", "adc"),
    "mul": ("imul",),
    "div": ("div", "idiv"),
    "shift": ("shl", "shr", "sar", "rol"),
    "lea": ("lea",),
    "mov": ("mov",),
    "load": ("mov",),
    "store": ("mov",),
    "rmw": ("add", "sub", "and", "or", "xor"),
    "push_pop": ("push", "pop"),
    "cmov": ("cmove", "cmovne", "cmovl", "cmovg", "cmovb", "cmova"),
    "setcc": ("sete", "setne", "setl", "setg"),
    "zero_idiom": ("xor",),
    "vec_alu": ("addps", "addpd", "subps", "addss", "addsd", "paddd", "pand", "minps", "maxps"),
    "vec_mul": ("mulps", "mulpd", "mulss", "mulsd", "vfmadd213ps", "vfmadd231sd"),
    "vec_div": ("divps", "divpd", "divss", "divsd", "sqrtps", "sqrtsd"),
    "vec_mov": ("movaps", "movups", "movdqa", "movss", "movsd", "shufps", "pshufd"),
    "cvt": ("cvtsi2ss", "cvtsi2sd", "cvtss2si", "cvttsd2si"),
}

_SCALAR_WIDTHS = (32, 64)
_MEMORY_BASES = ("rsp", "rbp", "rsi", "rdi", "r14", "r15")


@dataclass
class _GeneratorState:
    """Registers and addresses recently written, used to create dependencies."""

    recent_gprs: List[str]
    recent_xmms: List[str]
    recent_addresses: List[MemoryOperand]


class BlockGenerator:
    """Generates synthetic basic blocks from application profiles."""

    def __init__(self, opcode_table: Optional[OpcodeTable] = None, seed: int = 0) -> None:
        self.opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        self._rng = np.random.default_rng(seed)
        self._profiles = list(APPLICATION_PROFILES)
        weights = np.array([profile.weight for profile in self._profiles], dtype=np.float64)
        self._profile_probabilities = weights / weights.sum()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate_block(self, profile: Optional[ApplicationProfile] = None) -> BasicBlock:
        """Generate one basic block, optionally from a specific profile."""
        rng = self._rng
        if profile is None:
            profile = self._profiles[rng.choice(len(self._profiles),
                                                p=self._profile_probabilities)]
        length = self._sample_length(profile)
        state = _GeneratorState(recent_gprs=[], recent_xmms=[], recent_addresses=[])
        instructions: List[Instruction] = []
        kinds = list(profile.class_mix.keys())
        kind_weights = np.array([profile.class_mix[kind] for kind in kinds], dtype=np.float64)
        kind_probabilities = kind_weights / kind_weights.sum()
        attempts = 0
        while len(instructions) < length and attempts < length * 10:
            attempts += 1
            kind = kinds[rng.choice(len(kinds), p=kind_probabilities)]
            instruction = self._generate_instruction(kind, profile, state)
            if instruction is not None:
                instructions.append(instruction)
        if not instructions:
            instructions.append(self._generate_instruction("alu", profile, state))
        # A block may be attributed to more than one application in BHive;
        # occasionally add a second source application.
        applications = [profile.name]
        if rng.random() < 0.08:
            other = self._profiles[rng.choice(len(self._profiles),
                                              p=self._profile_probabilities)]
            if other.name != profile.name:
                applications.append(other.name)
        return BasicBlock(instructions=tuple(instructions),
                          source_applications=tuple(applications))

    def iter_blocks(self, count: int) -> Iterator[BasicBlock]:
        """Stream ``count`` blocks across the application mix.

        A true generator: blocks are produced lazily, one at a time, drawing
        from the same rng stream as :meth:`generate_blocks`, so corpus-scale
        callers can shard to disk without materializing the whole list.
        """
        for _ in range(count):
            yield self.generate_block()

    def generate_blocks(self, count: int) -> List[BasicBlock]:
        """Generate ``count`` blocks across the application mix."""
        return list(self.iter_blocks(count))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_length(self, profile: ApplicationProfile) -> int:
        """Long-tailed block length: geometric bulk with an occasional long block."""
        rng = self._rng
        mean = max(1.5, profile.mean_block_length)
        length = 1 + rng.geometric(1.0 / (mean - 0.5))
        if rng.random() < 0.01:
            length += int(rng.integers(16, profile.max_block_length))
        return int(min(length, profile.max_block_length))

    def _pick_gpr(self, state: _GeneratorState, profile: ApplicationProfile,
                  width: int, writable: bool = False) -> str:
        rng = self._rng
        pool = GPR64 if width == 64 else GPR32
        # Avoid using rsp as a scratch destination register.
        usable = [reg for reg in pool if reg not in ("rsp", "esp")]
        if state.recent_gprs and rng.random() < profile.dependency_density:
            canonical = state.recent_gprs[int(rng.integers(len(state.recent_gprs)))]
            # Translate the canonical 64-bit name to the requested width.
            index = GPR64.index(canonical) if canonical in GPR64 else None
            if index is not None:
                candidate = pool[index]
                if candidate not in ("rsp", "esp"):
                    return candidate
        return usable[int(rng.integers(len(usable)))]

    def _pick_xmm(self, state: _GeneratorState, profile: ApplicationProfile) -> str:
        rng = self._rng
        if state.recent_xmms and rng.random() < profile.dependency_density:
            return state.recent_xmms[int(rng.integers(len(state.recent_xmms)))]
        return XMM[int(rng.integers(len(XMM)))]

    def _pick_memory(self, state: _GeneratorState, profile: ApplicationProfile) -> MemoryOperand:
        rng = self._rng
        if state.recent_addresses and rng.random() < profile.memory_locality:
            return state.recent_addresses[int(rng.integers(len(state.recent_addresses)))]
        base = _MEMORY_BASES[int(rng.integers(len(_MEMORY_BASES)))]
        displacement = int(rng.integers(0, 33)) * 8
        operand = MemoryOperand(displacement=displacement, base=base)
        state.recent_addresses.append(operand)
        if len(state.recent_addresses) > 8:
            state.recent_addresses.pop(0)
        return operand

    def _remember_write(self, state: _GeneratorState, register: str) -> None:
        from repro.isa.registers import canonical_register

        canonical = canonical_register(register)
        if canonical.startswith("ymm"):
            name = f"xmm{canonical[3:]}"
            if name in state.recent_xmms:
                state.recent_xmms.remove(name)
            state.recent_xmms.append(name)
            if len(state.recent_xmms) > 6:
                state.recent_xmms.pop(0)
        else:
            if canonical in state.recent_gprs:
                state.recent_gprs.remove(canonical)
            state.recent_gprs.append(canonical)
            if len(state.recent_gprs) > 6:
                state.recent_gprs.pop(0)

    def _lookup(self, name: str) -> Optional[Instruction]:
        return None

    def _make(self, opcode_name: str, operands: Tuple[Operand, ...]) -> Optional[Instruction]:
        opcode = self.opcode_table.get(opcode_name)
        if opcode is None:
            return None
        return Instruction(opcode=opcode, operands=operands)

    def _generate_instruction(self, kind: str, profile: ApplicationProfile,
                              state: _GeneratorState) -> Optional[Instruction]:
        rng = self._rng
        mnemonics = _KIND_MNEMONICS.get(kind)
        if not mnemonics:
            return None
        mnemonic = mnemonics[int(rng.integers(len(mnemonics)))]
        width = int(_SCALAR_WIDTHS[int(rng.integers(len(_SCALAR_WIDTHS)))])
        suffix = "64" if width == 64 else "32"

        if kind == "zero_idiom":
            register = self._pick_gpr(state, profile, 32, writable=True)
            self._remember_write(state, register)
            return self._make("XOR32rr", (RegisterOperand(register), RegisterOperand(register)))

        if kind in ("alu", "mul"):
            upper = mnemonic.upper()
            form = rng.choice(["rr", "ri", "rm"], p=[0.5, 0.3, 0.2])
            destination = self._pick_gpr(state, profile, width, writable=True)
            if form == "rr":
                source = self._pick_gpr(state, profile, width)
                instruction = self._make(f"{upper}{suffix}rr",
                                         (RegisterOperand(source), RegisterOperand(destination)))
            elif form == "ri":
                instruction = self._make(f"{upper}{suffix}ri",
                                         (ImmediateOperand(int(rng.integers(1, 256))),
                                          RegisterOperand(destination)))
            else:
                memory = self._pick_memory(state, profile)
                instruction = self._make(f"{upper}{suffix}rm",
                                         (memory, RegisterOperand(destination)))
            if instruction is not None and mnemonic not in ("cmp", "test"):
                self._remember_write(state, destination)
            return instruction

        if kind == "div":
            return self._make(f"{mnemonic.upper()}{suffix}r",
                              (RegisterOperand(self._pick_gpr(state, profile, width)),))

        if kind == "shift":
            destination = self._pick_gpr(state, profile, width, writable=True)
            self._remember_write(state, destination)
            return self._make(f"{mnemonic.upper()}{suffix}ri",
                              (ImmediateOperand(int(rng.integers(1, 32))),
                               RegisterOperand(destination)))

        if kind == "lea":
            destination = self._pick_gpr(state, profile, width, writable=True)
            memory = self._pick_memory(state, profile)
            self._remember_write(state, destination)
            return self._make(f"LEA{suffix}r", (memory, RegisterOperand(destination)))

        if kind == "mov":
            destination = self._pick_gpr(state, profile, width, writable=True)
            if rng.random() < 0.5:
                source = self._pick_gpr(state, profile, width)
                instruction = self._make(f"MOV{suffix}rr",
                                         (RegisterOperand(source), RegisterOperand(destination)))
            else:
                instruction = self._make(f"MOV{suffix}ri",
                                         (ImmediateOperand(int(rng.integers(0, 1024))),
                                          RegisterOperand(destination)))
            self._remember_write(state, destination)
            return instruction

        if kind == "load":
            destination = self._pick_gpr(state, profile, width, writable=True)
            memory = self._pick_memory(state, profile)
            self._remember_write(state, destination)
            return self._make(f"MOV{suffix}rm", (memory, RegisterOperand(destination)))

        if kind == "store":
            source = self._pick_gpr(state, profile, width)
            memory = self._pick_memory(state, profile)
            return self._make(f"MOV{suffix}mr", (RegisterOperand(source), memory))

        if kind == "rmw":
            source = self._pick_gpr(state, profile, width)
            memory = self._pick_memory(state, profile)
            return self._make(f"{mnemonic.upper()}{suffix}mr", (RegisterOperand(source), memory))

        if kind == "push_pop":
            register = self._pick_gpr(state, profile, 64)
            if mnemonic == "push":
                return self._make("PUSH64r", (RegisterOperand(register),))
            self._remember_write(state, register)
            return self._make("POP64r", (RegisterOperand(register),))

        if kind == "cmov":
            destination = self._pick_gpr(state, profile, width, writable=True)
            source = self._pick_gpr(state, profile, width)
            self._remember_write(state, destination)
            return self._make(f"CMOV{mnemonic[4:].upper()}{suffix}rr",
                              (RegisterOperand(source), RegisterOperand(destination)))

        if kind == "setcc":
            from repro.isa.registers import GPR8

            register = GPR8[int(rng.integers(len(GPR8)))]
            return self._make(f"SET{mnemonic[3:].upper()}r", (RegisterOperand(register),))

        if kind in ("vec_alu", "vec_mul", "vec_div", "vec_mov", "cvt"):
            upper = mnemonic.upper()
            destination = self._pick_xmm(state, profile)
            use_memory = rng.random() < 0.3
            if kind == "vec_mov" and rng.random() < 0.3:
                # Vector store.
                memory = self._pick_memory(state, profile)
                return self._make(f"{upper}mr", (RegisterOperand(destination), memory))
            if use_memory:
                memory = self._pick_memory(state, profile)
                instruction = self._make(f"{upper}rm", (memory, RegisterOperand(destination)))
            else:
                source = self._pick_xmm(state, profile)
                instruction = self._make(f"{upper}rr",
                                         (RegisterOperand(source), RegisterOperand(destination)))
            if instruction is not None:
                self._remember_write(state, destination)
            return instruction

        return None
