"""Per-application block-generation profiles.

BHive samples its basic blocks from a diverse set of real applications; the
paper's per-application error breakdown (Table V) groups test blocks by their
source application.  Each :class:`ApplicationProfile` here describes, for one
application, the statistical shape of its basic blocks: how long they tend to
be, how memory-heavy they are, how much vector code they contain, and which
execution classes dominate.  The generator samples blocks according to these
profiles so the synthetic dataset reproduces the *kind* of diversity BHive
has, even though the individual blocks are synthetic.

The relative block counts mirror the proportions reported in Table V of the
paper (Clang/LLVM dominates, TensorFlow is second, GZip is tiny, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical generation profile for one source application.

    Attributes:
        name: Application name as used in Table V.
        weight: Relative frequency of blocks drawn from this application.
        mean_block_length: Mean of the (geometric-ish) block length
            distribution.
        max_block_length: Hard cap on block length.
        class_mix: Relative weights over generator instruction kinds
            (``alu``, ``mul``, ``div``, ``shift``, ``lea``, ``load``,
            ``store``, ``rmw``, ``push_pop``, ``vec_alu``, ``vec_mul``,
            ``vec_div``, ``vec_mov``, ``cmov``, ``zero_idiom``, ``mov``).
        dependency_density: Probability that an instruction reuses a recently
            written register as one of its sources (creates chains).
        memory_locality: Probability that a memory access reuses a previously
            used address expression (creates store→load pairs).
    """

    name: str
    weight: float
    mean_block_length: float
    max_block_length: int
    class_mix: Dict[str, float]
    dependency_density: float = 0.45
    memory_locality: float = 0.35


def _mix(**kwargs: float) -> Dict[str, float]:
    return dict(kwargs)


APPLICATION_PROFILES: Tuple[ApplicationProfile, ...] = (
    ApplicationProfile(
        name="OpenBLAS", weight=1478, mean_block_length=7.0, max_block_length=96,
        class_mix=_mix(alu=1.5, mul=0.3, shift=0.3, lea=0.8, load=2.5, store=1.0, rmw=0.2,
                       vec_alu=2.0, vec_mul=2.5, vec_mov=1.5, mov=1.0, zero_idiom=0.2),
        dependency_density=0.55, memory_locality=0.30),
    ApplicationProfile(
        name="Redis", weight=839, mean_block_length=4.0, max_block_length=48,
        class_mix=_mix(alu=3.0, mul=0.2, shift=0.5, lea=1.0, load=2.0, store=1.0, rmw=0.5,
                       push_pop=1.0, cmov=0.4, mov=2.0, zero_idiom=0.5),
        dependency_density=0.40, memory_locality=0.40),
    ApplicationProfile(
        name="SQLite", weight=764, mean_block_length=4.5, max_block_length=64,
        class_mix=_mix(alu=3.0, mul=0.2, div=0.05, shift=0.6, lea=1.2, load=2.2, store=1.2,
                       rmw=0.4, push_pop=0.8, cmov=0.5, mov=2.0, zero_idiom=0.4),
        dependency_density=0.40, memory_locality=0.45),
    ApplicationProfile(
        name="GZip", weight=182, mean_block_length=5.0, max_block_length=40,
        class_mix=_mix(alu=3.5, shift=1.5, lea=0.8, load=2.0, store=1.0, rmw=0.6, mov=1.5,
                       zero_idiom=0.3, cmov=0.3),
        dependency_density=0.55, memory_locality=0.50),
    ApplicationProfile(
        name="TensorFlow", weight=6399, mean_block_length=5.5, max_block_length=128,
        class_mix=_mix(alu=2.0, mul=0.3, shift=0.3, lea=1.0, load=2.5, store=1.2, rmw=0.2,
                       vec_alu=1.5, vec_mul=1.5, vec_div=0.2, vec_mov=1.2, cvt=0.4, mov=1.5,
                       push_pop=0.4, zero_idiom=0.4),
        dependency_density=0.45, memory_locality=0.35),
    ApplicationProfile(
        name="Clang/LLVM", weight=18781, mean_block_length=4.5, max_block_length=96,
        class_mix=_mix(alu=3.0, mul=0.15, div=0.03, shift=0.5, lea=1.2, load=2.5, store=1.3,
                       rmw=0.3, push_pop=1.2, cmov=0.5, setcc=0.3, mov=2.5, zero_idiom=0.6),
        dependency_density=0.40, memory_locality=0.40),
    ApplicationProfile(
        name="Eigen", weight=387, mean_block_length=6.5, max_block_length=80,
        class_mix=_mix(alu=1.2, lea=0.8, load=2.0, store=0.8, vec_alu=2.5, vec_mul=2.5,
                       vec_div=0.3, vec_mov=1.5, cvt=0.3, mov=0.8, zero_idiom=0.2),
        dependency_density=0.60, memory_locality=0.30),
    ApplicationProfile(
        name="Embree", weight=1067, mean_block_length=6.0, max_block_length=96,
        class_mix=_mix(alu=1.5, shift=0.3, lea=0.8, load=2.2, store=0.8, vec_alu=2.2,
                       vec_mul=1.8, vec_div=0.4, vec_mov=1.5, cmov=0.3, mov=1.0, zero_idiom=0.2),
        dependency_density=0.50, memory_locality=0.30),
    ApplicationProfile(
        name="FFmpeg", weight=1516, mean_block_length=5.0, max_block_length=80,
        class_mix=_mix(alu=2.5, mul=0.4, shift=0.8, lea=1.0, load=2.2, store=1.2, rmw=0.4,
                       vec_alu=1.2, vec_mul=0.8, vec_mov=1.0, mov=1.5, zero_idiom=0.4),
        dependency_density=0.45, memory_locality=0.40),
)


def application_weights() -> Dict[str, float]:
    """Normalized sampling weights over applications."""
    total = sum(profile.weight for profile in APPLICATION_PROFILES)
    return {profile.name: profile.weight / total for profile in APPLICATION_PROFILES}
