"""Microarchitecture specification shared by defaults and hardware model.

A :class:`UarchSpec` carries two views of each execution-resource class
(:class:`~repro.isa.opcodes.UopClass`):

* ``documented`` (:class:`ClassParams`) — what vendor manuals and measured
  instruction tables say, i.e. the values an LLVM scheduling-model author
  would write down.  These drive the *default* parameter tables.
* ``true`` (:class:`TrueClassParams`) — how the reference hardware model
  actually behaves, including effects the llvm-mca model cannot express
  (zero-idiom elision, the stack engine, store-to-load forwarding, memory
  dependency chains).  These drive the ground-truth measurements.

The gap between the two views is what gives the default tables their ~25–35%
end-to-end error and gives DiffTune something to learn, in the same way the
paper's defaults are imperfect relative to real silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.opcodes import UopClass


@dataclass(frozen=True)
class ClassParams:
    """Documented characteristics of one execution class on one target.

    Attributes:
        latency: Documented result latency in cycles.
        micro_ops: Documented micro-op count.
        ports: ``(port_index, cycles)`` pairs the class occupies.
    """

    latency: int
    micro_ops: int
    ports: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class TrueClassParams:
    """True (hardware) characteristics of one execution class.

    Attributes:
        latency: Actual dependency latency in cycles.
        throughput_ports: Number of ports that can execute this class each
            cycle (reciprocal throughput = 1 / throughput_ports for 1-cycle
            occupancy).
        micro_ops: Actual micro-op count after fusion.
    """

    latency: float
    throughput_ports: float
    micro_ops: float


@dataclass(frozen=True)
class UarchSpec:
    """A complete microarchitecture description.

    Attributes:
        name: Human-readable name ("Haswell").
        llvm_name: The LLVM target CPU name ("haswell").
        vendor: "intel" or "amd" (IACA only supports Intel).
        dispatch_width: Documented dispatch width (micro-ops / cycle).
        reorder_buffer_size: Documented reorder-buffer capacity in micro-ops.
        true_dispatch_width: Effective dispatch width of the real machine.
        true_reorder_buffer_size: Effective reorder-buffer capacity.
        documented: Per-class documented characteristics.
        true: Per-class true characteristics.
        load_latency: Documented L1 load-to-use latency added to memory forms.
        true_load_latency: Actual L1 load-to-use latency.
        store_forward_latency: Actual store-to-load forwarding latency
            (only the hardware model uses this; llvm-mca has no equivalent).
        frontend_uops_per_cycle: Frontend throughput of the real machine
            (llvm-mca ignores the frontend entirely).
        measurement_noise: Relative standard deviation of timing measurements.
        zero_idiom_elision: Whether the hardware executes zero idioms with
            zero latency and no execution port.
        stack_engine: Whether the hardware removes stack-pointer update
            dependencies for push/pop.
    """

    name: str
    llvm_name: str
    vendor: str
    dispatch_width: int
    reorder_buffer_size: int
    true_dispatch_width: float
    true_reorder_buffer_size: int
    documented: Dict[UopClass, ClassParams]
    true: Dict[UopClass, TrueClassParams]
    load_latency: int
    true_load_latency: float
    store_forward_latency: float
    frontend_uops_per_cycle: float
    measurement_noise: float
    zero_idiom_elision: bool = True
    stack_engine: bool = True

    def documented_for(self, uop_class: UopClass) -> ClassParams:
        return self.documented[uop_class]

    def true_for(self, uop_class: UopClass) -> TrueClassParams:
        return self.true[uop_class]


# ----------------------------------------------------------------------
# Shared port-role conventions (Haswell-style 10-port numbering, reused by
# every spec because the paper fixes the PortMap width at 10 for all targets).
# ----------------------------------------------------------------------
PORT_ALU0 = 0
PORT_ALU1 = 1
PORT_LOAD0 = 2
PORT_LOAD1 = 3
PORT_STORE_DATA = 4
PORT_ALU2 = 5
PORT_ALU3 = 6
PORT_STORE_AGU = 7
PORT_VEC0 = 8
PORT_VEC1 = 9


def intel_documented_classes(alu_latency: int = 1, mul_latency: int = 3,
                             div_latency: int = 22, vec_alu_latency: int = 3,
                             vec_mul_latency: int = 5, vec_div_latency: int = 13,
                             lea_latency: int = 1, cmov_latency: int = 2,
                             push_latency: int = 2) -> Dict[UopClass, ClassParams]:
    """Documented class table shared by the Intel specs (with small overrides).

    The ``ports`` entries list only *dedicated* (single-port) resources.  In
    LLVM's scheduling models most instructions consume port-group resources
    (e.g. "HWPort0156"); the paper zeroes port-group parameters out of the
    simulation, so the default tables retain per-port occupancy only where a
    single physical port is the documented bottleneck — the integer and
    vector dividers, the integer multiplier, and the store-data port.
    """
    return {
        UopClass.ALU: ClassParams(alu_latency, 1, ()),
        UopClass.MOV: ClassParams(1, 1, ()),
        UopClass.SHIFT: ClassParams(1, 1, ()),
        UopClass.MUL: ClassParams(mul_latency, 1, ((PORT_ALU1, 1),)),
        UopClass.DIV: ClassParams(div_latency, 10, ((PORT_ALU0, max(1, div_latency // 2)),)),
        UopClass.LEA: ClassParams(lea_latency, 1, ()),
        UopClass.LOAD: ClassParams(0, 1, ()),
        UopClass.STORE: ClassParams(1, 2, ((PORT_STORE_DATA, 1),)),
        UopClass.PUSH: ClassParams(push_latency, 2, ((PORT_STORE_DATA, 1),)),
        UopClass.POP: ClassParams(2, 2, ()),
        UopClass.CMOV: ClassParams(cmov_latency, 2, ()),
        UopClass.SETCC: ClassParams(1, 1, ()),
        UopClass.VEC_ALU: ClassParams(vec_alu_latency, 1, ()),
        UopClass.VEC_MUL: ClassParams(vec_mul_latency, 1, ((PORT_VEC0, 1),)),
        UopClass.VEC_DIV: ClassParams(vec_div_latency, 1, ((PORT_VEC0, max(1, vec_div_latency // 2)),)),
        UopClass.VEC_MOV: ClassParams(1, 1, ()),
        UopClass.CVT: ClassParams(4, 2, ()),
        UopClass.NOP: ClassParams(0, 1, ()),
    }


def intel_true_classes(alu_latency: float = 1.0, mul_latency: float = 3.0,
                       div_latency: float = 24.0, vec_alu_latency: float = 3.0,
                       vec_mul_latency: float = 5.0, vec_div_latency: float = 13.0,
                       alu_ports: float = 4.0, vec_ports: float = 2.0,
                       load_ports: float = 2.0, store_ports: float = 1.0) -> Dict[UopClass, TrueClassParams]:
    """True class table shared by the Intel specs (with small overrides)."""
    return {
        UopClass.ALU: TrueClassParams(alu_latency, alu_ports, 1.0),
        UopClass.MOV: TrueClassParams(0.0, alu_ports, 1.0),  # move elimination
        UopClass.SHIFT: TrueClassParams(1.0, 2.0, 1.0),
        UopClass.MUL: TrueClassParams(mul_latency, 1.0, 1.0),
        UopClass.DIV: TrueClassParams(div_latency, 0.25, 8.0),
        UopClass.LEA: TrueClassParams(1.0, 2.0, 1.0),
        UopClass.LOAD: TrueClassParams(0.0, load_ports, 1.0),
        UopClass.STORE: TrueClassParams(0.0, store_ports, 1.0),
        UopClass.PUSH: TrueClassParams(0.0, store_ports, 1.0),
        UopClass.POP: TrueClassParams(0.0, load_ports, 1.0),
        UopClass.CMOV: TrueClassParams(1.0, 2.0, 1.0),
        UopClass.SETCC: TrueClassParams(1.0, 2.0, 1.0),
        UopClass.VEC_ALU: TrueClassParams(vec_alu_latency, vec_ports, 1.0),
        UopClass.VEC_MUL: TrueClassParams(vec_mul_latency, vec_ports, 1.0),
        UopClass.VEC_DIV: TrueClassParams(vec_div_latency, 0.5, 1.0),
        UopClass.VEC_MOV: TrueClassParams(1.0, vec_ports + 1.0, 1.0),
        UopClass.CVT: TrueClassParams(4.0, 1.0, 2.0),
        UopClass.NOP: TrueClassParams(0.0, alu_ports, 1.0),
    }
