"""Skylake microarchitecture specification.

Skylake widens the machine relative to Haswell (larger reorder buffer, faster
divide, better vector multiply latency).  Its LLVM tables are reasonably good
but, as on Haswell, miss zero-idiom elision, the stack engine, and memory
dependency chains.
"""

from __future__ import annotations

from repro.targets.uarch import UarchSpec, intel_documented_classes, intel_true_classes

SKYLAKE = UarchSpec(
    name="Skylake",
    llvm_name="skylake",
    vendor="intel",
    dispatch_width=4,
    reorder_buffer_size=224,
    true_dispatch_width=4.0,
    true_reorder_buffer_size=224,
    documented=intel_documented_classes(
        alu_latency=1, mul_latency=3, div_latency=18,
        vec_alu_latency=4, vec_mul_latency=4, vec_div_latency=11,
        cmov_latency=1, push_latency=2),
    true=intel_true_classes(
        alu_latency=1.0, mul_latency=3.0, div_latency=21.0,
        vec_alu_latency=4.0, vec_mul_latency=4.0, vec_div_latency=11.0,
        alu_ports=4.0, vec_ports=2.0, load_ports=2.0, store_ports=1.0),
    load_latency=4,
    true_load_latency=4.5,
    store_forward_latency=4.5,
    frontend_uops_per_cycle=4.5,
    measurement_noise=0.03,
    zero_idiom_elision=True,
    stack_engine=True,
)
