"""Haswell microarchitecture specification.

Haswell is the primary evaluation target in the paper (Tables V, VI, the
parameter-distribution and sensitivity figures, and all case studies use it).
The documented values follow the shape of LLVM's Haswell scheduling model
(dispatch width 4, 192-entry reorder buffer, 10 execution ports); the true
values add the hardware effects llvm-mca cannot express.
"""

from __future__ import annotations

from repro.targets.uarch import UarchSpec, intel_documented_classes, intel_true_classes

HASWELL = UarchSpec(
    name="Haswell",
    llvm_name="haswell",
    vendor="intel",
    dispatch_width=4,
    reorder_buffer_size=192,
    true_dispatch_width=4.0,
    true_reorder_buffer_size=192,
    documented=intel_documented_classes(
        alu_latency=1, mul_latency=3, div_latency=22,
        vec_alu_latency=3, vec_mul_latency=5, vec_div_latency=13,
        cmov_latency=2, push_latency=2),
    true=intel_true_classes(
        alu_latency=1.0, mul_latency=3.0, div_latency=24.0,
        vec_alu_latency=3.0, vec_mul_latency=5.0, vec_div_latency=13.0,
        alu_ports=4.0, vec_ports=2.0, load_ports=2.0, store_ports=1.0),
    load_latency=4,
    true_load_latency=4.0,
    store_forward_latency=5.0,
    frontend_uops_per_cycle=4.0,
    measurement_noise=0.03,
    zero_idiom_elision=True,
    stack_engine=True,
)
