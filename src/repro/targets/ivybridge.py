"""Ivy Bridge microarchitecture specification.

Ivy Bridge is an older three-ALU-port design with a smaller reorder buffer
and slower vector divide; its default tables in LLVM are known to be less
accurate than Haswell's (the paper reports 33.5% default error vs 25.0% on
Haswell), which we reflect with a larger documented-vs-true gap.
"""

from __future__ import annotations

from repro.targets.uarch import UarchSpec, intel_documented_classes, intel_true_classes

IVY_BRIDGE = UarchSpec(
    name="Ivy Bridge",
    llvm_name="ivybridge",
    vendor="intel",
    dispatch_width=4,
    reorder_buffer_size=168,
    true_dispatch_width=3.5,
    true_reorder_buffer_size=168,
    documented=intel_documented_classes(
        alu_latency=1, mul_latency=3, div_latency=26,
        vec_alu_latency=3, vec_mul_latency=5, vec_div_latency=20,
        cmov_latency=2, push_latency=3),
    true=intel_true_classes(
        alu_latency=1.0, mul_latency=3.0, div_latency=28.0,
        vec_alu_latency=3.0, vec_mul_latency=5.0, vec_div_latency=18.0,
        alu_ports=3.0, vec_ports=2.0, load_ports=2.0, store_ports=1.0),
    load_latency=4,
    true_load_latency=5.0,
    store_forward_latency=6.0,
    frontend_uops_per_cycle=4.0,
    measurement_noise=0.035,
    zero_idiom_elision=True,
    stack_engine=True,
)
