"""Parameter tables built from per-instruction latency "measurements".

Section II-B of the paper discusses the measurability problem: llvm-mca
defines exactly one ``WriteLatency`` per instruction, but fine-grained
measurement frameworks (Agner Fog's tables, uops.info) observe a *range* of
latencies per instruction depending on which destination is read and which
operand values flow through.  Plugging the measured minimum, median, or
maximum into llvm-mca produces errors of 103%, 150% and 218% respectively on
Haswell — far worse than the expert defaults.

We reproduce that experiment against the reference hardware model: for each
opcode we "measure" a distribution of dependency-chain latencies (running
small chained probes through the hardware model's latency rules, including the
memory round-trip for memory forms — exactly the over-counting that makes raw
measurements a poor fit for llvm-mca's WriteLatency semantics), then build
parameter tables using the min / median / max of each distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, Opcode, OpcodeTable, UopClass
from repro.llvm_mca.params import MCAParameterTable
from repro.targets.defaults import build_default_mca_table
from repro.targets.uarch import UarchSpec


def _measured_latency_samples(opcode: Opcode, spec: UarchSpec,
                              rng: np.random.Generator) -> List[float]:
    """Simulate a latency-measurement campaign for one opcode.

    A measurement harness times a dependency chain through the instruction.
    For register forms that observes the true latency plus occasional
    bypass-network penalties; for memory forms the chain must round-trip
    through memory, so the observed latency includes the store-forwarding and
    load-to-use latencies — values much larger than what llvm-mca's
    WriteLatency should hold once its own folded-load modeling is in play.
    """
    true_params = spec.true_for(opcode.uop_class)
    base = float(true_params.latency)
    samples: List[float] = []
    for _ in range(7):
        observed = base
        if opcode.reads_memory:
            observed += spec.true_load_latency
        if opcode.writes_memory:
            # The measurement chain reads the stored value back.
            observed += spec.store_forward_latency + spec.true_load_latency
        if opcode.uop_class in (UopClass.DIV, UopClass.VEC_DIV):
            # Divide latency is famously data-dependent.
            observed += float(rng.integers(0, int(base) + 1))
        # Bypass/forwarding penalties observed on some operand pairings.
        observed += float(rng.choice([0.0, 0.0, 0.0, 1.0, 2.0]))
        samples.append(max(observed, 0.0))
    return samples


def build_measured_latency_table(spec: UarchSpec, statistic: str = "max",
                                 opcode_table: Optional[OpcodeTable] = None,
                                 seed: int = 1234) -> MCAParameterTable:
    """Build a table whose WriteLatency comes from simulated measurements.

    Args:
        spec: Target microarchitecture.
        statistic: ``"min"``, ``"median"`` or ``"max"`` observed latency.
        opcode_table: Opcode universe (defaults to the shared table).
        seed: Seed for the simulated measurement campaign.
    """
    if statistic not in ("min", "median", "max"):
        raise ValueError("statistic must be one of 'min', 'median', 'max'")
    opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
    rng = np.random.default_rng(seed)
    table = build_default_mca_table(spec, opcode_table)
    reducers = {"min": np.min, "median": np.median, "max": np.max}
    reduce = reducers[statistic]
    for index, opcode in enumerate(opcode_table):
        samples = _measured_latency_samples(opcode, spec, rng)
        table.write_latency[index] = int(round(float(reduce(samples))))
    table.validate()
    return table
