"""Zen 2 microarchitecture specification.

Zen 2 is the AMD target.  The paper notes that llvm-8.0.1 has no Zen 2 model
and falls back to Zen 1 tables (default error 34.9%); we reflect that by
giving the documented view a visibly larger gap from the true machine than on
the Intel targets — wider true dispatch, cheaper vector operations, and a
different divider — while keeping the same Haswell-style 10-port PortMap
shape, exactly as the paper does (it reuses the Intel simulation model and
simply evaluates it on AMD measurements).
"""

from __future__ import annotations

from repro.targets.uarch import UarchSpec, intel_documented_classes, intel_true_classes

ZEN2 = UarchSpec(
    name="Zen 2",
    llvm_name="znver2",
    vendor="amd",
    dispatch_width=4,
    reorder_buffer_size=192,
    true_dispatch_width=4.5,
    true_reorder_buffer_size=224,
    documented=intel_documented_classes(
        alu_latency=1, mul_latency=4, div_latency=30,
        vec_alu_latency=3, vec_mul_latency=5, vec_div_latency=15,
        cmov_latency=2, push_latency=3),
    true=intel_true_classes(
        alu_latency=1.0, mul_latency=3.0, div_latency=22.0,
        vec_alu_latency=3.0, vec_mul_latency=4.0, vec_div_latency=11.0,
        alu_ports=4.0, vec_ports=3.0, load_ports=2.0, store_ports=1.5),
    load_latency=4,
    true_load_latency=4.5,
    store_forward_latency=7.0,
    frontend_uops_per_cycle=4.5,
    measurement_noise=0.04,
    zero_idiom_elision=True,
    stack_engine=True,
)
