"""Construction of default ("expert-written") parameter tables.

These tables play the role of LLVM's hand-written scheduling models: they are
derived mechanically from each microarchitecture's *documented* per-class
characteristics (:class:`~repro.targets.uarch.ClassParams`), exactly the way
LLVM's tables are derived from vendor manuals and measured instruction tables.
They are deliberately imperfect relative to the reference hardware model, in
the same ways llvm-mca's defaults are imperfect relative to real silicon.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, Opcode, OpcodeTable, OperandForm, UopClass
from repro.llvm_mca.params import MCAParameterTable, NUM_PORTS, NUM_READ_ADVANCE_SLOTS
from repro.targets.uarch import (PORT_LOAD0, PORT_LOAD1, PORT_STORE_AGU, PORT_STORE_DATA,
                                 UarchSpec)

def _memory_form_extra_uops(opcode: Opcode) -> int:
    """Extra micro-ops documented for folded loads / read-modify-write forms."""
    extra = 0
    if opcode.reads_memory and opcode.uop_class not in (UopClass.LOAD, UopClass.POP):
        extra += 1
    if opcode.writes_memory and opcode.uop_class not in (UopClass.STORE, UopClass.PUSH):
        extra += 2  # store address + store data micro-ops
    return extra


def default_opcode_parameters(opcode: Opcode, spec: UarchSpec) -> Dict[str, np.ndarray]:
    """Default (documented) parameters for a single opcode on ``spec``.

    Returns a dict with keys ``num_micro_ops``, ``write_latency``,
    ``read_advance_cycles`` and ``port_map``.
    """
    class_params = spec.documented_for(opcode.uop_class)
    latency = class_params.latency
    micro_ops = class_params.micro_ops + _memory_form_extra_uops(opcode)
    port_map = np.zeros(NUM_PORTS, dtype=np.int64)
    for port, cycles in class_params.ports:
        port_map[port] += cycles

    if opcode.reads_memory and opcode.uop_class not in (UopClass.POP,):
        # Folded loads (and pure loads) add the documented L1 load-to-use
        # latency to the instruction's single WriteLatency value.  Loads
        # travel through a port group in LLVM's model, which the paper zeroes
        # out, so no per-port occupancy is added here.
        latency += spec.load_latency
    if opcode.writes_memory and opcode.uop_class not in (UopClass.STORE, UopClass.PUSH):
        # Read-modify-write forms additionally occupy the store-data port.
        port_map[PORT_STORE_DATA] += 1
    if opcode.uop_class in (UopClass.STORE, UopClass.PUSH):
        # Pure stores: the documented "latency" of a store is small and the
        # value is never read back through registers.
        latency = max(latency, 1)
    if opcode.width == 256:
        # 256-bit forms documented as one extra micro-op on older cores.
        micro_ops += 1 if spec.llvm_name in ("ivybridge",) else 0

    read_advance = np.zeros(NUM_READ_ADVANCE_SLOTS, dtype=np.int64)
    return {
        "num_micro_ops": np.int64(max(1, micro_ops)),
        "write_latency": np.int64(max(0, latency)),
        "read_advance_cycles": read_advance,
        "port_map": port_map,
    }


def build_default_mca_table(spec: UarchSpec,
                            opcode_table: Optional[OpcodeTable] = None) -> MCAParameterTable:
    """Build the default llvm-mca parameter table for a microarchitecture."""
    opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
    table = MCAParameterTable.zeros(opcode_table,
                                    dispatch_width=spec.dispatch_width,
                                    reorder_buffer_size=spec.reorder_buffer_size)
    for index, opcode in enumerate(opcode_table):
        values = default_opcode_parameters(opcode, spec)
        table.num_micro_ops[index] = values["num_micro_ops"]
        table.write_latency[index] = values["write_latency"]
        table.read_advance_cycles[index] = values["read_advance_cycles"]
        table.port_map[index] = values["port_map"]
    # VZEROUPPER is the canonical 0-latency default (the paper notes it is the
    # only opcode with default WriteLatency 0 on Haswell).
    if "VZEROUPPER" in opcode_table:
        table.write_latency[opcode_table.index_of("VZEROUPPER")] = 0
    table.validate()
    return table


def build_default_llvm_sim_table(spec: UarchSpec,
                                 opcode_table: Optional[OpcodeTable] = None):
    """Build the default llvm_sim parameter table for a microarchitecture.

    llvm_sim reads the same WriteLatency values from LLVM but interprets the
    PortMap as the number of micro-ops dispatched to each port (Table VII).
    Imported lazily to avoid a circular import at package-load time.
    """
    from repro.llvm_sim.params import LLVMSimParameterTable

    opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
    mca_table = build_default_mca_table(spec, opcode_table)
    port_uops = np.minimum(mca_table.port_map, 3)
    return LLVMSimParameterTable(
        opcode_table=opcode_table,
        write_latency=mca_table.write_latency.copy(),
        port_uops=port_uops,
    )
