"""Target microarchitectures: default parameter tables and ground-truth hardware.

The paper evaluates DiffTune on four microarchitectures — Ivy Bridge, Haswell,
Skylake (Intel) and Zen 2 (AMD) — using the expert-written LLVM scheduling
tables as the *default* parameters and real hardware measurements (BHive) as
the *ground truth*.

This package provides the equivalents:

* :class:`~repro.targets.uarch.UarchSpec` — a per-microarchitecture
  description of both the *documented* per-class characteristics (what an
  expert would write into the scheduling tables) and the *true* hardware
  behaviour (what the machine actually does, including effects llvm-mca cannot
  express: zero-idiom elision, the stack engine, store-to-load forwarding).
* :mod:`~repro.targets.defaults` — builds default
  :class:`~repro.llvm_mca.params.MCAParameterTable` objects from a spec.
* :mod:`~repro.targets.hardware` — the reference hardware model used in place
  of physical measurements.
* :mod:`~repro.targets.measured_tables` — min/median/max "measured latency"
  tables, reproducing the Section II-B measurability discussion.
"""

from repro.targets.uarch import UarchSpec, ClassParams, TrueClassParams
from repro.targets.haswell import HASWELL
from repro.targets.ivybridge import IVY_BRIDGE
from repro.targets.skylake import SKYLAKE
from repro.targets.zen2 import ZEN2
from repro.targets.defaults import build_default_mca_table, build_default_llvm_sim_table
from repro.targets.hardware import HardwareModel
from repro.targets.measured_tables import build_measured_latency_table

ALL_UARCHES = {
    "ivybridge": IVY_BRIDGE,
    "haswell": HASWELL,
    "skylake": SKYLAKE,
    "zen2": ZEN2,
}


def get_uarch(name: str) -> UarchSpec:
    """Look up a microarchitecture spec by (case-insensitive) name."""
    key = name.lower().replace(" ", "").replace("_", "").replace("-", "")
    aliases = {
        "ivybridge": "ivybridge",
        "ivb": "ivybridge",
        "haswell": "haswell",
        "hsw": "haswell",
        "skylake": "skylake",
        "skl": "skylake",
        "zen2": "zen2",
        "znver2": "zen2",
    }
    try:
        return ALL_UARCHES[aliases[key]]
    except KeyError as error:
        raise KeyError(f"unknown microarchitecture: {name!r}; "
                       f"known: {sorted(ALL_UARCHES)}") from error


__all__ = [
    "UarchSpec",
    "ClassParams",
    "TrueClassParams",
    "HASWELL",
    "IVY_BRIDGE",
    "SKYLAKE",
    "ZEN2",
    "ALL_UARCHES",
    "get_uarch",
    "build_default_mca_table",
    "build_default_llvm_sim_table",
    "build_measured_latency_table",
    "HardwareModel",
]
