"""Target microarchitectures: default parameter tables and ground-truth hardware.

The paper evaluates DiffTune on four microarchitectures — Ivy Bridge, Haswell,
Skylake (Intel) and Zen 2 (AMD) — using the expert-written LLVM scheduling
tables as the *default* parameters and real hardware measurements (BHive) as
the *ground truth*.

This package provides the equivalents:

* :class:`~repro.targets.uarch.UarchSpec` — a per-microarchitecture
  description of both the *documented* per-class characteristics (what an
  expert would write into the scheduling tables) and the *true* hardware
  behaviour (what the machine actually does, including effects llvm-mca cannot
  express: zero-idiom elision, the stack engine, store-to-load forwarding).
* :mod:`~repro.targets.defaults` — builds default
  :class:`~repro.llvm_mca.params.MCAParameterTable` objects from a spec.
* :mod:`~repro.targets.hardware` — the reference hardware model used in place
  of physical measurements.
* :mod:`~repro.targets.measured_tables` — min/median/max "measured latency"
  tables, reproducing the Section II-B measurability discussion.
"""

from repro.api.registries import TARGETS
from repro.targets.uarch import UarchSpec, ClassParams, TrueClassParams
from repro.targets.haswell import HASWELL
from repro.targets.ivybridge import IVY_BRIDGE
from repro.targets.skylake import SKYLAKE
from repro.targets.zen2 import ZEN2
from repro.targets.defaults import build_default_mca_table, build_default_llvm_sim_table
from repro.targets.hardware import HardwareModel
from repro.targets.measured_tables import build_measured_latency_table

TARGETS.register("ivybridge", IVY_BRIDGE, aliases=("ivb",),
                 summary="Intel Ivy Bridge (Table I)")
TARGETS.register("haswell", HASWELL, aliases=("hsw",),
                 summary="Intel Haswell (Table I)")
TARGETS.register("skylake", SKYLAKE, aliases=("skl",),
                 summary="Intel Skylake (Table I)")
TARGETS.register("zen2", ZEN2, aliases=("znver2",),
                 summary="AMD Zen 2 (Table I)")

ALL_UARCHES = {
    "ivybridge": IVY_BRIDGE,
    "haswell": HASWELL,
    "skylake": SKYLAKE,
    "zen2": ZEN2,
}


def get_uarch(name: str) -> UarchSpec:
    """Look up a microarchitecture spec by (case-insensitive) name.

    Delegates to the :data:`repro.api.registries.TARGETS` registry, so
    targets registered by third-party plugins resolve here too.  Raises
    :class:`repro.api.registry.UnknownKeyError` (a :class:`KeyError`
    subclass) with a did-you-mean suggestion for unknown names.
    """
    return TARGETS.get(name)


__all__ = [
    "UarchSpec",
    "ClassParams",
    "TrueClassParams",
    "HASWELL",
    "IVY_BRIDGE",
    "SKYLAKE",
    "ZEN2",
    "ALL_UARCHES",
    "get_uarch",
    "build_default_mca_table",
    "build_default_llvm_sim_table",
    "build_measured_latency_table",
    "HardwareModel",
]
