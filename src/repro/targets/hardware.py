"""The reference hardware model — the stand-in for physical measurements.

The paper's ground truth is the BHive dataset: basic blocks timed on real
Ivy Bridge / Haswell / Skylake / Zen 2 machines with performance counters.
This repository has no access to x86 silicon, so the ground truth is produced
by this model instead.  It is a *richer* simulator than the llvm-mca model
being tuned, with behaviours llvm-mca structurally cannot express:

* **zero-idiom elision** — ``xor %r, %r`` breaks dependencies and uses no
  execution port (the XOR32rr case study);
* **a stack engine** — push/pop update the stack pointer outside the
  out-of-order core, so PUSH64r does not serialize on itself (the PUSH64r
  case study);
* **move elimination** — register-register moves resolve at rename;
* **memory dependency chains** — a load from a location written by an earlier
  store waits for the store and pays the store-forwarding latency (the
  ADD32mr case study: a memory read-modify-write instruction chains with
  itself at ~6 cycles/iteration);
* **a frontend throughput limit** and **measurement noise**.

Because the simulated machine differs from the llvm-mca model in these
structural ways, no parameter table makes llvm-mca exact — the default tables
land in the paper's ~25–35% error regime, learned tables can do better, and
some learned values are degenerate compensations, mirroring Section VI-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.opcodes import UopClass
from repro.targets.uarch import UarchSpec


@dataclass
class _DynamicState:
    """Mutable scheduling state carried across unrolled iterations."""

    register_ready: Dict[str, float]
    memory_ready: Dict[Tuple, float]
    port_pressure: Dict[UopClass, float]


class HardwareModel:
    """Produces ground-truth timings for basic blocks on a microarchitecture.

    The model is a dependency/throughput hybrid: for each unrolled iteration
    it computes (a) the critical-path length through register and memory
    dependency chains using the *true* latencies, and (b) the throughput bound
    implied by per-class port counts, the frontend, and the dispatch width.
    The per-iteration timing is the maximum of the two, which is how
    steady-state loop execution behaves on real out-of-order cores.
    """

    def __init__(self, spec: UarchSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def measure(self, block: BasicBlock, noisy: bool = True,
                rng: Optional[np.random.Generator] = None) -> float:
        """Measure the timing (cycles per iteration) of a basic block.

        Args:
            block: The block to time.
            noisy: Whether to apply multiplicative measurement noise,
                mimicking run-to-run variation of performance counters.
            rng: Random generator for the noise (defaults to the model's own).
        """
        timing = self._steady_state_timing(block)
        if noisy:
            generator = rng if rng is not None else self._rng
            noise = generator.normal(1.0, self.spec.measurement_noise)
            timing *= float(np.clip(noise, 0.85, 1.15))
        return max(timing, 0.03)

    def measure_many(self, blocks: Sequence[BasicBlock], noisy: bool = True,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return np.array([self.measure(block, noisy=noisy, rng=rng) for block in blocks],
                        dtype=np.float64)

    # ------------------------------------------------------------------
    # Core model
    # ------------------------------------------------------------------
    def _instruction_latency(self, instruction: Instruction) -> float:
        """True dependency latency of the instruction's register result."""
        spec = self.spec
        true_params = spec.true_for(instruction.opcode.uop_class)
        latency = float(true_params.latency)
        if instruction.is_zero_idiom() and spec.zero_idiom_elision:
            return 0.0
        if instruction.opcode.uop_class == UopClass.MOV and not instruction.is_load:
            return 0.0 if not instruction.is_store else latency
        if instruction.is_load:
            latency += spec.true_load_latency
        return latency

    def _instruction_uops(self, instruction: Instruction) -> float:
        spec = self.spec
        true_params = spec.true_for(instruction.opcode.uop_class)
        uops = float(true_params.micro_ops)
        if instruction.is_zero_idiom() and spec.zero_idiom_elision:
            return 1.0
        if instruction.is_load and instruction.opcode.uop_class not in (
                UopClass.LOAD, UopClass.POP):
            uops += 1.0
        if instruction.is_store and instruction.opcode.uop_class not in (
                UopClass.STORE, UopClass.PUSH):
            uops += 1.0
        return uops

    def _throughput_bound(self, block: BasicBlock) -> float:
        """Cycles per iteration implied by port, dispatch and frontend limits."""
        spec = self.spec
        class_pressure: Dict[UopClass, float] = {}
        load_pressure = 0.0
        store_pressure = 0.0
        total_uops = 0.0
        for instruction in block:
            uop_class = instruction.opcode.uop_class
            total_uops += self._instruction_uops(instruction)
            if instruction.is_zero_idiom() and spec.zero_idiom_elision:
                continue  # executed at rename, no port pressure
            if uop_class == UopClass.MOV and not instruction.is_load and not instruction.is_store:
                continue  # move elimination
            true_params = spec.true_for(uop_class)
            occupancy = 1.0
            if uop_class in (UopClass.DIV, UopClass.VEC_DIV):
                occupancy = max(1.0, true_params.latency / 3.0)
            class_pressure[uop_class] = class_pressure.get(uop_class, 0.0) + (
                occupancy / max(true_params.throughput_ports, 0.25))
            if instruction.is_load:
                load_pressure += 1.0 / spec.true_for(UopClass.LOAD).throughput_ports
            if instruction.is_store:
                store_pressure += 1.0 / max(spec.true_for(UopClass.STORE).throughput_ports, 0.5)
        bound = max(class_pressure.values(), default=0.0)
        bound = max(bound, load_pressure, store_pressure)
        bound = max(bound, total_uops / spec.true_dispatch_width)
        bound = max(bound, total_uops / spec.frontend_uops_per_cycle)
        # Issuing at least one instruction per iteration costs a minimum slice
        # of a cycle even for trivial blocks.
        return max(bound, len(block) / (spec.true_dispatch_width * 1.5), 0.25)

    def _latency_bound(self, block: BasicBlock) -> float:
        """Cycles per iteration implied by loop-carried dependency chains.

        The block is conceptually unrolled; the per-iteration cost in steady
        state equals the longest loop-carried chain (register or memory).  We
        compute it by simulating a few unrolled iterations of pure dataflow.
        """
        spec = self.spec
        iterations = 6
        register_ready: Dict[str, float] = {}
        memory_ready: Dict[Tuple, float] = {}
        iteration_completion = []
        completion_time = 0.0
        for _ in range(iterations):
            iteration_max = completion_time
            for instruction in block:
                latency = self._instruction_latency(instruction)
                start = 0.0
                for register in instruction.source_registers():
                    if spec.stack_engine and register == "rsp" and \
                            instruction.opcode.uop_class in (UopClass.PUSH, UopClass.POP):
                        continue  # stack engine hides rsp updates
                    start = max(start, register_ready.get(register, 0.0))
                location = instruction.memory_location()
                if instruction.is_load and location is not None:
                    produced = memory_ready.get(location)
                    if produced is not None:
                        start = max(start, produced)
                finish = start + latency
                for register in instruction.destination_registers():
                    if spec.stack_engine and register == "rsp" and \
                            instruction.opcode.uop_class in (UopClass.PUSH, UopClass.POP):
                        register_ready[register] = start
                        continue
                    register_ready[register] = finish
                if instruction.is_store and location is not None:
                    memory_ready[location] = start + spec.store_forward_latency
                iteration_max = max(iteration_max, finish)
            iteration_completion.append(iteration_max)
            completion_time = iteration_max
        if len(iteration_completion) >= 2:
            # Steady-state growth per iteration.
            deltas = np.diff(iteration_completion[1:])
            if len(deltas) > 0:
                return float(np.mean(deltas))
        return float(iteration_completion[-1] / max(1, iterations))

    def _steady_state_timing(self, block: BasicBlock) -> float:
        throughput = self._throughput_bound(block)
        latency = self._latency_bound(block)
        timing = max(throughput, latency)
        # Small fixed overhead per iteration observed on real machines
        # (loop-closing branch, counter overhead), a few percent of a cycle.
        return timing + 0.02
