"""Execution-port tracking for the llvm-mca style simulator.

llvm-mca's execute stage reserves every execution port an instruction's
PortMap names, each for the number of cycles the PortMap specifies, starting
at the instruction's issue cycle.  An instruction may only issue when all of
its required ports are simultaneously free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


class PortSet:
    """Tracks when each execution port becomes free.

    The representation is simply the cycle at which each port next becomes
    free; reservations are contiguous intervals starting at the issue cycle.
    This matches a greedy in-order-reservation policy, which is how llvm-mca
    allocates its port resources once an instruction is selected for issue.
    """

    def __init__(self, num_ports: int) -> None:
        if num_ports < 1:
            raise ValueError("need at least one execution port")
        self.num_ports = num_ports
        self._free_at = np.zeros(num_ports, dtype=np.int64)

    def reset(self) -> None:
        self._free_at[:] = 0

    def free_at(self, port: int) -> int:
        """Cycle at which ``port`` next becomes free."""
        return int(self._free_at[port])

    def earliest_issue_cycle(self, port_cycles: Sequence[int], not_before: int) -> int:
        """Earliest cycle >= ``not_before`` at which all required ports are free.

        Args:
            port_cycles: Occupancy cycles per port (the instruction's PortMap
                row); ports with zero cycles impose no constraint.
            not_before: Lower bound (operand-ready / dispatch cycle).
        """
        earliest = not_before
        for port, cycles in enumerate(port_cycles):
            if cycles > 0:
                earliest = max(earliest, int(self._free_at[port]))
        return earliest

    def reserve(self, port_cycles: Sequence[int], issue_cycle: int) -> int:
        """Reserve the required ports starting at ``issue_cycle``.

        Returns the cycle at which the last reserved port frees up (the
        resource-busy completion time); returns ``issue_cycle`` when the
        instruction uses no ports.
        """
        completion = issue_cycle
        for port, cycles in enumerate(port_cycles):
            if cycles > 0:
                release = issue_cycle + int(cycles)
                self._free_at[port] = release
                completion = max(completion, release)
        return completion

    def utilization(self) -> List[int]:
        """Snapshot of per-port next-free cycles (useful for diagnostics)."""
        return [int(value) for value in self._free_at]
