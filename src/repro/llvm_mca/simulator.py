"""The llvm-mca style basic-block simulator.

The simulator models the four-stage pipeline the paper describes for
llvm-mca's Intel x86 model (Section II-A):

* **dispatch** — instructions enter in program order; each cycle at most
  ``DispatchWidth`` micro-ops may dispatch, and an instruction needs free
  reorder-buffer slots for all of its micro-ops.
* **issue** — an instruction waits until its register source operands are
  ready.  A source produced by an earlier instruction becomes ready
  ``WriteLatency(producer) - ReadAdvanceCycles(consumer, slot)`` cycles after
  the producer issues (clamped at zero).
* **execute** — the instruction issues once its required execution ports are
  simultaneously free, then occupies each port for the cycles its PortMap
  specifies.
* **retire** — instructions retire in program order once executed; retirement
  frees their reorder-buffer slots.

Modeling assumptions (faithful to llvm-mca, and to the mismatches the paper
discusses): no frontend, no memory hierarchy, and **no memory dependency
tracking** — a load never waits for an earlier store (this is exactly why the
ADD32mr case study in Section VI-C cannot be fixed by any parameter value).

Timing follows the BHive convention: the block is unrolled for many
iterations as if executed in a loop, and the reported timing is cycles per
iteration (cycles for 100 iterations divided by 100).  For efficiency the
simulator measures the steady-state per-iteration cost using a warmup /
measurement window instead of literally unrolling 100 times; the result is
the asymptotic per-iteration timing, which is what 100 iterations
approximates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.binding import MCABoundBlock, bind_mca_block
from repro.engine.compile import BlockCompiler
from repro.isa.basic_block import BasicBlock
from repro.llvm_mca.params import MCAParameterTable, NUM_PORTS, NUM_READ_ADVANCE_SLOTS
from repro.llvm_mca.ports import PortSet
from repro.llvm_mca.reorder_buffer import ReorderBuffer

#: Number of block iterations the BHive timing convention divides by.
TIMING_ITERATIONS = 100


@dataclass
class SimulationResult:
    """Outcome of simulating a basic block.

    Attributes:
        cycles_per_iteration: Steady-state cycles per block iteration.
        total_cycles: Cycles consumed by the simulated window.
        iterations_simulated: How many iterations the window contained.
        retire_cycles: Retire cycle of every simulated dynamic instruction.
        dispatch_cycles: Dispatch cycle of every simulated dynamic instruction
            (aligned with ``retire_cycles``); used by the timeline view.
        issue_cycles: Issue (execute-start) cycle of every simulated dynamic
            instruction; used by the timeline and bottleneck views.
        port_busy_cycles: Total cycles each execution port was reserved over
            the whole simulated window; used by the resource-pressure view.
    """

    cycles_per_iteration: float
    total_cycles: int
    iterations_simulated: int
    retire_cycles: List[int]
    dispatch_cycles: List[int] = field(default_factory=list)
    issue_cycles: List[int] = field(default_factory=list)
    port_busy_cycles: List[int] = field(default_factory=list)

    @property
    def timing(self) -> float:
        """Timing in the BHive sense: cycles per single iteration of the block."""
        return self.cycles_per_iteration


def simulate_bound_mca(bound: MCABoundBlock, dispatch_width: int,
                       reorder_buffer_size: int, warmup: int, measure: int
                       ) -> SimulationResult:
    """Execute one compiled-and-bound block through the four-stage pipeline.

    This is the simulation kernel shared by :class:`MCASimulator` and the
    engine layer.  It operates purely on the bound per-instruction records
    (parameters gathered per opcode, registers interned to block-local
    integer ids), so the register scoreboard is a flat integer list instead
    of a string-keyed dictionary; the cycle-level semantics are identical to
    the original per-call implementation.
    """
    total_iterations = warmup + measure
    ports = PortSet(NUM_PORTS)
    reorder_buffer = ReorderBuffer(reorder_buffer_size)

    # Register scoreboard: interned register id -> cycle at which its value
    # becomes available.  The zero initialization is equivalent to "never
    # written": a ready cycle of 0 can never push operands_ready above the
    # dispatch cycle it is initialized to.
    register_ready = [0] * bound.compiled.num_registers

    # Dispatch bandwidth bookkeeping: current dispatch cycle and how many
    # micro-ops have been dispatched in it.
    dispatch_cycle = 0
    dispatched_micro_ops_this_cycle = 0

    # In-order retirement: an instruction retires no earlier than the one
    # before it.
    previous_retire_cycle = 0
    retire_cycles: List[int] = []
    dispatch_cycles: List[int] = []
    issue_cycles: List[int] = []
    port_busy_cycles = [0] * NUM_PORTS
    iteration_end_cycles: List[int] = []

    for _ in range(total_iterations):
        for (num_micro_ops, write_latency, read_advance, port_cycles,
             source_ids, destination_ids) in bound.instructions:
            # ----------------------------------------------------------
            # Dispatch stage
            # ----------------------------------------------------------
            micro_ops = max(1, num_micro_ops)
            # Advance the dispatch cycle until the bandwidth allows this
            # instruction.  Instructions wider than the dispatch width
            # consume whole cycles (they dispatch alone).
            needed = min(micro_ops, dispatch_width)
            if dispatched_micro_ops_this_cycle + needed > dispatch_width:
                dispatch_cycle += 1
                dispatched_micro_ops_this_cycle = 0
            # Wider instructions additionally block the dispatcher for the
            # extra cycles their remaining micro-ops need.
            extra_dispatch_cycles = 0
            if micro_ops > dispatch_width:
                extra_dispatch_cycles = (micro_ops - 1) // dispatch_width

            # Reorder-buffer space.
            dispatch_at = reorder_buffer.earliest_cycle_with_space(
                micro_ops, dispatch_cycle)
            if dispatch_at > dispatch_cycle:
                dispatch_cycle = dispatch_at
                dispatched_micro_ops_this_cycle = 0
            dispatched_micro_ops_this_cycle += needed

            # ----------------------------------------------------------
            # Issue stage: wait for register operands.
            # ----------------------------------------------------------
            operands_ready = dispatch_cycle
            for slot, register in enumerate(source_ids):
                ready = register_ready[register]
                advance = read_advance[min(slot, NUM_READ_ADVANCE_SLOTS - 1)]
                operands_ready = max(operands_ready, ready - advance, dispatch_cycle)

            # ----------------------------------------------------------
            # Execute stage: wait for ports, then reserve them.
            # ----------------------------------------------------------
            issue_cycle = ports.earliest_issue_cycle(port_cycles, operands_ready)
            resource_completion = ports.reserve(port_cycles, issue_cycle)

            # Destinations become readable WriteLatency cycles after issue.
            write_back_cycle = issue_cycle + write_latency
            for register in destination_ids:
                register_ready[register] = write_back_cycle

            # ----------------------------------------------------------
            # Retire stage: in order, after execution completes.
            # ----------------------------------------------------------
            completion = max(write_back_cycle, resource_completion,
                             issue_cycle + 1, dispatch_cycle + 1)
            retire_cycle = max(completion, previous_retire_cycle)
            previous_retire_cycle = retire_cycle
            reorder_buffer.allocate(micro_ops, retire_cycle)
            retire_cycles.append(retire_cycle)
            dispatch_cycles.append(dispatch_cycle)
            issue_cycles.append(issue_cycle)
            for port, cycles in enumerate(port_cycles):
                port_busy_cycles[port] += int(cycles)

            if extra_dispatch_cycles:
                dispatch_cycle += extra_dispatch_cycles
                dispatched_micro_ops_this_cycle = 0

        iteration_end_cycles.append(previous_retire_cycle)

    total_cycles = iteration_end_cycles[-1]
    if measure > 0 and total_iterations > warmup:
        start = iteration_end_cycles[warmup - 1] if warmup > 0 else 0
        cycles_per_iteration = (iteration_end_cycles[-1] - start) / measure
    else:
        cycles_per_iteration = iteration_end_cycles[-1] / max(1, total_iterations)
    cycles_per_iteration = max(cycles_per_iteration, 1.0 / TIMING_ITERATIONS)
    return SimulationResult(
        cycles_per_iteration=float(cycles_per_iteration),
        total_cycles=int(total_cycles),
        iterations_simulated=total_iterations,
        retire_cycles=retire_cycles,
        dispatch_cycles=dispatch_cycles,
        issue_cycles=issue_cycles,
        port_busy_cycles=port_busy_cycles,
    )


class MCASimulator:
    """Simulates basic blocks under a given :class:`MCAParameterTable`."""

    def __init__(self, parameters: MCAParameterTable,
                 warmup_iterations: int = 4,
                 measure_iterations: int = 8,
                 max_dynamic_instructions: int = 2048,
                 compiler: Optional[BlockCompiler] = None) -> None:
        """Create a simulator.

        Args:
            parameters: The parameter table driving the simulation.
            warmup_iterations: Iterations simulated before measurement starts,
                so the pipeline reaches steady state.
            measure_iterations: Iterations over which the per-iteration cost is
                measured.
            max_dynamic_instructions: Cap on the total unrolled instruction
                count, to bound simulation cost on very long blocks.
            compiler: Block compiler to use; pass a shared instance (as the
                :class:`~repro.engine.engine.SimulationEngine` does) to reuse
                block compilations across simulators.
        """
        if warmup_iterations < 1 or measure_iterations < 1:
            raise ValueError("warmup and measurement windows must be >= 1 iteration")
        self.parameters = parameters
        self.warmup_iterations = warmup_iterations
        self.measure_iterations = measure_iterations
        self.max_dynamic_instructions = max_dynamic_instructions
        self.compiler = compiler or BlockCompiler(parameters.opcode_table)

    def _iteration_counts(self, block_length: int) -> Tuple[int, int]:
        """Shrink the warmup/measure windows for very long blocks."""
        warmup = self.warmup_iterations
        measure = self.measure_iterations
        total = (warmup + measure) * block_length
        while total > self.max_dynamic_instructions and measure > 2:
            measure -= 1
            total = (warmup + measure) * block_length
        while total > self.max_dynamic_instructions and warmup > 1:
            warmup -= 1
            total = (warmup + measure) * block_length
        return warmup, measure

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, block: BasicBlock) -> SimulationResult:
        """Simulate ``block`` executed repeatedly and return its timing."""
        compiled = self.compiler.compile(block)
        bound = bind_mca_block(self.parameters, compiled)
        warmup, measure = self._iteration_counts(len(block))
        return simulate_bound_mca(bound, int(self.parameters.dispatch_width),
                                  int(self.parameters.reorder_buffer_size),
                                  warmup, measure)

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def predict_timing(self, block: BasicBlock) -> float:
        """Predicted timing of the block: steady-state cycles per iteration."""
        return self.simulate(block).cycles_per_iteration

    def predict_timing_batch(self, blocks: Sequence[BasicBlock],
                             chunk_size: Optional[int] = None,
                             compiled: Optional[Sequence] = None) -> np.ndarray:
        """Predict timings for ``blocks`` through the megabatch kernel.

        Bit-identical to calling :meth:`predict_timing` per block (see
        :mod:`repro.llvm_mca.megabatch`), but every block advances one
        dynamic instruction per vectorized step instead of one per Python
        loop iteration.  Callers that already hold the blocks' compiled
        forms (the engine does) pass them via ``compiled`` to skip the
        compile-cache lookups.
        """
        from functools import partial

        from repro.engine.megabatch import (DEFAULT_MEGABATCH_CHUNK,
                                            megabatch_timings,
                                            shrink_iteration_counts)
        from repro.llvm_mca.megabatch import simulate_packed_mca

        if compiled is None:
            compiled = [self.compiler.compile(block) for block in blocks]
        lengths = np.fromiter((block.length for block in compiled),
                              dtype=np.int64, count=len(compiled))
        warmup, measure = shrink_iteration_counts(
            lengths, self.warmup_iterations, self.measure_iterations,
            self.max_dynamic_instructions)
        width = int(self.parameters.dispatch_width)
        capacity = int(self.parameters.reorder_buffer_size)

        def scalar_kernel(block, block_warmup, block_measure):
            bound = bind_mca_block(self.parameters, block)
            return simulate_bound_mca(bound, width, capacity, block_warmup,
                                      block_measure).cycles_per_iteration

        return megabatch_timings(
            compiled, warmup, measure,
            partial(simulate_packed_mca, self.parameters),
            chunk_size=chunk_size or DEFAULT_MEGABATCH_CHUNK,
            scalar_kernel=scalar_kernel)

    def predict_many(self, blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Predict timings for a sequence of blocks."""
        from repro.engine.megabatch import predict_timings_megabatch

        return predict_timings_megabatch(self, blocks)
