"""The llvm-mca style basic-block simulator.

The simulator models the four-stage pipeline the paper describes for
llvm-mca's Intel x86 model (Section II-A):

* **dispatch** — instructions enter in program order; each cycle at most
  ``DispatchWidth`` micro-ops may dispatch, and an instruction needs free
  reorder-buffer slots for all of its micro-ops.
* **issue** — an instruction waits until its register source operands are
  ready.  A source produced by an earlier instruction becomes ready
  ``WriteLatency(producer) - ReadAdvanceCycles(consumer, slot)`` cycles after
  the producer issues (clamped at zero).
* **execute** — the instruction issues once its required execution ports are
  simultaneously free, then occupies each port for the cycles its PortMap
  specifies.
* **retire** — instructions retire in program order once executed; retirement
  frees their reorder-buffer slots.

Modeling assumptions (faithful to llvm-mca, and to the mismatches the paper
discusses): no frontend, no memory hierarchy, and **no memory dependency
tracking** — a load never waits for an earlier store (this is exactly why the
ADD32mr case study in Section VI-C cannot be fixed by any parameter value).

Timing follows the BHive convention: the block is unrolled for many
iterations as if executed in a loop, and the reported timing is cycles per
iteration (cycles for 100 iterations divided by 100).  For efficiency the
simulator measures the steady-state per-iteration cost using a warmup /
measurement window instead of literally unrolling 100 times; the result is
the asymptotic per-iteration timing, which is what 100 iterations
approximates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.isa.instruction import Instruction
from repro.llvm_mca.params import MCAParameterTable, NUM_PORTS, NUM_READ_ADVANCE_SLOTS
from repro.llvm_mca.ports import PortSet
from repro.llvm_mca.reorder_buffer import ReorderBuffer

#: Number of block iterations the BHive timing convention divides by.
TIMING_ITERATIONS = 100


@dataclass
class SimulationResult:
    """Outcome of simulating a basic block.

    Attributes:
        cycles_per_iteration: Steady-state cycles per block iteration.
        total_cycles: Cycles consumed by the simulated window.
        iterations_simulated: How many iterations the window contained.
        retire_cycles: Retire cycle of every simulated dynamic instruction.
        dispatch_cycles: Dispatch cycle of every simulated dynamic instruction
            (aligned with ``retire_cycles``); used by the timeline view.
        issue_cycles: Issue (execute-start) cycle of every simulated dynamic
            instruction; used by the timeline and bottleneck views.
        port_busy_cycles: Total cycles each execution port was reserved over
            the whole simulated window; used by the resource-pressure view.
    """

    cycles_per_iteration: float
    total_cycles: int
    iterations_simulated: int
    retire_cycles: List[int]
    dispatch_cycles: List[int] = field(default_factory=list)
    issue_cycles: List[int] = field(default_factory=list)
    port_busy_cycles: List[int] = field(default_factory=list)

    @property
    def timing(self) -> float:
        """Timing in the BHive sense: cycles per single iteration of the block."""
        return self.cycles_per_iteration


@dataclass
class _StaticInstructionInfo:
    """Per-opcode information resolved once per block before simulation."""

    opcode_index: int
    num_micro_ops: int
    write_latency: int
    read_advance: Tuple[int, ...]
    port_cycles: Tuple[int, ...]
    source_registers: Tuple[str, ...]
    destination_registers: Tuple[str, ...]
    max_port_cycles: int


class MCASimulator:
    """Simulates basic blocks under a given :class:`MCAParameterTable`."""

    def __init__(self, parameters: MCAParameterTable,
                 warmup_iterations: int = 4,
                 measure_iterations: int = 8,
                 max_dynamic_instructions: int = 2048) -> None:
        """Create a simulator.

        Args:
            parameters: The parameter table driving the simulation.
            warmup_iterations: Iterations simulated before measurement starts,
                so the pipeline reaches steady state.
            measure_iterations: Iterations over which the per-iteration cost is
                measured.
            max_dynamic_instructions: Cap on the total unrolled instruction
                count, to bound simulation cost on very long blocks.
        """
        if warmup_iterations < 1 or measure_iterations < 1:
            raise ValueError("warmup and measurement windows must be >= 1 iteration")
        self.parameters = parameters
        self.warmup_iterations = warmup_iterations
        self.measure_iterations = measure_iterations
        self.max_dynamic_instructions = max_dynamic_instructions

    # ------------------------------------------------------------------
    # Static preparation
    # ------------------------------------------------------------------
    def _prepare(self, block: BasicBlock) -> List[_StaticInstructionInfo]:
        parameters = self.parameters
        infos: List[_StaticInstructionInfo] = []
        for instruction in block:
            index = parameters.opcode_table.index_of(instruction.opcode.name)
            port_cycles = tuple(int(value) for value in parameters.port_map[index])
            infos.append(_StaticInstructionInfo(
                opcode_index=index,
                num_micro_ops=int(parameters.num_micro_ops[index]),
                write_latency=int(parameters.write_latency[index]),
                read_advance=tuple(int(value) for value in parameters.read_advance_cycles[index]),
                port_cycles=port_cycles,
                source_registers=instruction.source_registers(),
                destination_registers=instruction.destination_registers(),
                max_port_cycles=max(port_cycles) if any(port_cycles) else 0,
            ))
        return infos

    def _iteration_counts(self, block_length: int) -> Tuple[int, int]:
        """Shrink the warmup/measure windows for very long blocks."""
        warmup = self.warmup_iterations
        measure = self.measure_iterations
        total = (warmup + measure) * block_length
        while total > self.max_dynamic_instructions and measure > 2:
            measure -= 1
            total = (warmup + measure) * block_length
        while total > self.max_dynamic_instructions and warmup > 1:
            warmup -= 1
            total = (warmup + measure) * block_length
        return warmup, measure

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, block: BasicBlock) -> SimulationResult:
        """Simulate ``block`` executed repeatedly and return its timing."""
        infos = self._prepare(block)
        warmup, measure = self._iteration_counts(len(block))
        total_iterations = warmup + measure

        dispatch_width = int(self.parameters.dispatch_width)
        ports = PortSet(NUM_PORTS)
        reorder_buffer = ReorderBuffer(int(self.parameters.reorder_buffer_size))

        # Register scoreboard: canonical register -> cycle at which its value
        # becomes available, together with the producing write latency so that
        # ReadAdvanceCycles can be credited against the right edge.
        register_ready: Dict[str, int] = {}

        # Dispatch bandwidth bookkeeping: current dispatch cycle and how many
        # micro-ops have been dispatched in it.
        dispatch_cycle = 0
        dispatched_micro_ops_this_cycle = 0

        # In-order retirement: an instruction retires no earlier than the one
        # before it.
        previous_retire_cycle = 0
        retire_cycles: List[int] = []
        dispatch_cycles: List[int] = []
        issue_cycles: List[int] = []
        port_busy_cycles = [0] * NUM_PORTS
        iteration_end_cycles: List[int] = []

        for iteration in range(total_iterations):
            for position, (instruction, info) in enumerate(zip(block, infos)):
                # ----------------------------------------------------------
                # Dispatch stage
                # ----------------------------------------------------------
                micro_ops = max(1, info.num_micro_ops)
                # Advance the dispatch cycle until the bandwidth allows this
                # instruction.  Instructions wider than the dispatch width
                # consume whole cycles (they dispatch alone).
                needed = min(micro_ops, dispatch_width)
                if dispatched_micro_ops_this_cycle + needed > dispatch_width:
                    dispatch_cycle += 1
                    dispatched_micro_ops_this_cycle = 0
                # Wider instructions additionally block the dispatcher for the
                # extra cycles their remaining micro-ops need.
                extra_dispatch_cycles = 0
                if micro_ops > dispatch_width:
                    extra_dispatch_cycles = (micro_ops - 1) // dispatch_width

                # Reorder-buffer space.
                dispatch_at = reorder_buffer.earliest_cycle_with_space(
                    micro_ops, dispatch_cycle)
                if dispatch_at > dispatch_cycle:
                    dispatch_cycle = dispatch_at
                    dispatched_micro_ops_this_cycle = 0
                dispatched_micro_ops_this_cycle += needed

                # ----------------------------------------------------------
                # Issue stage: wait for register operands.
                # ----------------------------------------------------------
                operands_ready = dispatch_cycle
                for slot, register in enumerate(info.source_registers):
                    ready = register_ready.get(register)
                    if ready is None:
                        continue
                    advance = info.read_advance[min(slot, NUM_READ_ADVANCE_SLOTS - 1)]
                    operands_ready = max(operands_ready, ready - advance, dispatch_cycle)

                # ----------------------------------------------------------
                # Execute stage: wait for ports, then reserve them.
                # ----------------------------------------------------------
                issue_cycle = ports.earliest_issue_cycle(info.port_cycles, operands_ready)
                resource_completion = ports.reserve(info.port_cycles, issue_cycle)

                # Destinations become readable WriteLatency cycles after issue.
                write_back_cycle = issue_cycle + info.write_latency
                for register in info.destination_registers:
                    register_ready[register] = write_back_cycle

                # ----------------------------------------------------------
                # Retire stage: in order, after execution completes.
                # ----------------------------------------------------------
                completion = max(write_back_cycle, resource_completion,
                                 issue_cycle + 1, dispatch_cycle + 1)
                retire_cycle = max(completion, previous_retire_cycle)
                previous_retire_cycle = retire_cycle
                reorder_buffer.allocate(micro_ops, retire_cycle)
                retire_cycles.append(retire_cycle)
                dispatch_cycles.append(dispatch_cycle)
                issue_cycles.append(issue_cycle)
                for port, cycles in enumerate(info.port_cycles):
                    port_busy_cycles[port] += int(cycles)

                if extra_dispatch_cycles:
                    dispatch_cycle += extra_dispatch_cycles
                    dispatched_micro_ops_this_cycle = 0

            iteration_end_cycles.append(previous_retire_cycle)

        total_cycles = iteration_end_cycles[-1]
        if measure > 0 and total_iterations > warmup:
            start = iteration_end_cycles[warmup - 1] if warmup > 0 else 0
            cycles_per_iteration = (iteration_end_cycles[-1] - start) / measure
        else:
            cycles_per_iteration = iteration_end_cycles[-1] / max(1, total_iterations)
        cycles_per_iteration = max(cycles_per_iteration, 1.0 / TIMING_ITERATIONS)
        return SimulationResult(
            cycles_per_iteration=float(cycles_per_iteration),
            total_cycles=int(total_cycles),
            iterations_simulated=total_iterations,
            retire_cycles=retire_cycles,
            dispatch_cycles=dispatch_cycles,
            issue_cycles=issue_cycles,
            port_busy_cycles=port_busy_cycles,
        )

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def predict_timing(self, block: BasicBlock) -> float:
        """Predicted timing of the block: steady-state cycles per iteration."""
        return self.simulate(block).cycles_per_iteration

    def predict_many(self, blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Predict timings for a sequence of blocks."""
        return np.array([self.predict_timing(block) for block in blocks], dtype=np.float64)
