"""Timeline, resource-pressure and bottleneck views for the simulator.

llvm-mca ships several diagnostic views alongside its timing prediction: a
per-instruction timeline (when each dynamic instruction dispatches, issues and
retires), a resource-pressure table (cycles each execution port is busy per
iteration), and a bottleneck analysis.  These views are what performance
engineers actually read when using the tool, so this reproduction provides
them on top of :class:`~repro.llvm_mca.simulator.MCASimulator`.  They are also
useful for debugging learned parameter tables: a degenerate WriteLatency (the
ADD32mr case study of Section VI-C) is immediately visible as a stretched
dependency edge in the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.llvm_mca.params import MCAParameterTable, NUM_PORTS
from repro.llvm_mca.simulator import MCASimulator, SimulationResult


@dataclass(frozen=True)
class TimelineEntry:
    """Lifetime of one dynamic instruction in the simulated window.

    Attributes:
        iteration: Which unrolled iteration of the block the instruction
            belongs to.
        index: The instruction's position within the block.
        opcode: Opcode name (for display).
        dispatch_cycle: Cycle the instruction entered the dispatch stage.
        issue_cycle: Cycle the instruction started executing.
        retire_cycle: Cycle the instruction retired.
    """

    iteration: int
    index: int
    opcode: str
    dispatch_cycle: int
    issue_cycle: int
    retire_cycle: int

    @property
    def latency(self) -> int:
        """Cycles from dispatch to retirement."""
        return self.retire_cycle - self.dispatch_cycle


@dataclass
class ResourcePressure:
    """Per-port busy cycles, normalized per block iteration."""

    cycles_per_iteration: List[float]

    @property
    def busiest_port(self) -> int:
        return int(np.argmax(self.cycles_per_iteration))

    @property
    def max_pressure(self) -> float:
        return float(max(self.cycles_per_iteration)) if self.cycles_per_iteration else 0.0


@dataclass
class BottleneckReport:
    """Which structural bound dominates the simulated timing.

    Attributes:
        timing: The simulator's predicted cycles per iteration.
        dispatch_bound: Micro-ops per iteration divided by the dispatch width.
        port_bound: Busy cycles per iteration of the busiest port.
        dependency_bound: Longest loop-carried dependency-chain latency.
        bottleneck: Name of the largest bound ("dispatch", "ports",
            "dependencies", or "retire" when no bound explains the timing).
    """

    timing: float
    dispatch_bound: float
    port_bound: float
    dependency_bound: float
    bottleneck: str

    def bounds(self) -> Dict[str, float]:
        return {"dispatch": self.dispatch_bound, "ports": self.port_bound,
                "dependencies": self.dependency_bound}


class TimelineView:
    """Builds timeline / pressure / bottleneck views for one basic block."""

    def __init__(self, parameters: MCAParameterTable,
                 simulator: Optional[MCASimulator] = None) -> None:
        self.parameters = parameters
        self.simulator = simulator or MCASimulator(parameters)

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------
    def timeline(self, block: BasicBlock,
                 result: Optional[SimulationResult] = None) -> List[TimelineEntry]:
        """Per-dynamic-instruction dispatch/issue/retire cycles."""
        result = result or self.simulator.simulate(block)
        if not result.dispatch_cycles:
            raise ValueError("simulation result does not carry timeline data")
        entries: List[TimelineEntry] = []
        block_length = len(block)
        for dynamic_index, (dispatch, issue, retire) in enumerate(
                zip(result.dispatch_cycles, result.issue_cycles, result.retire_cycles)):
            iteration, index = divmod(dynamic_index, block_length)
            entries.append(TimelineEntry(
                iteration=iteration,
                index=index,
                opcode=block[index].opcode.name,
                dispatch_cycle=int(dispatch),
                issue_cycle=int(issue),
                retire_cycle=int(retire),
            ))
        return entries

    def render_timeline(self, block: BasicBlock, max_iterations: int = 2,
                        max_width: int = 100) -> str:
        """ASCII timeline in the style of llvm-mca's timeline view.

        Each row shows ``[iteration,index]`` followed by a cycle-by-cycle
        lane: ``D`` marks the dispatch cycle, ``=`` cycles waiting to issue,
        ``e`` executing cycles, and ``R`` the retire cycle.
        """
        entries = [entry for entry in self.timeline(block)
                   if entry.iteration < max_iterations]
        if not entries:
            return "(empty timeline)"
        origin = min(entry.dispatch_cycle for entry in entries)
        horizon = max(entry.retire_cycle for entry in entries) - origin + 1
        horizon = min(horizon, max_width)
        lines = []
        label_width = max(len(entry.opcode) for entry in entries) + 8
        for entry in entries:
            lane = [" "] * horizon
            dispatch = entry.dispatch_cycle - origin
            issue = entry.issue_cycle - origin
            retire = entry.retire_cycle - origin
            for cycle in range(dispatch, min(retire + 1, horizon)):
                lane[cycle] = "="
            if dispatch < horizon:
                lane[dispatch] = "D"
            for cycle in range(issue, min(retire, horizon)):
                if lane[cycle] != "D":
                    lane[cycle] = "e"
            if retire < horizon:
                lane[retire] = "R"
            label = f"[{entry.iteration},{entry.index}] {entry.opcode}"
            lines.append(f"{label:<{label_width}}{''.join(lane)}")
        header = f"{'Index':<{label_width}}" + "".join(
            str((origin + cycle) % 10) for cycle in range(horizon))
        return "\n".join([header] + lines)

    # ------------------------------------------------------------------
    # Resource pressure
    # ------------------------------------------------------------------
    def resource_pressure(self, block: BasicBlock,
                          result: Optional[SimulationResult] = None) -> ResourcePressure:
        """Average busy cycles per iteration for every execution port."""
        result = result or self.simulator.simulate(block)
        iterations = max(result.iterations_simulated, 1)
        busy = result.port_busy_cycles or [0] * NUM_PORTS
        return ResourcePressure(
            cycles_per_iteration=[cycles / iterations for cycles in busy])

    def render_resource_pressure(self, block: BasicBlock) -> str:
        """ASCII resource-pressure table (one column per port)."""
        pressure = self.resource_pressure(block)
        header = " ".join(f"P{port:<5d}" for port in range(len(pressure.cycles_per_iteration)))
        values = " ".join(f"{value:<6.2f}" for value in pressure.cycles_per_iteration)
        return f"Resource pressure per iteration:\n{header}\n{values}"

    # ------------------------------------------------------------------
    # Bottleneck analysis
    # ------------------------------------------------------------------
    def bottleneck_report(self, block: BasicBlock) -> BottleneckReport:
        """Classify which structural bound dominates the block's timing."""
        result = self.simulator.simulate(block)
        pressure = self.resource_pressure(block, result)
        table = self.parameters

        total_uops = sum(max(1, table.micro_ops_of(instruction.opcode.name))
                         for instruction in block)
        dispatch_bound = total_uops / max(1, int(table.dispatch_width))
        port_bound = pressure.max_pressure
        dependency_bound = self._loop_carried_chain_latency(block)

        bounds = {"dispatch": dispatch_bound, "ports": port_bound,
                  "dependencies": dependency_bound}
        bottleneck = max(bounds, key=bounds.get)
        if all(value < result.cycles_per_iteration * 0.5 for value in bounds.values()):
            bottleneck = "retire"
        return BottleneckReport(
            timing=result.cycles_per_iteration,
            dispatch_bound=float(dispatch_bound),
            port_bound=float(port_bound),
            dependency_bound=float(dependency_bound),
            bottleneck=bottleneck,
        )

    def _loop_carried_chain_latency(self, block: BasicBlock) -> float:
        """Longest loop-carried register dependency chain under WriteLatency."""
        table = self.parameters
        producers: List[List[int]] = [[] for _ in range(len(block))]
        for producer, consumer, _register in block.register_dependencies():
            producers[consumer].append(producer)
        finish = [0.0] * len(block)
        for index, instruction in enumerate(block):
            ready = max((finish[producer] for producer in producers[index]), default=0.0)
            finish[index] = ready + float(table.latency_of(instruction.opcode.name))
        loop_carried = block.loop_carried_registers()
        last_writer: Dict[str, int] = {}
        for index, instruction in enumerate(block):
            for register in instruction.destination_registers():
                last_writer[register] = index
        chain_tails = [last_writer[register] for register in loop_carried
                       if register in last_writer]
        if not chain_tails:
            return 0.0
        return max(finish[tail] for tail in chain_tails)

    # ------------------------------------------------------------------
    # Combined report
    # ------------------------------------------------------------------
    def summary(self, block: BasicBlock) -> str:
        """A textual report combining timing, bottleneck and pressure views."""
        report = self.bottleneck_report(block)
        lines = [
            f"Predicted timing: {report.timing:.2f} cycles/iteration",
            f"Bottleneck: {report.bottleneck}",
            f"  dispatch bound:   {report.dispatch_bound:.2f}",
            f"  port bound:       {report.port_bound:.2f}",
            f"  dependency bound: {report.dependency_bound:.2f}",
            "",
            self.render_resource_pressure(block),
            "",
            self.render_timeline(block),
        ]
        return "\n".join(lines)
