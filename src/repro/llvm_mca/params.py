"""The llvm-mca parameter table.

An :class:`MCAParameterTable` holds the complete set of parameters the paper
learns (Table II): two global integers (``DispatchWidth``,
``ReorderBufferSize``) plus, for every opcode in the opcode table, the
``NumMicroOps`` count, the ``WriteLatency``, a 3-slot ``ReadAdvanceCycles``
vector, and a 10-port ``PortMap`` occupancy vector.

The table is stored as NumPy arrays indexed by opcode index, and can be
flattened to / restored from a single float vector, which is the interface
the DiffTune optimizer and the black-box baselines use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable

#: Number of execution ports modeled — the paper fixes this at 10, the default
#: for llvm-mca's Haswell model, for every microarchitecture.
NUM_PORTS = 10

#: Number of ReadAdvanceCycles slots per instruction (source operand slots).
NUM_READ_ADVANCE_SLOTS = 3


@dataclass
class MCAParameterTable:
    """All parameters of the llvm-mca simulation model.

    Attributes:
        opcode_table: The opcode universe the per-instruction arrays index.
        dispatch_width: Micro-ops that may enter/leave dispatch per cycle.
        reorder_buffer_size: Micro-ops that may be in flight simultaneously.
        num_micro_ops: ``(num_opcodes,)`` array of micro-op counts (>= 1).
        write_latency: ``(num_opcodes,)`` array of destination latencies (>= 0).
        read_advance_cycles: ``(num_opcodes, 3)`` forwarding credits (>= 0).
        port_map: ``(num_opcodes, 10)`` port occupancy cycles (>= 0).
    """

    opcode_table: OpcodeTable
    dispatch_width: int
    reorder_buffer_size: int
    num_micro_ops: np.ndarray
    write_latency: np.ndarray
    read_advance_cycles: np.ndarray
    port_map: np.ndarray

    def __post_init__(self) -> None:
        count = len(self.opcode_table)
        self.num_micro_ops = np.asarray(self.num_micro_ops, dtype=np.int64)
        self.write_latency = np.asarray(self.write_latency, dtype=np.int64)
        self.read_advance_cycles = np.asarray(self.read_advance_cycles, dtype=np.int64)
        self.port_map = np.asarray(self.port_map, dtype=np.int64)
        expected_shapes = {
            "num_micro_ops": (count,),
            "write_latency": (count,),
            "read_advance_cycles": (count, NUM_READ_ADVANCE_SLOTS),
            "port_map": (count, NUM_PORTS),
        }
        for name, shape in expected_shapes.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name} has shape {actual}, expected {shape}")
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, opcode_table: Optional[OpcodeTable] = None,
              dispatch_width: int = 4, reorder_buffer_size: int = 192) -> "MCAParameterTable":
        """A minimal valid table: 1 uop, latency 0, empty port map."""
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        count = len(opcode_table)
        return cls(
            opcode_table=opcode_table,
            dispatch_width=dispatch_width,
            reorder_buffer_size=reorder_buffer_size,
            num_micro_ops=np.ones(count, dtype=np.int64),
            write_latency=np.zeros(count, dtype=np.int64),
            read_advance_cycles=np.zeros((count, NUM_READ_ADVANCE_SLOTS), dtype=np.int64),
            port_map=np.zeros((count, NUM_PORTS), dtype=np.int64),
        )

    def copy(self) -> "MCAParameterTable":
        return MCAParameterTable(
            opcode_table=self.opcode_table,
            dispatch_width=int(self.dispatch_width),
            reorder_buffer_size=int(self.reorder_buffer_size),
            num_micro_ops=self.num_micro_ops.copy(),
            write_latency=self.write_latency.copy(),
            read_advance_cycles=self.read_advance_cycles.copy(),
            port_map=self.port_map.copy(),
        )

    # ------------------------------------------------------------------
    # Validation and constraints
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the integer lower-bound constraints from Table II."""
        if self.dispatch_width < 1:
            raise ValueError("DispatchWidth must be >= 1")
        if self.reorder_buffer_size < 1:
            raise ValueError("ReorderBufferSize must be >= 1")
        if np.any(self.num_micro_ops < 1):
            raise ValueError("NumMicroOps must be >= 1 for every opcode")
        if np.any(self.write_latency < 0):
            raise ValueError("WriteLatency must be >= 0 for every opcode")
        if np.any(self.read_advance_cycles < 0):
            raise ValueError("ReadAdvanceCycles must be >= 0")
        if np.any(self.port_map < 0):
            raise ValueError("PortMap entries must be >= 0")

    # ------------------------------------------------------------------
    # Per-opcode accessors
    # ------------------------------------------------------------------
    def opcode_index(self, opcode_name: str) -> int:
        return self.opcode_table.index_of(opcode_name)

    def latency_of(self, opcode_name: str) -> int:
        return int(self.write_latency[self.opcode_index(opcode_name)])

    def micro_ops_of(self, opcode_name: str) -> int:
        return int(self.num_micro_ops[self.opcode_index(opcode_name)])

    def port_map_of(self, opcode_name: str) -> np.ndarray:
        return self.port_map[self.opcode_index(opcode_name)].copy()

    def read_advance_of(self, opcode_name: str) -> np.ndarray:
        return self.read_advance_cycles[self.opcode_index(opcode_name)].copy()

    def set_latency(self, opcode_name: str, value: int) -> None:
        self.write_latency[self.opcode_index(opcode_name)] = int(value)

    # ------------------------------------------------------------------
    # Counting and flattening
    # ------------------------------------------------------------------
    @property
    def num_opcodes(self) -> int:
        return len(self.opcode_table)

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count (matches the paper's 11265 accounting:
        2 globals + (1 + 1 + 3 + 10) per opcode)."""
        per_instruction = 1 + 1 + NUM_READ_ADVANCE_SLOTS + NUM_PORTS
        return 2 + per_instruction * self.num_opcodes

    def to_vector(self) -> np.ndarray:
        """Flatten to a float vector: [dispatch, rob, uops*, latency*, advance*, ports*]."""
        return np.concatenate([
            np.array([self.dispatch_width, self.reorder_buffer_size], dtype=np.float64),
            self.num_micro_ops.astype(np.float64),
            self.write_latency.astype(np.float64),
            self.read_advance_cycles.astype(np.float64).ravel(),
            self.port_map.astype(np.float64).ravel(),
        ])

    @classmethod
    def from_vector(cls, vector: np.ndarray,
                    opcode_table: Optional[OpcodeTable] = None) -> "MCAParameterTable":
        """Inverse of :meth:`to_vector`; values are rounded and clipped to bounds."""
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        count = len(opcode_table)
        expected = 2 + count * (2 + NUM_READ_ADVANCE_SLOTS + NUM_PORTS)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (expected,):
            raise ValueError(f"expected vector of length {expected}, got {vector.shape}")
        cursor = 2
        dispatch_width = max(1, int(round(vector[0])))
        reorder_buffer_size = max(1, int(round(vector[1])))
        num_micro_ops = np.clip(np.round(vector[cursor:cursor + count]), 1, None).astype(np.int64)
        cursor += count
        write_latency = np.clip(np.round(vector[cursor:cursor + count]), 0, None).astype(np.int64)
        cursor += count
        advance_size = count * NUM_READ_ADVANCE_SLOTS
        read_advance = np.clip(np.round(vector[cursor:cursor + advance_size]), 0, None)
        read_advance = read_advance.astype(np.int64).reshape(count, NUM_READ_ADVANCE_SLOTS)
        cursor += advance_size
        ports_size = count * NUM_PORTS
        port_map = np.clip(np.round(vector[cursor:cursor + ports_size]), 0, None)
        port_map = port_map.astype(np.int64).reshape(count, NUM_PORTS)
        return cls(opcode_table=opcode_table, dispatch_width=dispatch_width,
                   reorder_buffer_size=reorder_buffer_size, num_micro_ops=num_micro_ops,
                   write_latency=write_latency, read_advance_cycles=read_advance,
                   port_map=port_map)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable representation keyed by opcode name."""
        payload = {
            "dispatch_width": int(self.dispatch_width),
            "reorder_buffer_size": int(self.reorder_buffer_size),
            "opcodes": {},
        }
        for index, opcode in enumerate(self.opcode_table):
            payload["opcodes"][opcode.name] = {
                "num_micro_ops": int(self.num_micro_ops[index]),
                "write_latency": int(self.write_latency[index]),
                "read_advance_cycles": self.read_advance_cycles[index].tolist(),
                "port_map": self.port_map[index].tolist(),
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict,
                  opcode_table: Optional[OpcodeTable] = None) -> "MCAParameterTable":
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        table = cls.zeros(opcode_table,
                          dispatch_width=int(payload["dispatch_width"]),
                          reorder_buffer_size=int(payload["reorder_buffer_size"]))
        for name, entry in payload["opcodes"].items():
            if name not in opcode_table:
                continue
            index = opcode_table.index_of(name)
            table.num_micro_ops[index] = int(entry["num_micro_ops"])
            table.write_latency[index] = int(entry["write_latency"])
            table.read_advance_cycles[index] = np.asarray(entry["read_advance_cycles"],
                                                          dtype=np.int64)
            table.port_map[index] = np.asarray(entry["port_map"], dtype=np.int64)
        table.validate()
        return table

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load_json(cls, path: str,
                  opcode_table: Optional[OpcodeTable] = None) -> "MCAParameterTable":
        with open(path) as handle:
            return cls.from_dict(json.load(handle), opcode_table)
