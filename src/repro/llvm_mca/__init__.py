"""An llvm-mca-style out-of-order superscalar basic-block simulator.

This package reimplements, in Python, the simulation model the paper
optimizes: llvm-mca's Intel x86 pipeline with dispatch, issue, execute and
retire stages (Section II-A).  The simulator is driven entirely by an
:class:`~repro.llvm_mca.params.MCAParameterTable` — the same parameters
DiffTune learns:

==================== ======================= =====================================
Parameter            Count                   Meaning
==================== ======================= =====================================
DispatchWidth        1 global                micro-ops dispatched per cycle
ReorderBufferSize    1 global                micro-ops resident in issue+execute
NumMicroOps          1 per instruction       micro-ops per instruction
WriteLatency         1 per instruction       cycles before destinations readable
ReadAdvanceCycles    3 per instruction       forwarding credit per source operand
PortMap              10 per instruction      port occupancy cycles per port
==================== ======================= =====================================

Modeling assumptions follow llvm-mca: the frontend is not modeled, all memory
accesses hit the L1 cache and memory dependencies are not tracked, and blocks
are timed over repeated iterations (the BHive convention of 100 unrolled
iterations).
"""

from repro.llvm_mca.params import MCAParameterTable, NUM_PORTS, NUM_READ_ADVANCE_SLOTS
from repro.llvm_mca.ports import PortSet
from repro.llvm_mca.port_groups import (GroupedPortSet, HASWELL_PORT_GROUPS, PortGroup,
                                        resolve_grouped_port_map)
from repro.llvm_mca.reorder_buffer import ReorderBuffer
from repro.llvm_mca.simulator import MCASimulator, SimulationResult
from repro.llvm_mca.timeline import (BottleneckReport, ResourcePressure, TimelineEntry,
                                     TimelineView)

__all__ = [
    "MCAParameterTable",
    "NUM_PORTS",
    "NUM_READ_ADVANCE_SLOTS",
    "PortSet",
    "PortGroup",
    "GroupedPortSet",
    "HASWELL_PORT_GROUPS",
    "resolve_grouped_port_map",
    "ReorderBuffer",
    "MCASimulator",
    "SimulationResult",
    "TimelineView",
    "TimelineEntry",
    "ResourcePressure",
    "BottleneckReport",
]
