"""Numpy-vectorized llvm-mca timing kernel over a whole packed corpus.

:func:`simulate_packed_mca` advances *every* block of a
:class:`~repro.engine.megabatch.PackedCorpus` through the four-stage
pipeline of :func:`repro.llvm_mca.simulator.simulate_bound_mca` in lockstep:
one step of the loop executes dynamic instruction ``t`` of every still-active
block, with the per-block scalar state (dispatch bandwidth, register
scoreboard, port reservations, reorder-buffer occupancy) held in
``(B,)``-shaped int64 arrays.

Equivalence with the scalar kernel is exact, not approximate: every quantity
is integer cycle arithmetic, each vectorized statement mirrors one statement
of the scalar loop, and the final per-iteration division happens in float64
on identical integers — so timings are bit-identical (pinned by the property
tests in ``tests/test_megabatch.py``).

The per-step cost is dominated by fixed numpy dispatch overhead and memory
traffic rather than element arithmetic, so both the step loop and the
schedule construction are engineered to stay minimal:

* everything derivable from the static schedule — per-step micro-op counts,
  operand indices, port-slot lists, stall thresholds — is materialized once
  up front, **step-major and lane-minor** (``(H, B)`` / ``(H, S, B)``), so
  each step slices contiguous rows and every 2D reduction runs over the
  fast axis;
* a lane's schedule repeats with period = its block length, so lanes are
  grouped into runs of identical (length, warmup, measure) — the kernel
  permutes lanes so equal keys are adjacent — and each run's schedule is
  gathered once at pattern size ``(L, ..., nc)`` and then *tiled* down the
  horizon at memcpy speed instead of fancy-gathered element by element;
* the port dimension is compressed from ``NUM_PORTS`` to the maximum
  number of ports any opcode actually uses: each instruction carries a
  short list of (scaled port index, busy cycles) slots, padded with a
  dummy port row and hugely negative cycles so padding loses every max and
  scatters only into the dummy row of the port state;
* within a run every lane finishes at the same step, so there is no
  per-element activity masking at all: steps past a run's end are filled
  with constant pad rows (zero micro-ops, dummy ports, sentinel operand
  reads, sink writes), and the finished lanes step on garbage confined to
  their own state, snapshotted at their last active step;
* the reorder buffer exploits that retire cycles are non-decreasing per
  lane: entry ``t`` of lane ``b`` retires at ``rob_retire[t, b]``, so
  occupancy at any head position is a difference of prefix sums of the
  (static) per-entry micro-op counts, and the head only has to move — via
  a per-lane scalar bisection over the retire history — in the rare steps
  where a lane's buffer looks full.  Chunks whose lanes cannot fill the
  buffer at all (total micro-ops <= capacity) skip the stage entirely.

All scratch arrays are preallocated, so steps allocate nothing.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.engine.megabatch import PackedCorpus
from repro.llvm_mca.params import (MCAParameterTable, NUM_PORTS,
                                   NUM_READ_ADVANCE_SLOTS)
from repro.llvm_mca.simulator import TIMING_ITERATIONS

#: Ready cycle of the per-lane sentinel register slot that invalid operand
#: reads are redirected to; low enough that it never wins an operand max,
#: high enough that subtracting any ReadAdvance cannot underflow int64.
_NEVER_READY = np.int64(-(2 ** 40))


def _first_unretired(retire_column: np.ndarray, lo: int, hi: int,
                     cycle: int) -> int:
    """First index in ``[lo, hi)`` whose retire cycle exceeds ``cycle``.

    A scalar bisection over a (strided) column view: ``np.searchsorted``
    would copy the column into a contiguous buffer on every call, which
    dominates the slow path for long histories.
    """
    while lo < hi:
        mid = (lo + hi) >> 1
        if retire_column[mid] <= cycle:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _port_slot_tables(port_map: np.ndarray) -> tuple:
    """Compress an ``(O, P)`` port map into per-opcode used-port slots.

    Returns ``(port_id, busy_cycles)``, each ``(O, U)`` where ``U`` is the
    maximum number of ports any opcode uses (at least 1): slot ``u`` of
    opcode ``o`` holds the index of its ``u``-th used port and that port's
    busy cycles.  Unused slots point at the dummy port ``NUM_PORTS`` with
    hugely negative cycles, so they lose every max and scatter only into
    the dummy row of the port state.
    """
    port_map = np.asarray(port_map, dtype=np.int64)
    used = port_map > 0
    max_used = max(int(used.sum(axis=1).max(initial=0)), 1)
    # Stable argsort of (not used) floats used ports to the front in
    # ascending port order, matching the scalar kernel's iteration order
    # (order does not affect results, but determinism is free).
    front = np.argsort(~used, axis=1, kind="stable")[:, :max_used]
    cycles = np.take_along_axis(port_map, front, axis=1)
    port_id = np.where(cycles > 0, front, NUM_PORTS)
    busy = np.where(cycles > 0, cycles, _NEVER_READY)
    return port_id, busy


def _lane_runs(lengths: np.ndarray, warmup: np.ndarray,
               measure: np.ndarray) -> List[tuple]:
    """Split lanes (sorted by key) into ``(c0, c1)`` runs of equal keys."""
    change = np.nonzero((np.diff(lengths) != 0) | (np.diff(warmup) != 0)
                        | (np.diff(measure) != 0))[0] + 1
    bounds = [0, *change.tolist(), int(lengths.shape[0])]
    return list(zip(bounds[:-1], bounds[1:]))


def _tile_rows(pattern: np.ndarray, repeats: int) -> np.ndarray:
    """Repeat ``pattern`` ``repeats`` times along axis 0 (memcpy speed)."""
    return np.tile(pattern, (repeats,) + (1,) * (pattern.ndim - 1))


def simulate_packed_mca(table: MCAParameterTable, corpus: PackedCorpus,
                        warmup: np.ndarray, measure: np.ndarray) -> np.ndarray:
    """Steady-state cycles/iteration of every corpus block under ``table``.

    Args:
        table: The parameter table driving the simulation.
        corpus: Packed blocks (see :func:`repro.engine.megabatch.pack_corpus`).
        warmup: ``(B,)`` warmup iterations per block (>= 0).
        measure: ``(B,)`` measurement iterations per block (>= 1).

    Returns:
        ``(B,)`` float64 timings, bit-identical to running
        :func:`~repro.llvm_mca.simulator.simulate_bound_mca` per block.
    """
    num_blocks = corpus.num_blocks
    if num_blocks == 0:
        return np.empty(0, dtype=np.float64)
    warmup = np.asarray(warmup, dtype=np.int64)
    measure = np.asarray(measure, dtype=np.int64)
    if np.any(measure < 1):
        raise ValueError("megabatch kernel requires measure >= 1 per block")

    width = np.int64(int(table.dispatch_width))
    capacity = int(table.reorder_buffer_size)

    # Lanes are permuted so equal (length, warmup, measure) keys become
    # adjacent runs: within a run every schedule is periodic with the same
    # period and every lane ends at the same step, so schedules are built
    # once per run at pattern size and tiled down the horizon.  All
    # simulation state lives in permuted lane space; timings scatter back
    # through ``perm`` at the end.
    perm = np.lexsort((measure, warmup, corpus.lengths))
    lengths = np.maximum(corpus.lengths[perm], 1)
    warmup = warmup[perm]
    measure = measure[perm]
    opcode_rows = corpus.opcode_indices[perm]
    source_rows = corpus.source_ids[perm]
    destination_rows = corpus.destination_ids[perm]

    total_steps = (warmup + measure) * lengths
    warmup_steps = warmup * lengths
    horizon = int(total_steps.max(initial=1))
    rows = np.arange(num_blocks)
    runs = _lane_runs(lengths, warmup, measure)

    # Per-opcode tables, gathered per run at pattern size below.
    uops_table = np.maximum(table.num_micro_ops, 1)
    needed_table = np.minimum(uops_table, width)
    extra_table = np.where(uops_table > width, (uops_table - 1) // width, 0)
    rob_table = np.minimum(uops_table, capacity)
    span_table = np.maximum(table.port_map.max(axis=1), 1)
    latency_table = np.asarray(table.write_latency, dtype=np.int64)
    port_id_table, port_busy_table = _port_slot_tables(table.port_map)
    num_slots = port_id_table.shape[1]
    scaled_port_table = port_id_table.T * num_blocks              # (U, O)
    port_busy_table = port_busy_table.T                           # (U, O)
    num_sources = source_rows.shape[2]
    slot_clamp = np.minimum(np.arange(num_sources), NUM_READ_ADVANCE_SLOTS - 1)
    advance_table = np.ascontiguousarray(
        table.read_advance_cycles[:, slot_clamp].T)               # (S, O)
    num_destinations = destination_rows.shape[2]

    # Register file: per-lane block of ``R`` real slots plus a sentinel slot
    # (invalid reads, hugely negative) and a sink slot (invalid writes).
    registers = max(int(corpus.num_registers.max(initial=0)), 1) + 2
    lane_base = rows * registers
    sentinel = lane_base + registers - 2
    sink = lane_base + registers - 1

    # Step-major schedules, filled run by run: ``x[step]`` is one
    # contiguous row per step.
    needed_sched = np.empty((horizon, num_blocks), dtype=np.int64)
    dispatch_thresh = np.empty((horizon, num_blocks), dtype=np.int64)
    extra_sched = np.empty((horizon, num_blocks), dtype=np.int64)
    rob_request = np.empty((horizon, num_blocks), dtype=np.int64)
    write_latency = np.empty((horizon, num_blocks), dtype=np.int64)
    resource_span = np.empty((horizon, num_blocks), dtype=np.int64)
    advance = np.empty((horizon, num_sources, num_blocks), dtype=np.int64)
    flat_sources = np.empty((horizon, num_sources, num_blocks), dtype=np.int64)
    flat_destinations = np.empty((horizon, num_destinations, num_blocks),
                                 dtype=np.int64)
    port_index = np.empty((horizon, num_slots, num_blocks), dtype=np.int64)
    port_busy = np.empty((horizon, num_slots, num_blocks), dtype=np.int64)
    lane_total_uops = np.empty(num_blocks, dtype=np.int64)
    have_extra = False
    warm_parts: Dict[int, List[np.ndarray]] = {}
    final_parts: Dict[int, List[np.ndarray]] = {}

    for c0, c1 in runs:
        length = int(lengths[c0])
        iterations = int(warmup[c0] + measure[c0])
        run_end = iterations * length
        cols = rows[c0:c1]
        # One period of the run's schedule: (L, nc) per-opcode gathers.
        opcode_pat = np.ascontiguousarray(opcode_rows[c0:c1, :length].T)
        needed_pat = needed_table[opcode_pat]
        extra_pat = extra_table[opcode_pat]
        rob_pat = rob_table[opcode_pat]
        needed_sched[:run_end, c0:c1] = _tile_rows(needed_pat, iterations)
        dispatch_thresh[:run_end, c0:c1] = _tile_rows(width - needed_pat,
                                                      iterations)
        extra_sched[:run_end, c0:c1] = _tile_rows(extra_pat, iterations)
        rob_request[:run_end, c0:c1] = _tile_rows(rob_pat, iterations)
        write_latency[:run_end, c0:c1] = _tile_rows(latency_table[opcode_pat],
                                                    iterations)
        resource_span[:run_end, c0:c1] = _tile_rows(span_table[opcode_pat],
                                                    iterations)
        have_extra = have_extra or bool(extra_pat.any())
        lane_total_uops[c0:c1] = rob_pat.sum(axis=0) * iterations

        advance_pat = advance_table[:, opcode_pat].transpose(1, 0, 2)
        advance[:run_end, :, c0:c1] = _tile_rows(advance_pat, iterations)
        port_index_pat = (scaled_port_table[:, opcode_pat].transpose(1, 0, 2)
                          + cols[None, None, :])
        port_index[:run_end, :, c0:c1] = _tile_rows(port_index_pat, iterations)
        port_busy_pat = port_busy_table[:, opcode_pat].transpose(1, 0, 2)
        port_busy[:run_end, :, c0:c1] = _tile_rows(port_busy_pat, iterations)

        # Operand ids: -1 padding redirects to the sentinel / sink slots on
        # the pattern, before tiling.
        source_pat = np.where(
            source_rows[c0:c1, :length] >= 0,
            source_rows[c0:c1, :length] + lane_base[c0:c1, None, None],
            sentinel[c0:c1, None, None]).transpose(1, 2, 0)
        flat_sources[:run_end, :, c0:c1] = _tile_rows(source_pat, iterations)
        destination_pat = np.where(
            destination_rows[c0:c1, :length] >= 0,
            destination_rows[c0:c1, :length] + lane_base[c0:c1, None, None],
            sink[c0:c1, None, None]).transpose(1, 2, 0)
        flat_destinations[:run_end, :, c0:c1] = _tile_rows(destination_pat,
                                                           iterations)

        # Pad rows past the run's end: zero micro-ops, dummy ports, sentinel
        # reads, sink writes — the finished lanes' bookkeeping freezes and
        # their garbage stays confined to their own state, which was
        # snapshotted at their last active step.
        if run_end < horizon:
            needed_sched[run_end:, c0:c1] = 0
            dispatch_thresh[run_end:, c0:c1] = width
            extra_sched[run_end:, c0:c1] = 0
            rob_request[run_end:, c0:c1] = 0
            write_latency[run_end:, c0:c1] = 0
            resource_span[run_end:, c0:c1] = 1
            advance[run_end:, :, c0:c1] = 0
            port_index[run_end:, :, c0:c1] = (NUM_PORTS * num_blocks
                                              + cols)[None, None, :]
            port_busy[run_end:, :, c0:c1] = _NEVER_READY
            flat_sources[run_end:, :, c0:c1] = sentinel[c0:c1][None, None, :]
            flat_destinations[run_end:, :, c0:c1] = sink[c0:c1][None, None, :]

        warm_end = int(warmup_steps[c0])
        if warm_end > 0:
            warm_parts.setdefault(warm_end - 1, []).append(cols)
        final_parts.setdefault(run_end - 1, []).append(cols)

    warm_lanes = {step: np.concatenate(parts)
                  for step, parts in warm_parts.items()}
    final_lanes = {step: np.concatenate(parts)
                   for step, parts in final_parts.items()}

    # Reorder buffer: entry ``t`` of each lane is allocated at step ``t``
    # (finished lanes allocate zero-micro-op entries), so occupancy between
    # head and tail is a prefix-sum difference of the static request counts.
    # A lane is apparently full iff
    #   cum[step] - head_cum + request > capacity,
    # rewritten as ``head_cum < rob_thresh[step]`` with a static threshold
    # (hugely negative past a run's end so finished lanes never re-trigger).
    # Chunks that cannot fill the buffer at all skip the stage entirely.
    track_rob = bool((lane_total_uops > capacity).any())
    if track_rob:
        rob_cumulative = np.zeros((horizon + 1, num_blocks), dtype=np.int64)
        np.cumsum(rob_request, axis=0, out=rob_cumulative[1:])
        rob_thresh = rob_cumulative[:horizon] + rob_request
        rob_thresh -= capacity
        for c0, c1 in runs:
            run_end = int(total_steps[c0])
            if run_end < horizon:
                rob_thresh[run_end:, c0:c1] = _NEVER_READY
        rob_retire = np.zeros((horizon, num_blocks), dtype=np.int64)

    register_ready = np.zeros(num_blocks * registers, dtype=np.int64)
    register_ready[sentinel] = _NEVER_READY
    port_free = np.zeros((NUM_PORTS + 1) * num_blocks, dtype=np.int64)
    dispatch_cycle = np.zeros(num_blocks, dtype=np.int64)
    dispatched = np.zeros(num_blocks, dtype=np.int64)
    previous_retire = np.zeros(num_blocks, dtype=np.int64)
    rob_head = np.zeros(num_blocks, dtype=np.int64)
    # Prefix sum of micro-ops already popped at each lane's head; only
    # changes when the head moves, so it is cached instead of re-gathered.
    rob_head_cumulative = np.zeros(num_blocks, dtype=np.int64)
    warmup_end = np.zeros(num_blocks, dtype=np.int64)
    final_end = np.zeros(num_blocks, dtype=np.int64)

    # Scratch buffers so the step loop allocates nothing.
    lane_i64 = np.empty(num_blocks, dtype=np.int64)
    lane_bool = np.empty(num_blocks, dtype=bool)
    source_ready = np.empty((num_sources, num_blocks), dtype=np.int64)
    operands_ready = np.empty(num_blocks, dtype=np.int64)
    issue_cycle = np.empty(num_blocks, dtype=np.int64)
    completion = np.empty(num_blocks, dtype=np.int64)
    slot_scratch = np.empty((num_slots, num_blocks), dtype=np.int64)

    take = np.take
    maximum = np.maximum
    add = np.add

    for step in range(horizon):
        # --------------------------------------------------------------
        # Dispatch stage: bandwidth, then reorder-buffer space.
        # --------------------------------------------------------------
        rollover = np.greater(dispatched, dispatch_thresh[step], out=lane_bool)
        add(dispatch_cycle, rollover, out=dispatch_cycle)
        dispatched[rollover] = 0

        if track_rob:
            # Deferred drain: lanes that still fit skip the buffer.
            apparently_full = np.less(rob_head_cumulative, rob_thresh[step],
                                      out=lane_bool)
            if apparently_full.any():
                for lane in np.nonzero(apparently_full)[0]:
                    lane = int(lane)
                    retires = rob_retire[:, lane]
                    cumulative = rob_cumulative[:, lane]
                    allocated = int(cumulative[step])
                    head = int(rob_head[lane])
                    cycle = int(dispatch_cycle[lane])
                    request = int(rob_request[step, lane])
                    # Drain entries retired by the current cycle, then walk
                    # the clock forward entry by entry until the request
                    # fits — exactly ``ReorderBuffer.earliest_cycle_with_space``.
                    head = _first_unretired(retires, head, step, cycle)
                    while (allocated - int(cumulative[head]) + request
                           > capacity and head < step):
                        retire = int(retires[head])
                        if retire > cycle:
                            cycle = retire
                        head = _first_unretired(retires, head, step, cycle)
                    rob_head[lane] = head
                    rob_head_cumulative[lane] = cumulative[head]
                    if cycle > dispatch_cycle[lane]:
                        dispatch_cycle[lane] = cycle
                        dispatched[lane] = 0
        add(dispatched, needed_sched[step], out=dispatched)

        # --------------------------------------------------------------
        # Issue stage: wait for register operands.
        # --------------------------------------------------------------
        take(register_ready, flat_sources[step], out=source_ready,
             mode="clip")
        np.subtract(source_ready, advance[step], out=source_ready)
        maximum.reduce(source_ready, axis=0, out=operands_ready)
        maximum(operands_ready, dispatch_cycle, out=operands_ready)

        # --------------------------------------------------------------
        # Execute stage: wait for the instruction's ports, then reserve
        # them.  Pad slots read the dummy port row (zero, then hugely
        # negative once written) and scatter back into it.
        # --------------------------------------------------------------
        indices = port_index[step]
        take(port_free, indices, out=slot_scratch, mode="clip")
        maximum.reduce(slot_scratch, axis=0, out=issue_cycle)
        maximum(issue_cycle, operands_ready, out=issue_cycle)
        add(port_busy[step], issue_cycle, out=slot_scratch)
        port_free[indices] = slot_scratch

        # Destinations become readable WriteLatency cycles after issue.
        add(issue_cycle, write_latency[step], out=lane_i64)
        register_ready[flat_destinations[step]] = lane_i64

        # --------------------------------------------------------------
        # Retire stage: in order, after execution completes.
        # --------------------------------------------------------------
        add(issue_cycle, resource_span[step], out=completion)
        maximum(completion, lane_i64, out=completion)
        add(dispatch_cycle, 1, out=lane_i64)
        maximum(completion, lane_i64, out=completion)
        maximum(previous_retire, completion, out=previous_retire)
        if track_rob:
            rob_retire[step] = previous_retire

        if have_extra:
            # Wider-than-dispatch instructions block the dispatcher for
            # their extra cycles.
            extra = extra_sched[step]
            add(dispatch_cycle, extra, out=dispatch_cycle)
            wide = np.not_equal(extra, 0, out=lane_bool)
            dispatched[wide] = 0

        lanes = warm_lanes.get(step)
        if lanes is not None:
            warmup_end[lanes] = previous_retire[lanes]
        lanes = final_lanes.get(step)
        if lanes is not None:
            final_end[lanes] = previous_retire[lanes]

    cycles_per_iteration = (final_end - warmup_end) / measure
    np.maximum(cycles_per_iteration, 1.0 / TIMING_ITERATIONS,
               out=cycles_per_iteration)
    timings = np.empty(num_blocks, dtype=np.float64)
    timings[perm] = cycles_per_iteration
    return timings


__all__ = ["simulate_packed_mca"]
