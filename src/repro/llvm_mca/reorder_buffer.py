"""Reorder-buffer occupancy tracking.

The dispatch stage may only dispatch an instruction when the reorder buffer
has room for all of its micro-ops; slots are released, in program order, when
instructions retire.  The simulator resolves this constraint analytically: it
keeps a FIFO of (retire_cycle, micro_ops) entries and, when space is needed,
advances a virtual clock to the retire cycle that frees enough slots.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class ReorderBuffer:
    """Tracks micro-op occupancy of the reorder buffer over time."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("reorder buffer capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[Tuple[int, int]] = deque()
        self._occupied = 0

    def reset(self) -> None:
        self._entries.clear()
        self._occupied = 0

    @property
    def occupied(self) -> int:
        return self._occupied

    def _drain_retired(self, cycle: int) -> None:
        """Release entries whose retire cycle is <= ``cycle``."""
        while self._entries and self._entries[0][0] <= cycle:
            _, micro_ops = self._entries.popleft()
            self._occupied -= micro_ops

    def earliest_cycle_with_space(self, micro_ops: int, not_before: int) -> int:
        """Earliest cycle >= ``not_before`` at which ``micro_ops`` slots are free.

        Instructions wider than the whole buffer are allowed to dispatch once
        the buffer is empty (llvm-mca clamps rather than deadlocks).
        """
        micro_ops = min(micro_ops, self.capacity)
        cycle = not_before
        self._drain_retired(cycle)
        while self._occupied + micro_ops > self.capacity:
            if not self._entries:
                break
            cycle = max(cycle, self._entries[0][0])
            self._drain_retired(cycle)
        return cycle

    def allocate(self, micro_ops: int, retire_cycle: int) -> None:
        """Occupy ``micro_ops`` slots until ``retire_cycle``.

        Entries must be allocated in program order with non-decreasing retire
        cycles to preserve in-order retirement; the caller (the simulator's
        retire stage) guarantees this.
        """
        micro_ops = min(micro_ops, self.capacity)
        self._entries.append((retire_cycle, micro_ops))
        self._occupied += micro_ops
