"""Execution-port groups (llvm-mca's ProcResGroup resources).

llvm-mca's scheduling model contains not just individual execution ports but
*port groups*: named resources that stand for "any one of these ports" (e.g.
Haswell's HWPort01 means "port 0 or port 1").  The paper sets every port-group
entry in the PortMap to zero and learns only the per-port entries, because
llvm-mca's group semantics do not correspond to the standard definition of a
port mapping (Section V-A).  This module implements the group semantics so
that the design decision can be studied rather than merely inherited:

* :class:`PortGroup` — a named set of member ports.
* :data:`HASWELL_PORT_GROUPS` — the standard Haswell-style groupings over the
  10-port layout used throughout this reproduction.
* :class:`GroupedPortSet` — a port tracker in which an instruction's demand
  on a group may be satisfied by whichever member port frees up first
  (least-loaded assignment), alongside plain per-port demands.
* :func:`resolve_grouped_port_map` — flatten a grouped occupancy specification
  to a plain 10-entry PortMap row, the representation the simulator and the
  learned parameter tables use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.llvm_mca.params import NUM_PORTS


@dataclass(frozen=True)
class PortGroup:
    """A named group of execution ports that can serve the same micro-ops."""

    name: str
    ports: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError(f"port group {self.name} needs at least one port")
        if len(set(self.ports)) != len(self.ports):
            raise ValueError(f"port group {self.name} has duplicate ports")
        for port in self.ports:
            if port < 0:
                raise ValueError(f"port group {self.name} has a negative port index")

    def __contains__(self, port: int) -> bool:
        return port in self.ports

    @property
    def width(self) -> int:
        """Number of member ports (how many micro-ops it can absorb per cycle)."""
        return len(self.ports)


#: Haswell-style port groups over the 10-port layout this reproduction uses:
#: ports 0, 1, 5, 6 are ALU-capable; 0 and 1 carry multiplies and vector
#: arithmetic; 2 and 3 are load AGUs; 4 is store data; 7 is the store AGU.
HASWELL_PORT_GROUPS: Dict[str, PortGroup] = {
    "P01": PortGroup("P01", (0, 1)),
    "P0156": PortGroup("P0156", (0, 1, 5, 6)),
    "P06": PortGroup("P06", (0, 6)),
    "P23": PortGroup("P23", (2, 3)),
    "P237": PortGroup("P237", (2, 3, 7)),
    "P15": PortGroup("P15", (1, 5)),
}


def resolve_grouped_port_map(per_port_cycles: Sequence[int],
                             group_cycles: Mapping[str, int],
                             groups: Mapping[str, PortGroup],
                             num_ports: int = NUM_PORTS) -> List[int]:
    """Flatten grouped occupancy into a plain per-port PortMap row.

    Each group's cycles are assigned to its least-loaded member port, one
    cycle at a time, mirroring how hardware steers micro-ops to whichever
    capable port is least busy.  The result is deterministic (ties go to the
    lowest port index), which keeps parameter tables reproducible.

    Args:
        per_port_cycles: Cycles already assigned to individual ports.
        group_cycles: Cycles demanded from each named group.
        groups: Group definitions (name -> :class:`PortGroup`).
        num_ports: Width of the resulting row.

    Returns:
        A ``num_ports``-entry list of occupancy cycles.
    """
    if len(per_port_cycles) > num_ports:
        raise ValueError("per_port_cycles is wider than the port set")
    resolved = [0] * num_ports
    for port, cycles in enumerate(per_port_cycles):
        if cycles < 0:
            raise ValueError("per-port cycles must be non-negative")
        resolved[port] += int(cycles)
    for name, cycles in group_cycles.items():
        if cycles < 0:
            raise ValueError(f"group {name} has negative cycles")
        if name not in groups:
            raise KeyError(f"unknown port group: {name}")
        group = groups[name]
        for port in group.ports:
            if port >= num_ports:
                raise ValueError(f"group {name} references port {port} outside the port set")
        for _ in range(int(cycles)):
            target = min(group.ports, key=lambda port: (resolved[port], port))
            resolved[target] += 1
    return resolved


class GroupedPortSet:
    """Port availability tracking with group-aware issue.

    Mirrors :class:`~repro.llvm_mca.ports.PortSet` but lets an instruction
    express part of its port demand against groups: for each demanded group
    cycle the tracker picks the member port that frees up earliest.  This is
    the semantics the paper declines to learn parameters for; the ablation
    benchmark compares simulations with and without it.
    """

    def __init__(self, num_ports: int = NUM_PORTS,
                 groups: Mapping[str, PortGroup] = HASWELL_PORT_GROUPS) -> None:
        if num_ports < 1:
            raise ValueError("need at least one execution port")
        for group in groups.values():
            for port in group.ports:
                if port >= num_ports:
                    raise ValueError(
                        f"group {group.name} references port {port} outside the port set")
        self.num_ports = num_ports
        self.groups = dict(groups)
        self._free_at = np.zeros(num_ports, dtype=np.int64)

    def reset(self) -> None:
        self._free_at[:] = 0

    def free_at(self, port: int) -> int:
        return int(self._free_at[port])

    def utilization(self) -> List[int]:
        return [int(value) for value in self._free_at]

    # ------------------------------------------------------------------
    # Issue / reserve
    # ------------------------------------------------------------------
    def _group(self, name: str) -> PortGroup:
        if name not in self.groups:
            raise KeyError(f"unknown port group: {name}")
        return self.groups[name]

    def earliest_issue_cycle(self, port_cycles: Sequence[int],
                             group_cycles: Mapping[str, int], not_before: int) -> int:
        """Earliest cycle >= ``not_before`` at which the demand can be met.

        Plain per-port demands require that specific port; group demands only
        require that *some* member port is free, so the constraint is the
        minimum of the members' next-free cycles.
        """
        earliest = not_before
        for port, cycles in enumerate(port_cycles):
            if cycles > 0:
                earliest = max(earliest, int(self._free_at[port]))
        for name, cycles in group_cycles.items():
            if cycles > 0:
                group = self._group(name)
                earliest = max(earliest, min(int(self._free_at[port])
                                             for port in group.ports))
        return earliest

    def reserve(self, port_cycles: Sequence[int], group_cycles: Mapping[str, int],
                issue_cycle: int) -> int:
        """Reserve per-port and group demands starting at ``issue_cycle``.

        Group demands are steered to the member port that currently frees up
        earliest.  Returns the cycle at which the last reserved port frees.
        """
        completion = issue_cycle
        for port, cycles in enumerate(port_cycles):
            if cycles > 0:
                release = max(int(self._free_at[port]), issue_cycle) + int(cycles)
                self._free_at[port] = release
                completion = max(completion, release)
        for name, cycles in group_cycles.items():
            if cycles <= 0:
                continue
            group = self._group(name)
            target = min(group.ports, key=lambda port: (int(self._free_at[port]), port))
            release = max(int(self._free_at[target]), issue_cycle) + int(cycles)
            self._free_at[target] = release
            completion = max(completion, release)
        return completion

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def group_pressure(self) -> Dict[str, float]:
        """Average next-free cycle of each group's member ports."""
        return {name: float(np.mean([self._free_at[port] for port in group.ports]))
                for name, group in self.groups.items()}
