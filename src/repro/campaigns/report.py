"""Campaign report assembly and formatting.

The report is a schema-versioned plain-JSON document, rewritten atomically
after every evaluated chunk so a long campaign can be watched (and a killed
one inspected) mid-flight.  It deliberately contains only *result-determined*
data — no wall-clock times, no cache counters, no execution knobs — so an
interrupted campaign resumed from its checkpoints produces a byte-identical
file to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Sequence

import numpy as np

#: Bump when the report layout changes shape (consumers check this).
CAMPAIGN_REPORT_VERSION = 1

#: Quantile grid reported for the error distribution.
_QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)


def _error_stats(errors: np.ndarray) -> Dict[str, Any]:
    return {
        "count": int(errors.size),
        "mean": float(errors.mean()),
        "std": float(errors.std()),
        "min": float(errors.min()),
        "max": float(errors.max()),
        "quantiles": {f"p{int(q * 100):02d}": float(np.quantile(errors, q))
                      for q in _QUANTILES},
    }


def _delta_histogram(errors: np.ndarray, baseline: float,
                     bins: int) -> Dict[str, List[float]]:
    deltas = errors - baseline
    counts, edges = np.histogram(deltas, bins=bins)
    return {"bin_edges": [float(edge) for edge in edges],
            "counts": [int(count) for count in counts]}


def _axis_sensitivity(axis_labels: Sequence[str],
                      records: Sequence[Dict[str, Any]],
                      top_k: int) -> List[Dict[str, Any]]:
    """Per-axis spread of mean error across swept values, most sensitive first.

    A record contributes to an axis when its assignment pins that axis; the
    spread (max minus min of the per-value mean errors) ranks how much the
    axis moves the error distribution.
    """
    entries = []
    for label in axis_labels:
        by_value: Dict[int, List[float]] = {}
        for record in records:
            value = record["assignment"].get(label)
            if value is None:
                continue
            by_value.setdefault(int(value), []).append(record["error"])
        if len(by_value) < 2:
            continue
        means = {value: float(np.mean(errors))
                 for value, errors in sorted(by_value.items())}
        spread = max(means.values()) - min(means.values())
        entries.append({
            "axis": label,
            "spread": spread,
            "mean_error_by_value": [[value, mean] for value, mean in means.items()],
        })
    entries.sort(key=lambda entry: (-entry["spread"], entry["axis"]))
    return entries[:top_k]


def build_report(spec: Any, axis_labels: Sequence[str],
                 records: Sequence[Dict[str, Any]], baseline_error: float,
                 status: str) -> Dict[str, Any]:
    """Assemble the campaign report from evaluated variant records.

    ``records`` carry ``{"round", "block_fraction", "assignment", "error"}``
    in evaluation order.  Distribution statistics and best-variant ranking
    consider only full-corpus rounds (``block_fraction == 1``) so adaptive
    screening rounds don't pollute the comparison; the sensitivity ranking
    uses every record.
    """
    final = [record for record in records if record["block_fraction"] >= 1.0]
    scored = final or list(records)
    report: Dict[str, Any] = {
        "schema_version": CAMPAIGN_REPORT_VERSION,
        "status": status,
        "spec": spec.identity_dict(),
        "baseline_error": baseline_error,
        "num_variants": len(records),
        "num_full_corpus_variants": len(final),
        "variants": list(records),
    }
    if scored:
        errors = np.array([record["error"] for record in scored], dtype=np.float64)
        report["error_stats"] = _error_stats(errors)
        report["error_delta_histogram"] = _delta_histogram(
            errors, baseline_error, spec.histogram_bins)
        order = sorted(range(len(scored)),
                       key=lambda i: (scored[i]["error"], i))
        report["best_variants"] = [scored[i] for i in order[:spec.top_k]]
        report["axis_sensitivity"] = _axis_sensitivity(
            axis_labels, records, spec.top_k)
    return report


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Atomically (write-then-rename) serialize the report to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def _percent(value: Any) -> str:
    return "-" if value is None else f"{float(value) * 100:.2f}%"


def render_assignment(assignment: Dict[str, Any]) -> str:
    """One variant assignment as ``axis=value`` text (CLI/report tables)."""
    if not assignment:
        return "<base table>"
    return ", ".join(
        f"random table #{value}" if key == "__sample__" else f"{key}={value}"
        for key, value in sorted(assignment.items()))


def error_stats_table(stats_by_label: Dict[str, Dict[str, Any]],
                      title: str = "error distribution") -> str:
    """Quantile table of one or many error distributions.

    Keyed by a row label: the single campaign report passes one row, the
    matrix report one row per cell — the same renderer serves
    ``repro campaign report`` and ``repro matrix report``.
    """
    from repro.eval.tables import format_table

    headers = ["", "count", "mean", "std", "min", "p05", "p25", "p50",
               "p75", "p95", "max"]
    rows = []
    for label, stats in stats_by_label.items():
        quantiles = stats.get("quantiles", {})
        rows.append([label, stats["count"], _percent(stats["mean"]),
                     _percent(stats["std"]), _percent(stats["min"])]
                    + [_percent(quantiles.get(f"p{int(q * 100):02d}"))
                       for q in _QUANTILES]
                    + [_percent(stats["max"])])
    return format_table(headers, rows, title=title)


def sensitivity_table(sensitivity: Sequence[Dict[str, Any]],
                      title: str = "axis sensitivity (most sensitive first)"
                      ) -> str:
    """Axis-sensitivity ranking table (spread of mean error per axis)."""
    from repro.eval.tables import format_table

    rows = []
    for rank, entry in enumerate(sensitivity, start=1):
        by_value = ", ".join(f"{value}: {_percent(mean)}"
                             for value, mean in entry["mean_error_by_value"])
        rows.append([rank, entry["axis"], _percent(entry["spread"]), by_value])
    return format_table(["#", "axis", "spread", "mean error by value"], rows,
                        title=title)


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a campaign report (CLI ``campaign report``)."""
    lines = [
        f"campaign report (schema v{report.get('schema_version', '?')}, "
        f"status: {report.get('status', '?')})",
        f"  strategy: {report['spec']['strategy']}  "
        f"target: {report['spec']['target']}  "
        f"simulator: {report['spec']['simulator']}",
        f"  variants evaluated: {report['num_variants']} "
        f"({report['num_full_corpus_variants']} on the full corpus)",
        f"  baseline error: {_percent(report['baseline_error'])}",
    ]
    stats = report.get("error_stats")
    if stats:
        lines.append("")
        lines.append(error_stats_table({"error": stats}))
    best = report.get("best_variants", [])
    if best:
        from repro.eval.tables import format_table

        lines.append("")
        lines.append(format_table(
            ["#", "error", "variant"],
            [[rank, _percent(variant["error"]),
              render_assignment(variant["assignment"])]
             for rank, variant in enumerate(best, start=1)],
            title="best variants"))
    sensitivity = report.get("axis_sensitivity", [])
    if sensitivity:
        lines.append("")
        lines.append(sensitivity_table(sensitivity))
    return "\n".join(lines)
