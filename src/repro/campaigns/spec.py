"""Declarative campaign specifications.

A campaign sweeps a population of parameter-table variants over a block
corpus and reports distributional impact — the microarchitectural analogue
of a microsimulation study sweeping a policy table over a population.  The
spec layer names *what* to sweep without constructing anything:

* :class:`AxisSpec` — one swept parameter axis: a global field
  (``DispatchWidth``), a per-opcode field (``WriteLatency`` of ``PUSH64r``),
  or a per-opcode-per-port field (``PortMap`` of ``ADD32rr`` on port 2),
  with either an explicit value list or an inclusive ``low:high:step`` range;
* :class:`CampaignSpec` — the axes plus a sampling strategy from the
  STRATEGIES registry, the dataset/split to evaluate on, chunking and
  checkpointing knobs, and report shaping knobs.

Both round-trip through JSON and validate eagerly with registry-backed
did-you-mean suggestions, like every other :mod:`repro.api` spec.  Axis
*resolution* — turning an :class:`AxisSpec` into a concrete
``(table, value) -> None`` applier against one simulator's plugin — lives
here too (:func:`resolve_axes`) so the runner, the ``Session.sweep_tables``
shim, and eager validation all share one code path.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.registries import SIMULATORS, STRATEGIES
from repro.api.specs import SpecValidationError, _SpecBase

#: Sentinel assignment key for "a freshly sampled full table" (no axes).
#: The value is the draw index into the campaign's rng stream, so adaptive
#: strategies can re-propose a surviving sample without redrawing it.
SAMPLE_KEY = "__sample__"


@dataclass
class AxisSpec(_SpecBase):
    """One swept parameter axis.

    Exactly one of ``values`` or the ``low``/``high`` pair describes the
    swept values; ``low``/``high`` are inclusive and stepped by ``step``.
    ``opcode`` selects a per-opcode field; ``port`` additionally selects a
    port column for fields whose setter takes one (``PortMap``).
    """

    field: str = ""
    opcode: Optional[str] = None
    port: Optional[int] = None
    values: Optional[List[int]] = None
    low: Optional[int] = None
    high: Optional[int] = None
    step: int = 1

    def validate(self) -> None:
        self._check_type("field", (str,))
        if not self.field:
            raise SpecValidationError("field", "must name a sweepable field")
        self._check_type("opcode", (str,), allow_none=True)
        self._check_type("port", (int,), allow_none=True)
        self._check_positive("step")
        if self.values is not None:
            if self.low is not None or self.high is not None:
                raise SpecValidationError(
                    "values", "pass either values or low/high, not both")
            if (not isinstance(self.values, (list, tuple)) or not self.values
                    or not all(isinstance(item, int) and not isinstance(item, bool)
                               for item in self.values)):
                raise SpecValidationError(
                    "values", f"expected a non-empty list of ints, got {self.values!r}")
        else:
            self._check_type("low", (int,))
            self._check_type("high", (int,))
            if self.high < self.low:
                raise SpecValidationError(
                    "high", f"must be >= low ({self.low}), got {self.high}")

    def value_list(self) -> List[int]:
        """The concrete swept values, in sweep order."""
        if self.values is not None:
            return [int(value) for value in self.values]
        return list(range(int(self.low), int(self.high) + 1, int(self.step)))

    def label(self) -> str:
        """Stable human-readable axis name (``field[@opcode][#port]``)."""
        label = self.field
        if self.opcode is not None:
            label += f"@{self.opcode}"
        if self.port is not None:
            label += f"#{self.port}"
        return label


@dataclass(frozen=True)
class ResolvedAxis:
    """An :class:`AxisSpec` bound to one simulator's setter."""

    label: str
    field: str
    values: Tuple[int, ...]
    apply: Callable[[Any, int], None]


def _axis_spec(payload: Any, index: int) -> AxisSpec:
    if isinstance(payload, AxisSpec):
        payload.validate()
        return payload
    if not isinstance(payload, dict):
        raise SpecValidationError(
            f"axes[{index}]", f"expected an axis dict, got {type(payload).__name__}")
    try:
        return AxisSpec.from_dict(payload)
    except SpecValidationError as error:
        raise SpecValidationError(f"axes[{index}].{error.field}",
                                  str(error).split(": ", 1)[-1]) from error


def resolve_axis(axis: AxisSpec, plugin: Any, index: int = 0) -> ResolvedAxis:
    """Bind one axis to ``plugin``'s global or per-opcode setter.

    Raises :class:`SpecValidationError` naming the bad field, with a
    did-you-mean suggestion over the plugin's sweepable fields or the
    opcode table's names.
    """
    where = f"axes[{index}]"
    per_opcode = axis.field in plugin.opcode_sweep_fields
    if axis.opcode is None and axis.field in plugin.sweep_fields:
        setter = plugin.sweep_fields[axis.field]

        def apply_global(table: Any, value: int, _setter=setter) -> None:
            _setter(table, int(value))

        return ResolvedAxis(axis.label(), axis.field, tuple(axis.value_list()),
                            apply_global)
    if not per_opcode:
        known = sorted(set(plugin.sweep_fields) | set(plugin.opcode_sweep_fields))
        close = difflib.get_close_matches(axis.field, known, n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise SpecValidationError(
            f"{where}.field",
            f"simulator {plugin.name!r} cannot sweep {axis.field!r}{hint} "
            f"(sweepable fields: {', '.join(known) or '<none>'})")
    if axis.opcode is None:
        raise SpecValidationError(
            f"{where}.opcode",
            f"{axis.field!r} is a per-opcode field for simulator "
            f"{plugin.name!r}; name the opcode to sweep")
    from repro.isa.opcodes import DEFAULT_OPCODE_TABLE

    if axis.opcode not in DEFAULT_OPCODE_TABLE:
        close = difflib.get_close_matches(axis.opcode,
                                          DEFAULT_OPCODE_TABLE.names(), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise SpecValidationError(f"{where}.opcode",
                                  f"unknown opcode {axis.opcode!r}{hint}")
    opcode_index = DEFAULT_OPCODE_TABLE.index_of(axis.opcode)
    setter = plugin.opcode_sweep_fields[axis.field]
    if getattr(setter, "accepts_port", False):
        num_ports = int(getattr(setter, "num_ports", 0))
        if axis.port is None:
            raise SpecValidationError(
                f"{where}.port",
                f"{axis.field!r} sweeps one port column; pass port in "
                f"[0, {num_ports - 1}]")
        if not 0 <= axis.port < num_ports:
            raise SpecValidationError(
                f"{where}.port",
                f"must be in [0, {num_ports - 1}], got {axis.port}")

        def apply_port(table: Any, value: int, _setter=setter,
                       _opcode=opcode_index, _port=int(axis.port)) -> None:
            _setter(table, _opcode, _port, int(value))

        return ResolvedAxis(axis.label(), axis.field, tuple(axis.value_list()),
                            apply_port)
    if axis.port is not None:
        raise SpecValidationError(
            f"{where}.port", f"{axis.field!r} takes no port index")

    def apply_opcode(table: Any, value: int, _setter=setter,
                     _opcode=opcode_index) -> None:
        _setter(table, _opcode, int(value))

    return ResolvedAxis(axis.label(), axis.field, tuple(axis.value_list()),
                        apply_opcode)


def resolve_axes(axes: List[Any], simulator: str) -> List[ResolvedAxis]:
    """Resolve every axis payload against ``simulator``'s plugin."""
    plugin = SIMULATORS.get(simulator)
    resolved: List[ResolvedAxis] = []
    seen: Dict[str, int] = {}
    for index, payload in enumerate(axes):
        axis = resolve_axis(_axis_spec(payload, index), plugin, index)
        if axis.label in seen:
            raise SpecValidationError(
                f"axes[{index}]",
                f"duplicate axis {axis.label!r} (first at axes[{seen[axis.label]}])")
        seen[axis.label] = index
        resolved.append(axis)
    return resolved


@dataclass
class CampaignSpec(_SpecBase):
    """One declarative sweep campaign.

    ``axes`` lists axis dicts (see :class:`AxisSpec`); an empty list puts
    full-table strategies (``random``, ``adaptive``) into sampled-table mode,
    drawing whole parameter tables from the adapter's sampling distribution.
    ``strategy`` names a STRATEGIES entry; strategies that sample
    (``random``, ``adaptive``) require ``num_variants``.  Evaluation runs on
    the ``split`` examples of the dataset (generated from
    ``target``/``num_blocks``/``seed`` or loaded from ``dataset_path``),
    optionally truncated to ``max_blocks``.  ``chunk_size`` bounds one
    engine batch and is the checkpoint granularity: with ``checkpoint_dir``
    set, a killed campaign re-run with ``resume=True`` replays completed
    chunks from disk bit-identically.
    """

    target: str = "haswell"
    simulator: str = "mca"
    strategy: str = "grid"
    axes: List[Dict[str, Any]] = field(default_factory=list)
    #: Number of sampled variants (required by random/adaptive strategies;
    #: grid ignores it).
    num_variants: Optional[int] = None
    #: Extra strategy knobs (e.g. ``{"mode": "one_at_a_time"}`` for grid,
    #: ``{"eta": 3}`` for adaptive successive halving).
    strategy_options: Dict[str, Any] = field(default_factory=dict)
    num_blocks: int = 300
    seed: int = 0
    dataset_path: Optional[str] = None
    #: Directory of a pre-built sharded corpus (``repro corpus build``);
    #: mutually exclusive with ``dataset_path``.  Evaluation then streams
    #: blocks lazily from disk, and several campaigns (e.g. the cells of one
    #: matrix campaign, see :mod:`repro.distributed`) can share one corpus.
    corpus_path: Optional[str] = None
    split: str = "test"
    #: Evaluate on only the first ``max_blocks`` examples of the split.
    max_blocks: Optional[int] = None
    #: Base table JSON all axis variants start from; ``None`` uses the
    #: expert default table.
    table_path: Optional[str] = None
    #: Sampling distribution for full-table variants (matches the adapter
    #: default: wide paper ranges).
    narrow_sampling: bool = False
    #: Variants per engine batch; also the checkpoint granularity.
    chunk_size: int = 64
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    #: Streamed report destination (JSON, rewritten after every chunk).
    report_path: Optional[str] = None
    #: How many best variants / most sensitive axes the report keeps.
    top_k: int = 5
    histogram_bins: int = 20
    engine_workers: int = 0
    engine_megabatch: bool = True

    def validate(self) -> None:
        self._check_common()
        self._check_registry("strategy", STRATEGIES)
        if not isinstance(self.axes, (list, tuple)):
            raise SpecValidationError(
                "axes", f"expected a list of axis dicts, got {type(self.axes).__name__}")
        resolved = resolve_axes(list(self.axes), self.simulator)
        strategy_cls = STRATEGIES.get(self.strategy)
        if not self.axes and not getattr(strategy_cls, "supports_full_table", False):
            raise SpecValidationError(
                "axes", f"strategy {self.strategy!r} needs at least one axis "
                        f"(only sampling strategies support full-table mode)")
        if getattr(strategy_cls, "requires_num_variants", False):
            if self.num_variants is None:
                raise SpecValidationError(
                    "num_variants",
                    f"strategy {self.strategy!r} samples its population; "
                    f"set num_variants")
            self._check_positive("num_variants")
        elif self.num_variants is not None:
            self._check_positive("num_variants")
        if not isinstance(self.strategy_options, dict):
            raise SpecValidationError(
                "strategy_options",
                f"expected a dict, got {type(self.strategy_options).__name__}")
        try:
            strategy_cls(resolved, self.num_variants, self.strategy_options)
        except ValueError as error:
            raise SpecValidationError("strategy_options", str(error)) from error
        self._check_positive("num_blocks")
        self._check_type("seed", (int,))
        self._check_type("dataset_path", (str,), allow_none=True)
        self._check_type("corpus_path", (str,), allow_none=True)
        if self.dataset_path is not None and self.corpus_path is not None:
            raise SpecValidationError(
                "corpus_path", "mutually exclusive with dataset_path; a corpus "
                               "carries its own blocks and timings")
        if self.corpus_path is not None:
            if self.split not in ("train", "validation", "test"):
                raise SpecValidationError(
                    "split", f"expected 'train', 'validation', or 'test', "
                             f"got {self.split!r}")
        elif self.split not in ("train", "test"):
            raise SpecValidationError(
                "split", f"expected 'train' or 'test', got {self.split!r}")
        if self.max_blocks is not None:
            self._check_positive("max_blocks")
        self._check_type("table_path", (str,), allow_none=True)
        self._check_type("narrow_sampling", (bool,))
        self._check_positive("chunk_size")
        self._check_type("checkpoint_dir", (str,), allow_none=True)
        self._check_type("resume", (bool,))
        self._check_type("report_path", (str,), allow_none=True)
        self._check_positive("top_k")
        self._check_positive("histogram_bins")
        if self.resume and self.checkpoint_dir is None:
            raise SpecValidationError("resume", "requires checkpoint_dir to be set")

    def identity_dict(self) -> Dict[str, Any]:
        """The result-determining fields, for fingerprints and reports.

        Excludes execution-only knobs (checkpointing, report destination,
        worker count, kernel selection) that never change the numbers, so an
        interrupted run and its resumed continuation fingerprint alike and
        emit byte-identical reports.  ``corpus_path`` is excluded too: the
        corpus *content* is what determines results, and
        :func:`~repro.campaigns.runner.campaign_fingerprint` digests the
        actual blocks and timings — so moving a corpus directory (or
        sharing one across matrix cells) never changes a report.
        """
        payload = self.to_dict()
        for key in ("checkpoint_dir", "resume", "report_path", "corpus_path",
                    "engine_workers", "engine_megabatch"):
            payload.pop(key)
        return payload
