"""Declarative sweep campaigns: population-scale sensitivity as a workload.

A campaign sweeps a population of parameter-table variants (grid, random,
or adaptive successive-halving sampling over global / per-opcode / per-port
axes) across a block corpus through the shared cached engine, with
per-chunk checkpointed resume and a streamed schema-versioned JSON report.

Public entry points::

    from repro.campaigns import CampaignSpec, run_campaign, CAMPAIGNS

    spec = CampaignSpec(axes=[{"field": "DispatchWidth", "low": 1, "high": 6}])
    result = run_campaign(spec)

Only the spec and strategy layers import eagerly; the runner and presets
load on first attribute access (:mod:`repro.api.session` imports the spec at
module import time, and the runner imports the session — laziness breaks
that cycle).
"""

from repro.campaigns.spec import (AxisSpec, CampaignSpec, ResolvedAxis,
                                  resolve_axes, resolve_axis)

__all__ = [
    "AxisSpec",
    "CampaignSpec",
    "ResolvedAxis",
    "resolve_axes",
    "resolve_axis",
    "CampaignResult",
    "CampaignRunner",
    "run_campaign",
    "sweep_error_curve",
    "campaign_fingerprint",
    "CAMPAIGNS",
    "build_report",
    "format_report",
    "write_report",
]

#: Lazily resolved exports: name -> defining submodule.
_LAZY_EXPORTS = {
    "CampaignResult": "repro.campaigns.runner",
    "CampaignRunner": "repro.campaigns.runner",
    "run_campaign": "repro.campaigns.runner",
    "sweep_error_curve": "repro.campaigns.runner",
    "campaign_fingerprint": "repro.campaigns.runner",
    "CAMPAIGNS": "repro.campaigns.presets",
    "build_report": "repro.campaigns.report",
    "format_report": "repro.campaigns.report",
    "write_report": "repro.campaigns.report",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
