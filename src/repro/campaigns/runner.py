"""The campaign runner: expand a spec into table variants and evaluate them.

Execution model:

* the strategy proposes rounds of variant assignments (see
  :mod:`repro.campaigns.strategies`);
* each round is cut into ``chunk_size`` chunks, and each chunk becomes one
  batched :class:`~repro.engine.engine.SimulationEngine` call through the
  session's shared adapter — so the per-digest result cache, the megabatch
  kernels, and the process pool all apply, and repeated variants (adaptive
  survivors, repeated campaigns on one session) hit cache;
* with ``checkpoint_dir`` set, every finished chunk is persisted through
  :class:`~repro.pipeline.checkpoint.CheckpointStore` (payload + rng stream
  position).  Resume is a *deterministic replay*: the rng stream is consumed
  identically whether a chunk is recomputed or loaded, so a killed campaign
  resumed with ``resume=True`` produces a byte-identical report.  JSON float
  serialization round-trips exactly, which makes the replay bit-identical.

The streamed report (``report_path``) is rewritten atomically after every
chunk, so long campaigns can be watched mid-flight.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registries import SIMULATORS, STRATEGIES
from repro.campaigns.report import build_report, write_report
from repro.campaigns.spec import (SAMPLE_KEY, AxisSpec, CampaignSpec,
                                  ResolvedAxis, resolve_axes, resolve_axis)
from repro.eval.metrics import mean_absolute_percentage_error


def campaign_fingerprint(spec: CampaignSpec, blocks: Sequence[Any],
                         timings: np.ndarray) -> str:
    """Digest identifying one campaign problem (spec identity + corpus).

    Execution-only knobs are excluded (see
    :meth:`~repro.campaigns.spec.CampaignSpec.identity_dict`) so an
    interrupted run and its ``resume=True`` continuation bind the same
    checkpoint directory.
    """
    digest = hashlib.sha256()
    digest.update(json.dumps(spec.identity_dict(), sort_keys=True).encode())
    digest.update(np.ascontiguousarray(
        np.asarray(timings, dtype=np.float64)).tobytes())
    for block in blocks:
        digest.update(repr(block.structural_key()).encode())
    return digest.hexdigest()[:16]


@dataclass
class CampaignResult:
    """Outcome of one campaign run (plain data)."""

    report: Dict[str, Any]
    report_path: Optional[str]
    #: Variants evaluated (or replayed) across all rounds.
    num_variants: int
    resumed_chunks: int
    executed_chunks: int
    elapsed_seconds: float

    @property
    def variants(self) -> List[Dict[str, Any]]:
        return self.report["variants"]

    @property
    def best_variants(self) -> List[Dict[str, Any]]:
        return self.report.get("best_variants", [])

    @property
    def status(self) -> str:
        return self.report["status"]


class CampaignRunner:
    """Execute one :class:`CampaignSpec` through a :class:`Session`.

    A session may be supplied to share its adapter (and therefore its engine
    result cache) across campaigns; it must agree with the spec on the
    simulator and the evaluation corpus.  Without one, the runner builds a
    session from the spec.
    """

    def __init__(self, spec: CampaignSpec, session: Any = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        spec.validate()
        self.spec = spec
        if session is None:
            from repro.api.session import Session

            session = Session(spec, log=log)
        else:
            self._check_session(spec, session)
        self.session = session
        self.log = log or getattr(session, "log", None) or (lambda message: None)

    @staticmethod
    def _check_session(spec: CampaignSpec, session: Any) -> None:
        theirs = SIMULATORS.resolve(session.spec.simulator)
        ours = SIMULATORS.resolve(spec.simulator)
        if theirs != ours:
            raise ValueError(f"session simulator {theirs!r} does not match "
                             f"campaign simulator {ours!r}")
        for field_name in ("dataset_path", "corpus_path", "num_blocks", "seed",
                           "narrow_sampling"):
            theirs = session._spec_get(field_name)
            ours = getattr(spec, field_name)
            if theirs is not None and theirs != ours:
                raise ValueError(
                    f"session {field_name}={theirs!r} does not match "
                    f"campaign {field_name}={ours!r}; campaigns evaluate on "
                    f"the session's dataset")

    def run(self, max_chunks: Optional[int] = None) -> CampaignResult:
        """Run (or resume) the campaign.

        ``max_chunks`` stops after that many processed chunks with status
        ``"interrupted"`` — the hook the resume tests use to simulate a
        killed campaign at every checkpoint boundary.
        """
        start = time.perf_counter()
        spec = self.spec
        session = self.session
        adapter = session.adapter
        axes = resolve_axes(list(spec.axes), spec.simulator)
        axes_by_label = {axis.label: axis for axis in axes}
        base_table = session.load_table_or_default(spec.table_path)
        blocks, timings = session.split(spec.split)
        if spec.max_blocks is not None:
            blocks = blocks[:spec.max_blocks]
            timings = timings[:spec.max_blocks]
        if not blocks:
            raise ValueError("campaign has no evaluation blocks")
        baseline_error = float(mean_absolute_percentage_error(
            session.predict(blocks, base_table), timings))

        store = None
        if spec.checkpoint_dir is not None:
            from repro.pipeline.checkpoint import CheckpointStore

            store = CheckpointStore(spec.checkpoint_dir)
            store.bind_fingerprint(campaign_fingerprint(spec, blocks, timings),
                                   spec.resume)
            if not spec.resume:
                store.reset_stages()

        strategy = STRATEGIES.get(spec.strategy)(
            axes, spec.num_variants, spec.strategy_options)
        rng = np.random.default_rng(spec.seed)
        parameter_spec = adapter.parameter_spec()
        #: Full-table draw index -> sampled ParameterArrays (kept so adaptive
        #: survivors are re-evaluated without redrawing).
        samples: Dict[int, Any] = {}
        records: List[Dict[str, Any]] = []
        resumed_chunks = executed_chunks = processed_chunks = 0
        interrupted = False

        while not interrupted:
            round_ = strategy.propose(rng)
            if round_ is None:
                break
            subset_len = max(1, math.ceil(round_.block_fraction * len(blocks)))
            subset, subset_timings = blocks[:subset_len], timings[:subset_len]
            num_chunks = math.ceil(len(round_.assignments) / spec.chunk_size)
            round_errors: List[float] = []
            for chunk_index in range(num_chunks):
                if max_chunks is not None and processed_chunks >= max_chunks:
                    interrupted = True
                    break
                chunk = round_.assignments[chunk_index * spec.chunk_size:
                                           (chunk_index + 1) * spec.chunk_size]
                # Replay determinism: full-table draws consume the rng stream
                # whether or not this chunk is served from its checkpoint.
                for assignment in chunk:
                    draw = assignment.get(SAMPLE_KEY)
                    if draw is not None and draw not in samples:
                        samples[draw] = parameter_spec.sample(rng)
                stage = f"round{round_.index:03d}_chunk{chunk_index:04d}"
                if store is not None and spec.resume and store.is_complete(stage):
                    payload = store.load_json(stage, "chunk.json")
                    errors = [float(error) for error in payload["errors"]]
                    resumed_chunks += 1
                else:
                    tables = [self._variant_table(assignment, base_table, axes,
                                                  samples, adapter)
                              for assignment in chunk]
                    predictions = session.predict(subset, tables)
                    errors = [float(mean_absolute_percentage_error(
                        row, subset_timings)) for row in predictions]
                    if store is not None:
                        store.save_json(stage, "chunk.json",
                                        {"assignments": chunk, "errors": errors})
                        store.mark_complete(stage, rng)
                    executed_chunks += 1
                processed_chunks += 1
                for assignment, error in zip(chunk, errors):
                    records.append({"round": round_.index,
                                    "block_fraction": round_.block_fraction,
                                    "assignment": dict(assignment),
                                    "error": error})
                round_errors.extend(errors)
                if spec.report_path is not None:
                    write_report(spec.report_path,
                                 build_report(spec, list(axes_by_label), records,
                                              baseline_error, "running"))
                self.log(f"[campaign] round {round_.index} chunk "
                         f"{chunk_index + 1}/{num_chunks}: "
                         f"{len(records)} variants evaluated")
            else:
                strategy.observe(round_, round_errors)

        status = "interrupted" if interrupted else "complete"
        report = build_report(spec, list(axes_by_label), records,
                              baseline_error, status)
        if spec.report_path is not None:
            write_report(spec.report_path, report)
        return CampaignResult(report=report, report_path=spec.report_path,
                              num_variants=len(records),
                              resumed_chunks=resumed_chunks,
                              executed_chunks=executed_chunks,
                              elapsed_seconds=time.perf_counter() - start)

    @staticmethod
    def _variant_table(assignment: Dict[str, int], base_table: Any,
                       axes: Sequence[ResolvedAxis], samples: Dict[int, Any],
                       adapter: Any) -> Any:
        draw = assignment.get(SAMPLE_KEY)
        if draw is not None:
            return adapter.native_table(samples[draw])
        table = base_table.copy()
        for axis in axes:
            value = assignment.get(axis.label)
            if value is not None:
                axis.apply(table, value)
        return table


def run_campaign(spec: Any, session: Any = None,
                 log: Optional[Callable[[str], None]] = None,
                 max_chunks: Optional[int] = None) -> CampaignResult:
    """Run a campaign from a :class:`CampaignSpec` or a plain spec dict."""
    if isinstance(spec, dict):
        spec = CampaignSpec.from_dict(spec)
    return CampaignRunner(spec, session=session, log=log).run(max_chunks=max_chunks)


def sweep_error_curve(table: Any, dataset: Any, field: str,
                      values: Sequence[int], max_blocks: Optional[int] = None,
                      simulator: str = "mca",
                      engine: Any = None) -> List[Tuple[int, float]]:
    """Error curve of one axis swept over a dataset's test split.

    The single-axis backbone shared by the Figure-5 sensitivity curves and
    the deprecated :func:`repro.eval.analysis.global_parameter_sensitivity`
    shim: one batched engine call over the swept tables, so each block
    compiles once and is reused for every value.
    """
    plugin = SIMULATORS.get(simulator)
    examples = dataset.test_examples
    if max_blocks is not None:
        examples = examples[:max_blocks]
    blocks = [example.block for example in examples]
    targets = np.array([example.timing for example in examples])
    axis = resolve_axis(AxisSpec(field=field,
                                 values=[int(value) for value in values]),
                        plugin)
    candidates = []
    for value in axis.values:
        candidate = table.copy()
        axis.apply(candidate, value)
        candidates.append(candidate)
    if engine is None:
        engine = plugin.engine_factory()
    predictions = engine.run(candidates, blocks)
    return [(int(value), mean_absolute_percentage_error(row, targets))
            for value, row in zip(axis.values, predictions)]
