"""Named campaign presets (the paper experiments as campaigns).

Each preset is a spec *factory*: calling it returns a ready
:class:`~repro.campaigns.spec.CampaignSpec`, with keyword arguments for the
scale knobs and arbitrary spec-field overrides.  The bench scenarios and the
``repro campaign run --preset`` CLI both resolve presets here.

* ``sec5a_random_tables`` — Section V-A: error of uniformly sampled random
  parameter tables.  Bit-identical to the pre-campaign
  :func:`repro.eval.experiments.run_section5a_random_tables` loop: same
  sampling distribution (wide ranges), same rng stream, same batched engine
  evaluation, same error metric.
* ``sec6c_write_latency`` — Section VI-C's case-study opcodes as a
  per-opcode WriteLatency sensitivity campaign (one-at-a-time grid).
* ``fig5_global_sensitivity`` — Figure 5: one-at-a-time curves over the
  global DispatchWidth / ReorderBufferSize parameters.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.api.registry import Registry
from repro.campaigns.spec import CampaignSpec

CAMPAIGNS = Registry("campaign preset", entry_point_group="repro.campaigns")

#: The Section VI-C case-study opcodes (see repro.eval.experiments).
SEC6C_OPCODES = ("PUSH64r", "XOR32rr", "ADD32mr")

#: Figure 5 sweep grids.
FIG5_DISPATCH_WIDTHS = tuple(range(1, 11))
FIG5_ROB_SIZES = (10, 25, 50, 75, 100, 150, 200, 250, 300, 400)


@CAMPAIGNS.register("sec5a_random_tables", aliases=("sec5a",),
                    summary="Section V-A: error distribution of random "
                            "parameter tables")
def sec5a_random_tables(num_blocks: int = 200, num_tables: int = 10,
                        seed: int = 0, **overrides: Any) -> CampaignSpec:
    payload = {"target": "haswell", "simulator": "mca", "strategy": "random",
               "axes": [], "num_variants": int(num_tables),
               "num_blocks": int(num_blocks), "seed": int(seed),
               "narrow_sampling": False}
    payload.update(overrides)
    return CampaignSpec.from_dict(payload)


@CAMPAIGNS.register("sec6c_write_latency", aliases=("sec6c",),
                    summary="Section VI-C opcodes: per-opcode WriteLatency "
                            "sensitivity curves")
def sec6c_write_latency(values: Sequence[int] = (0, 1, 2, 3, 4, 5),
                        num_blocks: int = 300, seed: int = 0,
                        **overrides: Any) -> CampaignSpec:
    axes = [{"field": "WriteLatency", "opcode": opcode,
             "values": [int(value) for value in values]}
            for opcode in SEC6C_OPCODES]
    payload = {"target": "haswell", "simulator": "mca", "strategy": "grid",
               "strategy_options": {"mode": "one_at_a_time"}, "axes": axes,
               "num_blocks": int(num_blocks), "seed": int(seed)}
    payload.update(overrides)
    return CampaignSpec.from_dict(payload)


@CAMPAIGNS.register("fig5_global_sensitivity", aliases=("fig5", "sensitivity"),
                    summary="Figure 5: DispatchWidth / ReorderBufferSize "
                            "error curves")
def fig5_global_sensitivity(num_blocks: int = 300, seed: int = 0,
                            max_blocks: int = 60,
                            **overrides: Any) -> CampaignSpec:
    axes = [{"field": "DispatchWidth", "values": list(FIG5_DISPATCH_WIDTHS)},
            {"field": "ReorderBufferSize", "values": list(FIG5_ROB_SIZES)}]
    payload = {"target": "haswell", "simulator": "mca", "strategy": "grid",
               "strategy_options": {"mode": "one_at_a_time"}, "axes": axes,
               "num_blocks": int(num_blocks), "seed": int(seed),
               "max_blocks": int(max_blocks)}
    payload.update(overrides)
    return CampaignSpec.from_dict(payload)
