"""Campaign sampling strategies (the STRATEGIES registry entries).

A strategy turns a campaign's axes into rounds of concrete variant
assignments.  The protocol is generate-and-observe:

* ``propose(rng) -> CampaignRound | None`` — the next round of assignments
  (``None`` when the campaign is exhausted).  An assignment maps axis labels
  to values; the special key :data:`~repro.campaigns.spec.SAMPLE_KEY` marks
  a freshly sampled full table (axis-free mode) by rng draw index.
* ``observe(round, errors)`` — the measured per-variant errors of the round
  just proposed, which adaptive strategies use to pick survivors.

Strategies are deterministic given ``(axes, num_variants, options)`` and the
rng stream: replaying the same seed reproduces the exact proposal sequence,
which is what makes checkpointed campaign resume bit-identical.

Everything here is registered into :data:`repro.api.registries.STRATEGIES`
at import time; the registry's bootstrap imports this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.api.registries import STRATEGIES
from repro.campaigns.spec import SAMPLE_KEY, ResolvedAxis

#: One assignment: axis label -> swept value (or SAMPLE_KEY -> draw index).
Assignment = Dict[str, int]


@dataclass
class CampaignRound:
    """One batch of variants to evaluate on a prefix of the block corpus."""

    index: int
    assignments: List[Assignment]
    #: Fraction of the evaluation blocks this round runs on (adaptive
    #: strategies screen early rounds on a cheap prefix).
    block_fraction: float = 1.0


def _check_options(name: str, options: Mapping[str, Any],
                   allowed: Sequence[str]) -> None:
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown option(s) for strategy {name!r}: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(allowed)) or '<none>'})")


def _random_assignments(axes: Sequence[ResolvedAxis], count: int,
                        rng: np.random.Generator,
                        start_index: int) -> List[Assignment]:
    """``count`` assignments: uniform per-axis draws, or full-table draws."""
    if not axes:
        return [{SAMPLE_KEY: start_index + offset} for offset in range(count)]
    assignments = []
    for _ in range(count):
        assignment = {axis.label: int(axis.values[int(rng.integers(len(axis.values)))])
                      for axis in axes}
        assignments.append(assignment)
    return assignments


@STRATEGIES.register("grid", summary="Exhaustive cartesian product (or "
                                     "one-at-a-time curves) over the axes")
class GridStrategy:
    """Deterministic grid: every axis-value combination, one round.

    ``options["mode"]``: ``"product"`` (default) enumerates the full
    cartesian product, last axis fastest; ``"one_at_a_time"`` sweeps each
    axis separately while the others stay at the base table (the classic
    sensitivity-curve layout).  ``num_variants`` truncates the enumeration.
    """

    name = "grid"
    supports_full_table = False
    requires_num_variants = False

    def __init__(self, axes: Sequence[ResolvedAxis],
                 num_variants: Optional[int],
                 options: Mapping[str, Any]) -> None:
        _check_options(self.name, options, ("mode",))
        mode = options.get("mode", "product")
        if mode not in ("product", "one_at_a_time"):
            raise ValueError(f"grid mode must be 'product' or 'one_at_a_time', "
                             f"got {mode!r}")
        if mode == "one_at_a_time":
            assignments = [{axis.label: int(value)}
                           for axis in axes for value in axis.values]
        else:
            assignments = [
                {axis.label: int(value)
                 for axis, value in zip(axes, combination)}
                for combination in itertools.product(
                    *[axis.values for axis in axes])]
        if num_variants is not None:
            assignments = assignments[:num_variants]
        self._assignments = assignments
        self._done = False

    def propose(self, rng: np.random.Generator) -> Optional[CampaignRound]:
        if self._done:
            return None
        self._done = True
        return CampaignRound(0, self._assignments)

    def observe(self, round_: CampaignRound, errors: Sequence[float]) -> None:
        pass


@STRATEGIES.register("random", summary="Uniform random sampling of the axes "
                                       "(or whole tables when axis-free)")
class RandomStrategy:
    """``num_variants`` independent uniform draws, one round.

    With axes, each variant draws every axis uniformly from its value list;
    without axes, each variant is a whole parameter table drawn from the
    adapter's sampling distribution (the sec5a random-tables experiment).
    """

    name = "random"
    supports_full_table = True
    requires_num_variants = True

    def __init__(self, axes: Sequence[ResolvedAxis],
                 num_variants: Optional[int],
                 options: Mapping[str, Any]) -> None:
        _check_options(self.name, options, ())
        self._axes = list(axes)
        self._num_variants = int(num_variants or 0)
        self._done = False

    def propose(self, rng: np.random.Generator) -> Optional[CampaignRound]:
        if self._done:
            return None
        self._done = True
        return CampaignRound(
            0, _random_assignments(self._axes, self._num_variants, rng, 0))

    def observe(self, round_: CampaignRound, errors: Sequence[float]) -> None:
        pass


@STRATEGIES.register("adaptive", aliases=("successive_halving",),
                     summary="Successive halving: screen random variants on "
                             "a block prefix, promote the best")
class SuccessiveHalvingStrategy:
    """Adaptive budget allocation over a random initial population.

    Round 0 draws ``num_variants`` random variants and evaluates them on a
    ``1/eta**(R-1)`` prefix of the blocks; each later round keeps the best
    ``1/eta`` of the survivors and grows the prefix by ``eta``, until the
    final survivors run on the full corpus.  ``options["eta"]`` (default 3)
    sets the culling factor.
    """

    name = "adaptive"
    supports_full_table = True
    requires_num_variants = True

    def __init__(self, axes: Sequence[ResolvedAxis],
                 num_variants: Optional[int],
                 options: Mapping[str, Any]) -> None:
        _check_options(self.name, options, ("eta",))
        eta = options.get("eta", 3)
        if not isinstance(eta, int) or isinstance(eta, bool) or eta < 2:
            raise ValueError(f"eta must be an int >= 2, got {eta!r}")
        self._axes = list(axes)
        self._eta = eta
        populations = [int(num_variants or 0)]
        while populations[-1] > 1:
            populations.append(max(1, populations[-1] // eta))
        self._populations = populations
        self._round_index = 0
        self._survivors: List[Assignment] = []

    def propose(self, rng: np.random.Generator) -> Optional[CampaignRound]:
        index = self._round_index
        if index >= len(self._populations):
            return None
        num_rounds = len(self._populations)
        fraction = 1.0 / float(self._eta ** (num_rounds - 1 - index))
        if index == 0:
            assignments = _random_assignments(
                self._axes, self._populations[0], rng, 0)
        else:
            assignments = self._survivors
        self._round_index += 1
        return CampaignRound(index, assignments, fraction)

    def observe(self, round_: CampaignRound, errors: Sequence[float]) -> None:
        next_index = round_.index + 1
        if next_index >= len(self._populations):
            return
        keep = self._populations[next_index]
        # Stable (error, position) ranking keeps ties deterministic.
        order = sorted(range(len(errors)), key=lambda i: (errors[i], i))
        self._survivors = [round_.assignments[i] for i in order[:keep]]
