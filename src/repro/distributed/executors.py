"""Pluggable cell executors for matrix campaigns.

An executor turns cell tasks (:mod:`repro.distributed.cells`) into running
work and hands back :class:`CellHandle`\\ s the scheduler polls.  Three are
built in, registered in :data:`repro.api.registries.EXECUTORS` under the
entry-point group ``repro.executors`` (third parties can add, say, a
cluster-queue executor without touching this repository):

* ``inline`` — run each cell synchronously in-process; the reference
  executor every other one must agree with byte-for-byte;
* ``pool`` — one OS process per in-flight cell (fork-preferring, like the
  engine's pool), up to ``spec.workers`` at a time;
* ``remote`` — POST each cell to a ``repro worker`` HTTP endpoint
  (:mod:`repro.distributed.worker`), one in-flight cell per worker URL,
  with ``/healthz`` heartbeats so a dead worker is detected even while the
  request is still blocked.

Every failure mode — a raising campaign, a worker process dying without a
result, a remote worker disconnecting mid-cell, a scheduler-side cancel —
surfaces as the same plain *outcome* dict ``execute_cell`` would have
returned (``status: "error"``), so the scheduler's retry/ledger logic never
special-cases the transport.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import urlparse

from repro.api.registries import EXECUTORS
from repro.distributed.cells import execute_cell


def _error_outcome(task: Dict[str, Any], message: str,
                   traceback_text: Optional[str] = None) -> Dict[str, Any]:
    """A transport-level failure shaped exactly like an execution failure."""
    return {"status": "error", "cell": task.get("cell", "?"),
            "attempt": int(task.get("attempt", 1)), "error": message,
            "traceback": traceback_text, "elapsed_seconds": 0.0}


class CellHandle:
    """One in-flight cell attempt; poll until an outcome dict appears."""

    def __init__(self, task: Dict[str, Any]) -> None:
        self.task = task

    def poll(self) -> Optional[Dict[str, Any]]:
        """The outcome dict once the attempt finished, else ``None``."""
        raise NotImplementedError

    def cancel(self, reason: str) -> Dict[str, Any]:
        """Abort the attempt (e.g. timeout); returns the error outcome."""
        raise NotImplementedError


class CellExecutor:
    """Runs cell tasks; ``capacity`` bounds concurrently in-flight cells."""

    capacity: int = 1

    def submit(self, task: Dict[str, Any]) -> CellHandle:
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""


# ----------------------------------------------------------------------
# Inline
# ----------------------------------------------------------------------
class _InlineHandle(CellHandle):
    def __init__(self, task: Dict[str, Any]) -> None:
        super().__init__(task)
        self._outcome = execute_cell(task)

    def poll(self) -> Optional[Dict[str, Any]]:
        return self._outcome

    def cancel(self, reason: str) -> Dict[str, Any]:
        return self._outcome  # already finished by construction


class InlineExecutor(CellExecutor):
    """Synchronous in-process execution, one cell at a time."""

    capacity = 1

    def submit(self, task: Dict[str, Any]) -> CellHandle:
        return _InlineHandle(task)


# ----------------------------------------------------------------------
# Local process pool
# ----------------------------------------------------------------------
def _cell_entry(connection: Any, task: Dict[str, Any]) -> None:
    """Child-process entry point (module-level: picklable under spawn)."""
    try:
        connection.send(execute_cell(task))
    finally:
        connection.close()


class _ProcessHandle(CellHandle):
    def __init__(self, task: Dict[str, Any], context: Any) -> None:
        super().__init__(task)
        self._parent, child = context.Pipe(duplex=False)
        self._process = context.Process(target=_cell_entry, args=(child, task),
                                        daemon=True)
        self._process.start()
        child.close()
        self._outcome: Optional[Dict[str, Any]] = None

    def poll(self) -> Optional[Dict[str, Any]]:
        if self._outcome is not None:
            return self._outcome
        if self._parent.poll(0):
            try:
                self._outcome = self._parent.recv()
            except EOFError:
                self._outcome = _error_outcome(
                    self.task, "CellProcessDied: worker process closed the "
                               "result pipe without sending an outcome")
            self._finalize()
            return self._outcome
        if not self._process.is_alive():
            # Died between our last poll and now without writing a result
            # (e.g. killed by the OS); exit code is all we have.
            self._outcome = _error_outcome(
                self.task, f"CellProcessDied: worker process exited with "
                           f"code {self._process.exitcode} before reporting "
                           f"an outcome")
            self._finalize()
            return self._outcome
        return None

    def cancel(self, reason: str) -> Dict[str, Any]:
        if self._outcome is None:
            if self._process.is_alive():
                self._process.terminate()
            self._outcome = _error_outcome(
                self.task, f"CellCancelled: {reason}")
            self._finalize()
        return self._outcome

    def _finalize(self) -> None:
        self._process.join(timeout=5.0)
        self._parent.close()


class ProcessCellExecutor(CellExecutor):
    """One forked OS process per in-flight cell, ``workers`` at a time."""

    def __init__(self, workers: int) -> None:
        start_methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else start_methods[0])
        self.capacity = max(1, int(workers))

    def submit(self, task: Dict[str, Any]) -> CellHandle:
        return _ProcessHandle(task, self._context)


# ----------------------------------------------------------------------
# Remote workers
# ----------------------------------------------------------------------
class WorkerClient:
    """Minimal stdlib HTTP client for one ``repro worker`` endpoint."""

    def __init__(self, url: str, timeout: Optional[float] = None) -> None:
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http") or parsed.hostname is None:
            raise ValueError(f"worker URL must be http://host:port, got {url!r}")
        self.url = url
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    def request(self, method: str, path: str, payload: Any = None,
                timeout: Optional[float] = None) -> Dict[str, Any]:
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode()
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            decoded = json.loads(data.decode()) if data else {}
            if response.status >= 400:
                raise RuntimeError(
                    f"worker {self.url} returned {response.status}: "
                    f"{decoded.get('error', data.decode()[:200])}")
            return decoded
        finally:
            connection.close()

    def healthy(self, timeout: float = 2.0) -> bool:
        try:
            return self.request("GET", "/healthz",
                                timeout=timeout).get("status") == "ok"
        except Exception:  # noqa: BLE001 - liveness probe
            return False


class _RemoteHandle(CellHandle):
    def __init__(self, task: Dict[str, Any], client: WorkerClient,
                 heartbeat_seconds: float,
                 release: Callable[[str], None]) -> None:
        super().__init__(task)
        self._client = client
        self._heartbeat_seconds = heartbeat_seconds
        self._release = release
        self._released = False
        self._lock = threading.Lock()
        self._result: Optional[Dict[str, Any]] = None
        self._outcome: Optional[Dict[str, Any]] = None
        self._last_heartbeat = time.monotonic()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"repro-matrix-{task['cell']}")
        self._thread.start()

    def _run(self) -> None:
        try:
            result = self._client.request("POST", "/run", self.task)
        except Exception as error:  # noqa: BLE001 - transport failure as data
            result = _error_outcome(
                self.task, f"WorkerUnreachable: {self._client.url}: "
                           f"{type(error).__name__}: {error}")
        with self._lock:
            self._result = result

    def poll(self) -> Optional[Dict[str, Any]]:
        if self._outcome is not None:
            return self._outcome
        with self._lock:
            result = self._result
        if result is not None:
            self._outcome = result
            self._finish()
            return self._outcome
        # The POST blocks for the whole cell; a worker that died after
        # accepting it may leave the socket half-open for a long time, so
        # probe liveness out of band while the request is in flight.
        now = time.monotonic()
        if now - self._last_heartbeat >= self._heartbeat_seconds:
            self._last_heartbeat = now
            if not self._client.healthy():
                self._outcome = _error_outcome(
                    self.task, f"WorkerUnreachable: {self._client.url} "
                               f"stopped answering /healthz mid-cell")
                self._finish()
                return self._outcome
        return None

    def cancel(self, reason: str) -> Dict[str, Any]:
        if self._outcome is None:
            self._outcome = _error_outcome(
                self.task, f"CellCancelled: {reason}")
            self._finish()
        return self._outcome

    def _finish(self) -> None:
        if not self._released:
            self._released = True
            self._release(self._client.url)


class RemoteExecutor(CellExecutor):
    """Dispatch cells to ``repro worker`` endpoints, one in-flight each."""

    def __init__(self, worker_urls: List[str],
                 heartbeat_seconds: float = 5.0) -> None:
        if not worker_urls:
            raise ValueError("RemoteExecutor needs at least one worker URL")
        self._clients = {url: WorkerClient(url) for url in worker_urls}
        self._free: List[str] = list(worker_urls)
        self._heartbeat_seconds = heartbeat_seconds
        self.capacity = len(worker_urls)

    def submit(self, task: Dict[str, Any]) -> CellHandle:
        if not self._free:
            raise RuntimeError("RemoteExecutor over capacity: no free worker")
        url = self._free.pop(0)
        return _RemoteHandle(task, self._clients[url],
                             self._heartbeat_seconds,
                             release=self._free.append)


# ----------------------------------------------------------------------
# Registry entries — factories take the MatrixCampaignSpec
# ----------------------------------------------------------------------
@EXECUTORS.register("inline", summary="Synchronous in-process execution "
                                      "(the byte-identity reference)")
def build_inline_executor(spec: Any) -> CellExecutor:
    return InlineExecutor()


@EXECUTORS.register("pool", aliases=("process", "processes"),
                    summary="Local process pool, spec.workers cells in flight")
def build_pool_executor(spec: Any) -> CellExecutor:
    return ProcessCellExecutor(spec.workers)


@EXECUTORS.register("remote", aliases=("workers",),
                    summary="HTTP dispatch to 'repro worker' endpoints")
def build_remote_executor(spec: Any) -> CellExecutor:
    return RemoteExecutor(list(spec.worker_urls),
                          heartbeat_seconds=spec.heartbeat_seconds)
