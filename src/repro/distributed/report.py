"""Matrix report assembly and formatting.

Like the single-campaign report (:mod:`repro.campaigns.report`) this is a
schema-versioned plain-JSON document containing only *result-determined*
data — cell outcomes, error statistics, the failed-cell ledger — and none
of the execution story (no wall clocks, no executor choice, no worker
URLs).  That restriction is what makes the acceptance guarantees hold: the
same matrix run inline, across a process pool, or against remote workers,
interrupted and resumed, aggregates to a byte-identical ``matrix_report.json``.

Per-cell detail beyond the summary (full variant lists, histograms) lives
in the per-cell ``campaign_report.json`` files; the matrix report keeps the
cross-cell view: per-cell error quantiles, a comparison table, the best
variant of each cell, and the ledger of cells that exhausted their retries.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.campaigns.report import (_percent, error_stats_table,
                                    render_assignment, write_report)
from repro.eval.tables import format_table

#: Bump when the matrix report layout changes shape (consumers check this).
MATRIX_REPORT_VERSION = 1

__all__ = ["MATRIX_REPORT_VERSION", "build_matrix_report",
           "format_matrix_report", "write_report"]


def _cell_summary(outcome: Dict[str, Any]) -> Dict[str, Any]:
    """The per-cell entry of the report's ``cells`` mapping."""
    summary = {"target": outcome["target"], "simulator": outcome["simulator"],
               "status": outcome["status"], "attempts": outcome["attempts"]}
    if outcome["status"] == "ok":
        report = outcome["report"]
        best = report.get("best_variants", [])
        summary.update({
            "baseline_error": report["baseline_error"],
            "num_variants": report["num_variants"],
            "error_stats": report.get("error_stats"),
            "best_error": best[0]["error"] if best else None,
        })
    else:
        summary["error"] = outcome["error"]
    return summary


def build_matrix_report(spec: Any, outcomes: Dict[str, Dict[str, Any]],
                        status: str) -> Dict[str, Any]:
    """Aggregate terminal cell outcomes into the matrix report.

    ``outcomes`` maps cell key to its terminal outcome payload (the shape
    the scheduler checkpoints: ``status`` ``"ok"`` with the cell's campaign
    report, or ``"failed"`` with error + traceback).  Cells not yet terminal
    are simply absent — an interrupted matrix reports what finished.
    """
    cell_order = [f"{target}__{simulator}"
                  for target, simulator in spec.resolve_cells()]
    cells = {key: _cell_summary(outcomes[key])
             for key in cell_order if key in outcomes}
    comparison: List[Dict[str, Any]] = []
    best_variant_per_cell: Dict[str, Any] = {}
    failed: List[Dict[str, Any]] = []
    for key in cell_order:
        outcome = outcomes.get(key)
        if outcome is None:
            continue
        if outcome["status"] == "ok":
            report = outcome["report"]
            best = report.get("best_variants", [])
            best_error = best[0]["error"] if best else None
            comparison.append({
                "cell": key, "target": outcome["target"],
                "simulator": outcome["simulator"], "status": "ok",
                "baseline_error": report["baseline_error"],
                "best_error": best_error,
                "improvement": (None if best_error is None
                                else report["baseline_error"] - best_error),
            })
            if best:
                best_variant_per_cell[key] = best[0]
        else:
            comparison.append({"cell": key, "target": outcome["target"],
                               "simulator": outcome["simulator"],
                               "status": "failed", "baseline_error": None,
                               "best_error": None, "improvement": None})
            failed.append({"cell": key, "target": outcome["target"],
                           "simulator": outcome["simulator"],
                           "attempts": outcome["attempts"],
                           "error": outcome["error"],
                           "traceback": outcome.get("traceback")})
    return {
        "schema_version": MATRIX_REPORT_VERSION,
        "status": status,
        "spec": spec.identity_dict(),
        "num_cells": len(cell_order),
        "num_completed_cells": sum(
            1 for cell in cells.values() if cell["status"] == "ok"),
        "cells": cells,
        "comparison": comparison,
        "best_variant_per_cell": best_variant_per_cell,
        "failed_cells": failed,
    }


def format_matrix_report(report: Dict[str, Any]) -> str:
    """Human-readable matrix summary (CLI ``repro matrix report``).

    Shares its table renderers with ``repro campaign report`` so the two
    commands read the same way.
    """
    lines = [
        f"matrix report (schema v{report.get('schema_version', '?')}, "
        f"status: {report.get('status', '?')})",
        f"  cells: {report['num_completed_cells']}/{report['num_cells']} "
        f"completed, {len(report['failed_cells'])} failed",
        f"  strategy: {report['spec']['campaign'].get('strategy', 'grid')}",
    ]
    comparison = report.get("comparison", [])
    if comparison:
        rows = []
        for row in comparison:
            best = report["best_variant_per_cell"].get(row["cell"])
            rows.append([row["target"], row["simulator"], row["status"],
                         _percent(row["baseline_error"]),
                         _percent(row["best_error"]),
                         _percent(row["improvement"]),
                         "-" if best is None
                         else render_assignment(best["assignment"])])
        lines.append("")
        lines.append(format_table(
            ["target", "simulator", "status", "baseline", "best",
             "improvement", "best variant"],
            rows, title="cell comparison"))
    stats_by_cell = {key: cell["error_stats"]
                     for key, cell in report.get("cells", {}).items()
                     if cell.get("error_stats")}
    if stats_by_cell:
        lines.append("")
        lines.append(error_stats_table(stats_by_cell,
                                       title="per-cell error distribution"))
    if report["failed_cells"]:
        lines.append("")
        lines.append(format_table(
            ["cell", "attempts", "error"],
            [[entry["cell"], entry["attempts"], entry["error"]]
             for entry in report["failed_cells"]],
            title="failed cells (retries exhausted)"))
    return "\n".join(lines)
