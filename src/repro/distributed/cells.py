"""Cell tasks: the unit of work a matrix executor runs.

A *cell task* is a plain JSON-serializable dict — picklable for the process
pool, POST-able to a remote worker — carrying everything one cell attempt
needs: the concrete :class:`~repro.campaigns.spec.CampaignSpec` payload
(identity + corpus + per-cell checkpoint/report paths already injected by
the scheduler) plus the attempt number and any injected fault/delay.
:func:`execute_cell` runs it and returns a plain *outcome* dict — never
raises — so every executor transports failures the same way: as data.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from typing import Any, Dict


class InjectedCellFault(RuntimeError):
    """Deterministic failure raised by fault injection (``fail_cells``)."""


def make_task(cell: str, target: str, simulator: str, attempt: int,
              campaign: Dict[str, Any], fail_attempts: int = 0,
              delay_seconds: float = 0.0) -> Dict[str, Any]:
    """Assemble one attempt's task dict (see module docstring)."""
    return {"cell": cell, "target": target, "simulator": simulator,
            "attempt": attempt, "campaign": campaign,
            "fail_attempts": fail_attempts, "delay_seconds": delay_seconds}


def execute_cell(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell attempt; failures come back as data, not exceptions.

    Module-level and dict-in/dict-out so the process-pool executor can pickle
    it and the remote worker can serve it over JSON unchanged.  Fault
    injection fires on attempt numbers (``fail_attempts < 0`` = every
    attempt), which keeps injected failures deterministic across executors
    and across resume — attempt counts, not wall clocks, decide the outcome.
    """
    cell = task.get("cell", "?")
    attempt = int(task.get("attempt", 1))
    started = time.perf_counter()
    try:
        delay = float(task.get("delay_seconds", 0.0) or 0.0)
        if delay > 0:
            time.sleep(delay)
        fail_attempts = int(task.get("fail_attempts", 0) or 0)
        if fail_attempts < 0 or attempt <= fail_attempts:
            raise InjectedCellFault(
                f"injected fault for cell {cell} (attempt {attempt})")
        from repro.campaigns import run_campaign

        result = run_campaign(dict(task["campaign"]))
        return {"status": "ok", "cell": cell, "attempt": attempt,
                "report": result.report, "num_variants": result.num_variants,
                "resumed_chunks": result.resumed_chunks,
                "executed_chunks": result.executed_chunks,
                "elapsed_seconds": time.perf_counter() - started}
    except Exception as error:  # noqa: BLE001 - converted to outcome data
        return {"status": "error", "cell": cell, "attempt": attempt,
                "error": f"{type(error).__name__}: {error}",
                "traceback": traceback_module.format_exc(),
                "elapsed_seconds": time.perf_counter() - started}
