"""The fault-tolerant matrix scheduler.

:func:`run_matrix` drives one :class:`~repro.distributed.spec.MatrixCampaignSpec`
to a terminal outcome per cell:

* cells share one on-disk :class:`~repro.corpus.sharded.ShardedCorpus` per
  target (built once, resumable), so block generation and ground-truth
  measurement are not repeated per simulator;
* an executor from the EXECUTORS registry runs up to ``capacity`` cells at
  a time; a failed attempt is retried with exponential backoff until
  ``max_retries`` is exhausted, at which point the cell lands in the
  failed-cell ledger *without* sinking its siblings;
* a slow attempt past ``cell_timeout_seconds`` is cancelled (counting as a
  failed attempt);
* with ``checkpoint_dir`` set, every terminal cell outcome is persisted in
  a :class:`MatrixCheckpoint` manifest; ``resume=True`` skips completed
  cells, and each cell's own campaign checkpoints live under
  ``<checkpoint_dir>/cells/<cell>`` so a killed *attempt* resumes its
  chunks too.

Determinism contract: a cell's result depends only on its concrete
:class:`~repro.campaigns.spec.CampaignSpec` (deterministic by the campaign
replay guarantee) and fault injection is attempt-number-based, so the
aggregate report is byte-identical across executors and across
kill/resume — the property the ``matrix_campaign`` bench scenario and the
resume tests assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.api.registries import EXECUTORS
from repro.distributed.cells import make_task
from repro.distributed.report import build_matrix_report, write_report
from repro.distributed.spec import MatrixCampaignSpec, cell_key
from repro.pipeline.checkpoint import CheckpointMismatchError

_MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1
#: Scheduler poll interval while cells are in flight.
_POLL_SECONDS = 0.01


def matrix_fingerprint(spec: MatrixCampaignSpec) -> str:
    """Digest of the matrix's result-determining identity."""
    payload = json.dumps(spec.identity_dict(), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


class MatrixCheckpoint:
    """Terminal-cell-outcome manifest (the matrix analogue of CheckpointStore).

    Much lighter than the pipeline store — a cell's unit of persistence is
    its whole terminal outcome payload (the campaign runner checkpoints the
    *chunks* of an in-progress cell separately) — but with the same
    safety rails: an atomic write-then-rename manifest and a pinned
    fingerprint so resuming against a different matrix raises
    :class:`~repro.pipeline.checkpoint.CheckpointMismatchError`.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._manifest: Optional[Dict[str, Any]] = None

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST_NAME)

    def manifest(self) -> Dict[str, Any]:
        if self._manifest is None:
            if os.path.exists(self.manifest_path):
                with open(self.manifest_path) as handle:
                    self._manifest = json.load(handle)
            else:
                self._manifest = {"version": _MANIFEST_VERSION,
                                  "fingerprint": None, "cells": {}}
        return self._manifest

    def _write(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        temp_path = self.manifest_path + ".tmp"
        with open(temp_path, "w") as handle:
            json.dump(self.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, self.manifest_path)

    def bind_fingerprint(self, fingerprint: str, resume: bool) -> None:
        manifest = self.manifest()
        existing = manifest.get("fingerprint")
        if existing is None:
            manifest["fingerprint"] = fingerprint
            self._write()
            return
        if existing != fingerprint:
            action = "resume" if resume else "overwrite"
            raise CheckpointMismatchError(
                f"refusing to {action} matrix checkpoint directory "
                f"{self.directory!r}: it was written by a different matrix "
                f"spec (fingerprint {existing} != {fingerprint}); delete it "
                f"or choose another checkpoint_dir")

    def reset_cells(self) -> None:
        if self.manifest()["cells"]:
            self.manifest()["cells"] = {}
            self._write()

    def outcomes(self) -> Dict[str, Dict[str, Any]]:
        """Terminal outcome payloads of completed cells, keyed by cell."""
        return dict(self.manifest()["cells"])

    def record(self, key: str, outcome: Dict[str, Any]) -> None:
        self.manifest()["cells"][key] = outcome
        self._write()


@dataclass
class MatrixResult:
    """Outcome of one matrix run (plain data)."""

    report: Dict[str, Any]
    report_path: Optional[str]
    #: Terminal outcome payload per cell (completed cells only).
    cell_outcomes: Dict[str, Dict[str, Any]]
    #: Cells served from the checkpoint without re-running.
    resumed_cells: List[str] = field(default_factory=list)
    #: Cells that reached a terminal outcome during this run.
    executed_cells: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def status(self) -> str:
        return self.report["status"]

    @property
    def failed_cells(self) -> List[Dict[str, Any]]:
        return self.report["failed_cells"]


@dataclass
class _CellState:
    """Scheduler bookkeeping for one not-yet-terminal cell."""

    key: str
    target: str
    simulator: str
    campaign_payload: Dict[str, Any]
    fail_attempts: int
    delay_seconds: float
    attempts: int = 0
    next_eligible: float = 0.0


def _final_status(outcomes: Dict[str, Dict[str, Any]], total_cells: int,
                  interrupted: bool) -> str:
    if interrupted or len(outcomes) < total_cells:
        return "interrupted"
    if any(outcome["status"] != "ok" for outcome in outcomes.values()):
        return "partial"
    return "complete"


def _build_shared_corpora(spec: MatrixCampaignSpec, pending: List[_CellState],
                          log: Callable[[str], None]):
    """One resumable on-disk corpus per distinct pending target.

    Returns ``(corpus_path_by_target, temp_dir_holder)``; the holder keeps
    an anonymous corpus directory alive until the run finishes.  Skipped
    when the campaign body brings its own dataset or sharing is off.
    """
    body = spec.campaign
    if not spec.share_corpus or body.get("dataset_path") is not None:
        return {}, None
    temp_dir = None
    corpus_root = spec.corpus_dir
    if corpus_root is None:
        if spec.checkpoint_dir is not None:
            corpus_root = os.path.join(spec.checkpoint_dir, "corpora")
        else:
            import tempfile

            temp_dir = tempfile.TemporaryDirectory(prefix="repro-matrix-")
            corpus_root = temp_dir.name
    from repro.corpus import ShardedCorpus

    paths: Dict[str, str] = {}
    for state in pending:
        if state.target in paths:
            continue
        probe = spec.cell_campaign(state.target, state.simulator)
        path = os.path.join(corpus_root, state.target)
        log(f"[matrix] building shared corpus for {state.target} "
            f"({probe.num_blocks} blocks) at {path}")
        ShardedCorpus.build(path, uarch_name=state.target,
                            num_blocks=probe.num_blocks, seed=probe.seed,
                            resume=True)
        paths[state.target] = path
    return paths, temp_dir


def run_matrix(spec: Any, log: Optional[Callable[[str], None]] = None,
               max_cells: Optional[int] = None) -> MatrixResult:
    """Run (or resume) a matrix campaign to per-cell terminal outcomes.

    ``max_cells`` stops the run after that many cells reach a terminal
    outcome *this run* (status ``"interrupted"``) — the hook the resume
    tests use to kill the matrix at every cell boundary.
    """
    if isinstance(spec, dict):
        spec = MatrixCampaignSpec.from_dict(spec)
    spec.validate()
    log = log or (lambda message: None)
    start = time.perf_counter()

    pairs = spec.resolve_cells()
    checkpoint: Optional[MatrixCheckpoint] = None
    outcomes: Dict[str, Dict[str, Any]] = {}
    if spec.checkpoint_dir is not None:
        checkpoint = MatrixCheckpoint(spec.checkpoint_dir)
        checkpoint.bind_fingerprint(matrix_fingerprint(spec), spec.resume)
        if spec.resume:
            outcomes = checkpoint.outcomes()
        else:
            checkpoint.reset_cells()
    resumed_cells = [cell_key(target, simulator)
                     for target, simulator in pairs
                     if cell_key(target, simulator) in outcomes]
    if resumed_cells:
        log(f"[matrix] resumed {len(resumed_cells)} completed cells: "
            f"{', '.join(resumed_cells)}")

    cell_report_dir = spec.cell_report_dir
    if cell_report_dir is None and spec.checkpoint_dir is not None:
        cell_report_dir = os.path.join(spec.checkpoint_dir, "cell_reports")

    pending: List[_CellState] = []
    for target, simulator in pairs:
        key = cell_key(target, simulator)
        if key in outcomes:
            continue
        pending.append(_CellState(
            key=key, target=target, simulator=simulator,
            campaign_payload={},  # filled below once corpora exist
            fail_attempts=spec.fail_cells.get(key, 0),
            delay_seconds=float(spec.delay_cells.get(key, 0.0))))

    corpus_paths, temp_corpus = _build_shared_corpora(spec, pending, log)
    for state in pending:
        cell_checkpoint = (os.path.join(spec.checkpoint_dir, "cells", state.key)
                           if spec.checkpoint_dir is not None else None)
        report_path = (os.path.join(cell_report_dir,
                                    f"{state.key}.campaign_report.json")
                       if cell_report_dir is not None else None)
        state.campaign_payload = spec.cell_campaign(
            state.target, state.simulator,
            corpus_path=corpus_paths.get(state.target),
            checkpoint_dir=cell_checkpoint, resume=cell_checkpoint is not None,
            report_path=report_path).to_dict()

    executor = EXECUTORS.get(spec.executor)(spec)
    executed_cells: List[str] = []
    interrupted = False
    total_cells = len(pairs)

    def write_running_report() -> None:
        if spec.report_path is not None:
            write_report(spec.report_path,
                         build_matrix_report(spec, outcomes, "running"))

    def record_terminal(state: _CellState, payload: Dict[str, Any]) -> None:
        outcomes[state.key] = payload
        executed_cells.append(state.key)
        if checkpoint is not None:
            checkpoint.record(state.key, payload)
        write_running_report()

    try:
        queue: List[_CellState] = list(pending)
        in_flight: Dict[str, Any] = {}  # cell key -> (handle, state, started)
        while queue or in_flight:
            if interrupted:
                break
            now = time.monotonic()
            # Fill free capacity with the first eligible (backoff-respecting)
            # queued cells, preserving canonical order.
            for state in list(queue):
                if len(in_flight) >= executor.capacity:
                    break
                if state.next_eligible > now:
                    continue
                queue.remove(state)
                state.attempts += 1
                task = make_task(state.key, state.target, state.simulator,
                                 state.attempts, state.campaign_payload,
                                 fail_attempts=state.fail_attempts,
                                 delay_seconds=state.delay_seconds)
                log(f"[matrix] cell {state.key}: attempt {state.attempts} "
                    f"of {spec.max_retries + 1}")
                in_flight[state.key] = (executor.submit(task), state,
                                        time.monotonic())
            progressed = False
            for key, (handle, state, started) in list(in_flight.items()):
                outcome = handle.poll()
                if (outcome is None and spec.cell_timeout_seconds is not None
                        and time.monotonic() - started
                        >= spec.cell_timeout_seconds):
                    outcome = handle.cancel(
                        f"cell exceeded timeout of "
                        f"{spec.cell_timeout_seconds}s")
                if outcome is None:
                    continue
                progressed = True
                del in_flight[key]
                if outcome["status"] == "ok":
                    record_terminal(state, {
                        "status": "ok", "target": state.target,
                        "simulator": state.simulator,
                        "attempts": state.attempts,
                        "report": outcome["report"],
                        "num_variants": outcome["num_variants"]})
                    log(f"[matrix] cell {state.key}: completed "
                        f"({outcome['num_variants']} variants)")
                elif state.attempts > spec.max_retries:
                    record_terminal(state, {
                        "status": "failed", "target": state.target,
                        "simulator": state.simulator,
                        "attempts": state.attempts,
                        "error": outcome["error"],
                        "traceback": outcome.get("traceback")})
                    log(f"[matrix] cell {state.key}: FAILED after "
                        f"{state.attempts} attempts: {outcome['error']}")
                else:
                    backoff = (spec.retry_backoff_seconds
                               * (2 ** (state.attempts - 1)))
                    state.next_eligible = time.monotonic() + backoff
                    queue.append(state)
                    log(f"[matrix] cell {state.key}: attempt "
                        f"{state.attempts} failed ({outcome['error']}); "
                        f"retrying in {backoff:.2f}s")
                if (max_cells is not None
                        and len(executed_cells) >= max_cells):
                    interrupted = True
                    break
            if interrupted:
                # Cells still in flight stay non-terminal: a resume re-runs
                # them from their own campaign checkpoints.
                for key, (handle, state, _) in list(in_flight.items()):
                    handle.cancel("matrix interrupted")
                in_flight.clear()
                break
            if not progressed and (queue or in_flight):
                time.sleep(_POLL_SECONDS)
    finally:
        executor.close()
        if temp_corpus is not None:
            temp_corpus.cleanup()

    status = _final_status(outcomes, total_cells, interrupted)
    report = build_matrix_report(spec, outcomes, status)
    if spec.report_path is not None:
        write_report(spec.report_path, report)
    return MatrixResult(report=report, report_path=spec.report_path,
                        cell_outcomes=dict(outcomes),
                        resumed_cells=resumed_cells,
                        executed_cells=executed_cells,
                        elapsed_seconds=time.perf_counter() - start)
