"""CI smoke: run a tiny 2×2 matrix through the pool and remote executors.

Run as ``python -m repro.distributed.smoke``.  Exercises the whole matrix
stack end to end in under a minute: shared corpus build, inline reference
run, a process-pool run asserted byte-identical, and a single-cell remote
run against a live ``CampaignWorker`` on an ephemeral port.
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.distributed import CampaignWorker, MatrixCampaignSpec, run_matrix

CAMPAIGN = {
    "axes": [{"field": "WriteLatency", "opcode": "ADD32rr",
              "values": [1, 3, 5]}],
    "num_blocks": 30,
    "chunk_size": 8,
}
CELLS = [{"target": "haswell", "simulator": "mca"},
         {"target": "haswell", "simulator": "llvm_sim"},
         {"target": "zen2", "simulator": "mca"},
         {"target": "zen2", "simulator": "llvm_sim"}]


def main() -> int:
    log = lambda message: print(f"[smoke] {message}")  # noqa: E731
    with tempfile.TemporaryDirectory(prefix="repro-matrix-smoke-") as root:
        base = {"campaign": CAMPAIGN, "cells": CELLS,
                "corpus_dir": f"{root}/corpora"}
        inline = run_matrix(MatrixCampaignSpec.from_dict(base), log=log)
        assert inline.status == "complete", inline.report
        assert inline.report["num_completed_cells"] == len(CELLS)
        pooled = run_matrix(MatrixCampaignSpec.from_dict(
            dict(base, executor="pool", workers=2)), log=log)
        reference = json.dumps(inline.report, sort_keys=True)
        assert json.dumps(pooled.report, sort_keys=True) == reference, \
            "pool executor diverged from the inline reference report"

        worker = CampaignWorker(port=0, log=log)
        handle = worker.start_in_thread()
        try:
            remote = run_matrix(MatrixCampaignSpec.from_dict(
                dict(base, cells=CELLS[:1], executor="remote",
                     worker_urls=[handle.url])), log=log)
        finally:
            handle.stop()
        assert remote.status == "complete", remote.report
        assert (json.dumps(remote.report["cells"], sort_keys=True)
                == json.dumps({key: cell for key, cell
                               in inline.report["cells"].items()
                               if key == "haswell__mca"}, sort_keys=True)), \
            "remote executor diverged from the inline reference cell"
    print(f"matrix smoke ok: {len(CELLS)} cells byte-identical across "
          f"inline/pool, remote cell matched, worker stopped cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
