"""The remote campaign worker: ``repro worker``.

A thin HTTP wrapper around :func:`repro.distributed.cells.execute_cell`,
built on the same :class:`~repro.serving.http.JsonHttpServer` base as the
inference server, so both remote services share one tested wire protocol.

Endpoints:

* ``GET /healthz`` — liveness + a couple of counters; the remote executor's
  heartbeat probe while a cell is in flight.
* ``POST /run`` — execute one cell task (blocking for the cell's duration);
  the response body is the outcome dict, errors included, so the scheduler's
  retry logic sees remote failures exactly like local ones.

The cell runs on a worker thread (``run_in_executor``) so the event loop
stays responsive to heartbeats mid-cell.  ``drain_seconds`` defaults low:
a worker asked to stop mid-cell should drop the connection promptly — the
scheduler treats the disconnect as a failed attempt and retries elsewhere,
which is also what makes the disconnect tests deterministic.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serving.http import JsonHttpServer, ServingError


class CampaignWorker(JsonHttpServer):
    """Serve matrix cells over HTTP for the ``remote`` executor."""

    thread_name = "repro-worker"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 log: Optional[Any] = None,
                 drain_seconds: float = 0.5) -> None:
        super().__init__(host=host, port=port, log=log,
                         drain_seconds=drain_seconds)
        self.cells_completed = 0
        self.cells_failed = 0
        self._busy = 0

    def health_payload(self) -> Dict[str, Any]:
        return {"status": "ok", "busy": self._busy,
                "cells_completed": self.cells_completed,
                "cells_failed": self.cells_failed}

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path in ("/healthz", "/health"):
            if method != "GET":
                raise ServingError(405, f"{path} only supports GET")
            return 200, self.health_payload()
        if path == "/run":
            if method != "POST":
                raise ServingError(405, "/run only supports POST")
            try:
                task = json.loads(body.decode("utf-8")) if body else None
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServingError(400, f"request body is not JSON: {error}")
            if not isinstance(task, dict) or "campaign" not in task:
                raise ServingError(
                    400, "expected a cell task object with a 'campaign' key")
            return 200, await self._run_cell(task)
        raise ServingError(404, f"unknown endpoint {method} {path} "
                                f"(have: GET /healthz, POST /run)")

    async def _run_cell(self, task: Dict[str, Any]) -> Dict[str, Any]:
        from repro.distributed.cells import execute_cell

        self._busy += 1
        try:
            loop = asyncio.get_running_loop()
            outcome = await loop.run_in_executor(None, execute_cell, task)
        finally:
            self._busy -= 1
        if outcome.get("status") == "ok":
            self.cells_completed += 1
        else:
            self.cells_failed += 1
        self.log(f"cell {outcome.get('cell', '?')} attempt "
                 f"{outcome.get('attempt', '?')}: {outcome.get('status')}")
        return outcome

    def _startup_message(self) -> str:
        return (f"campaign worker listening on http://{self.host}:{self.port} "
                f"(POST /run, GET /healthz)")
