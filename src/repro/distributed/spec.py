"""Declarative matrix-campaign specifications.

A matrix campaign fans **one** campaign body (a
:class:`~repro.campaigns.spec.CampaignSpec` minus its ``target`` /
``simulator`` identity) across a grid of *cells* — one campaign per
``(target, simulator)`` pair — and aggregates the per-cell reports into a
single comparison matrix.  The cell set is either explicit (``cells``) or
derived from the registries: by default every registered target crossed
with every simulator that can sweep the campaign's axes.

Execution knobs name a pluggable executor from the EXECUTORS registry
(inline / local process pool / remote workers), per-cell retry with
exponential backoff, per-cell timeouts, and checkpoint-backed resume.  Like
every other :mod:`repro.api` spec, the whole thing round-trips through JSON
and validates eagerly — each cell's concrete :class:`CampaignSpec` is
constructed and validated up front, so an axis one simulator cannot sweep
fails before any cell runs, naming the offending cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.registries import EXECUTORS, SIMULATORS, TARGETS
from repro.api.specs import SpecValidationError, _SpecBase
from repro.campaigns.spec import CampaignSpec

#: CampaignSpec fields the matrix layer owns; the campaign body may not
#: set them (identity comes from the cell, execution from the matrix).
_RESERVED_CAMPAIGN_FIELDS = ("target", "simulator", "corpus_path",
                             "checkpoint_dir", "resume", "report_path")


def cell_key(target: str, simulator: str) -> str:
    """Stable cell identifier: ``<target>__<simulator>``."""
    return f"{target}__{simulator}"


@dataclass
class MatrixCampaignSpec(_SpecBase):
    """One campaign body × a grid of (target, simulator) cells.

    ``campaign`` is a plain :class:`CampaignSpec` payload dict without the
    reserved identity/execution fields.  ``targets`` / ``simulators``
    default to the full registries; an explicit ``cells`` list of
    ``{"target": ..., "simulator": ...}`` dicts overrides both.  Fault
    injection (``fail_cells``) deterministically fails the first N attempts
    of named cells — the hook the retry/ledger tests and the failure
    acceptance criterion are built on, and part of the spec's identity so
    an injected failure replays identically on resume.
    """

    #: The shared campaign body (CampaignSpec fields minus the reserved ones).
    campaign: Dict[str, Any] = field(default_factory=dict)
    #: Target registry keys; ``None`` = every registered target.
    targets: Optional[List[str]] = None
    #: Simulator registry keys; ``None`` = every registered simulator.
    simulators: Optional[List[str]] = None
    #: Explicit cell list (overrides ``targets`` × ``simulators``).
    cells: Optional[List[Dict[str, str]]] = None
    #: EXECUTORS registry key: ``inline``, ``pool``, or ``remote``.
    executor: str = "inline"
    #: Concurrent cells for the ``pool`` executor.
    workers: int = 2
    #: Worker base URLs (``http://host:port``) for the ``remote`` executor.
    worker_urls: List[str] = field(default_factory=list)
    #: Failed cells are retried up to this many times (attempts = retries+1).
    max_retries: int = 2
    #: First-retry delay; doubles per subsequent retry of the same cell.
    retry_backoff_seconds: float = 0.25
    #: Kill a cell attempt running longer than this (``None`` = no limit).
    cell_timeout_seconds: Optional[float] = None
    #: Remote-worker liveness probe interval while a cell is in flight.
    heartbeat_seconds: float = 5.0
    #: Where shared per-target corpora live; ``None`` uses
    #: ``<checkpoint_dir>/corpora`` (or a temporary directory without one).
    corpus_dir: Optional[str] = None
    #: Build one on-disk corpus per target and point every cell at it, so
    #: block generation/measurement happens once per target, not per cell.
    share_corpus: bool = True
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    #: Aggregate ``matrix_report.json`` destination.
    report_path: Optional[str] = None
    #: Per-cell ``campaign_report.json`` directory; ``None`` uses
    #: ``<checkpoint_dir>/cell_reports`` when checkpointing, else skips them.
    cell_report_dir: Optional[str] = None
    #: Deterministic fault injection: cell key -> fail the first N attempts
    #: (``-1`` = every attempt, landing the cell in the failed ledger).
    fail_cells: Dict[str, int] = field(default_factory=dict)
    #: Deterministic slow-down: cell key -> seconds slept per attempt
    #: (execution-only; drives the timeout/disconnect tests).
    delay_cells: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Cell resolution
    # ------------------------------------------------------------------
    def resolve_cells(self) -> List[Tuple[str, str]]:
        """The ordered, canonical ``(target, simulator)`` grid."""
        if self.cells is not None:
            resolved = []
            for index, cell in enumerate(self.cells):
                if (not isinstance(cell, dict) or "target" not in cell
                        or "simulator" not in cell):
                    raise SpecValidationError(
                        f"cells[{index}]",
                        f"expected {{'target': ..., 'simulator': ...}}, "
                        f"got {cell!r}")
                resolved.append((TARGETS.resolve(cell["target"]),
                                 SIMULATORS.resolve(cell["simulator"])))
        else:
            targets = ([TARGETS.resolve(name) for name in self.targets]
                       if self.targets is not None else TARGETS.names())
            simulators = ([SIMULATORS.resolve(name) for name in self.simulators]
                          if self.simulators is not None else SIMULATORS.names())
            resolved = [(target, simulator) for target in targets
                        for simulator in simulators]
        seen: Dict[Tuple[str, str], int] = {}
        for index, pair in enumerate(resolved):
            if pair in seen:
                raise SpecValidationError(
                    "cells", f"duplicate cell {cell_key(*pair)!r} "
                             f"(positions {seen[pair]} and {index})")
            seen[pair] = index
        if not resolved:
            raise SpecValidationError("cells", "matrix has no cells")
        return resolved

    def cell_campaign(self, target: str, simulator: str,
                      corpus_path: Optional[str] = None,
                      checkpoint_dir: Optional[str] = None,
                      resume: bool = False,
                      report_path: Optional[str] = None) -> CampaignSpec:
        """The concrete :class:`CampaignSpec` of one cell."""
        payload = dict(self.campaign)
        payload["target"] = target
        payload["simulator"] = simulator
        if corpus_path is not None:
            payload["corpus_path"] = corpus_path
        if checkpoint_dir is not None:
            payload["checkpoint_dir"] = checkpoint_dir
            payload["resume"] = resume
        if report_path is not None:
            payload["report_path"] = report_path
        return CampaignSpec.from_dict(payload)

    # ------------------------------------------------------------------
    # Validation / identity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not isinstance(self.campaign, dict):
            raise SpecValidationError(
                "campaign", f"expected a CampaignSpec payload dict, "
                            f"got {type(self.campaign).__name__}")
        for reserved in _RESERVED_CAMPAIGN_FIELDS:
            if reserved in self.campaign:
                raise SpecValidationError(
                    f"campaign.{reserved}",
                    "is owned by the matrix layer (cells set their own "
                    "identity; checkpoints/reports/corpora come from the "
                    "matrix spec)")
        self._check_registry("executor", EXECUTORS)
        self._check_positive("workers")
        if not isinstance(self.worker_urls, (list, tuple)) or not all(
                isinstance(url, str) for url in self.worker_urls):
            raise SpecValidationError(
                "worker_urls", f"expected a list of http://host:port strings, "
                               f"got {self.worker_urls!r}")
        if EXECUTORS.resolve(self.executor) == "remote" and not self.worker_urls:
            raise SpecValidationError(
                "worker_urls", "the remote executor needs at least one worker "
                               "URL (start workers with 'repro worker')")
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise SpecValidationError(
                "max_retries", f"expected an int >= 0, got {self.max_retries!r}")
        if (not isinstance(self.retry_backoff_seconds, (int, float))
                or self.retry_backoff_seconds < 0):
            raise SpecValidationError(
                "retry_backoff_seconds",
                f"expected a number >= 0, got {self.retry_backoff_seconds!r}")
        if self.cell_timeout_seconds is not None and (
                not isinstance(self.cell_timeout_seconds, (int, float))
                or self.cell_timeout_seconds <= 0):
            raise SpecValidationError(
                "cell_timeout_seconds",
                f"expected a positive number, got {self.cell_timeout_seconds!r}")
        if (not isinstance(self.heartbeat_seconds, (int, float))
                or self.heartbeat_seconds <= 0):
            raise SpecValidationError(
                "heartbeat_seconds",
                f"expected a positive number, got {self.heartbeat_seconds!r}")
        for name in ("corpus_dir", "checkpoint_dir", "report_path",
                     "cell_report_dir"):
            self._check_type(name, (str,), allow_none=True)
        self._check_type("share_corpus", (bool,))
        self._check_type("resume", (bool,))
        if self.resume and self.checkpoint_dir is None:
            raise SpecValidationError("resume", "requires checkpoint_dir to be set")
        pairs = self.resolve_cells()
        keys = {cell_key(target, simulator) for target, simulator in pairs}
        for injection, expected in (("fail_cells", int), ("delay_cells", (int, float))):
            mapping = getattr(self, injection)
            if not isinstance(mapping, dict):
                raise SpecValidationError(
                    injection, f"expected a dict keyed by cell, got {mapping!r}")
            for key, value in mapping.items():
                if key not in keys:
                    raise SpecValidationError(
                        f"{injection}[{key!r}]",
                        f"names no cell of this matrix (cells: "
                        f"{', '.join(sorted(keys))})")
                if isinstance(value, bool) or not isinstance(value, expected):
                    raise SpecValidationError(
                        f"{injection}[{key!r}]", f"bad value {value!r}")
        # Each cell's concrete campaign must itself be valid — catches axes
        # a cell's simulator cannot sweep before anything executes.
        for target, simulator in pairs:
            try:
                self.cell_campaign(target, simulator).validate()
            except SpecValidationError as error:
                raise SpecValidationError(
                    f"campaign.{error.field}",
                    f"invalid for cell {cell_key(target, simulator)!r}: "
                    f"{str(error).split(': ', 1)[-1]}") from error

    def identity_dict(self) -> Dict[str, Any]:
        """The result-determining fields, for fingerprints and reports.

        Execution-only knobs (executor choice, worker counts/URLs, backoff
        pacing, timeouts, every directory/path) are excluded: a matrix run
        inline or across a pool, interrupted or resumed, from any corpus
        directory, must emit a byte-identical aggregate report.
        ``fail_cells`` stays — an injected failure *is* part of the result
        (it lands in the failed-cell ledger) — as does ``max_retries``,
        which fixes the attempt count a ledger entry records.
        """
        payload = self.to_dict()
        for key in ("executor", "workers", "worker_urls",
                    "retry_backoff_seconds", "cell_timeout_seconds",
                    "heartbeat_seconds", "corpus_dir", "share_corpus",
                    "checkpoint_dir", "resume", "report_path",
                    "cell_report_dir", "delay_cells"):
            payload.pop(key)
        return payload
