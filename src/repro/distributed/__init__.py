"""Distributed matrix campaigns: one campaign × every uarch/simulator cell.

This package fans a single campaign body across a grid of
``(target, simulator)`` cells with fault-tolerant dispatch:

* :class:`MatrixCampaignSpec` — the declarative matrix (campaign body +
  cell grid + execution knobs), JSON round-trippable like every API spec;
* :func:`run_matrix` — the scheduler: pluggable executors (``inline``,
  ``pool``, ``remote``), per-cell retry with exponential backoff, per-cell
  timeouts, checkpoint-backed resume skipping completed cells, and a shared
  on-disk corpus per target;
* :class:`CampaignWorker` — the ``repro worker`` HTTP endpoint remote
  executors dispatch cells to;
* :func:`build_matrix_report` / :func:`format_matrix_report` — the
  schema-versioned aggregate ``matrix_report.json`` and its CLI rendering.

Public entry points::

    from repro.distributed import MatrixCampaignSpec, run_matrix

    spec = MatrixCampaignSpec(
        campaign={"axes": [{"field": "WriteLatency", "opcode": "ADD32rr",
                            "values": [1, 3, 5]}]},
        targets=["haswell", "zen2"], simulators=["mca", "llvm_sim"],
        executor="pool", workers=4)
    result = run_matrix(spec)

Only the spec layer imports eagerly; the scheduler, executors, report, and
worker load on first attribute access (the spec is imported by
:mod:`repro.api` and the executors pull in multiprocessing/HTTP machinery).
"""

from repro.distributed.spec import MatrixCampaignSpec, cell_key

__all__ = [
    "MatrixCampaignSpec",
    "cell_key",
    "MatrixCheckpoint",
    "MatrixResult",
    "matrix_fingerprint",
    "run_matrix",
    "CellExecutor",
    "CellHandle",
    "InlineExecutor",
    "ProcessCellExecutor",
    "RemoteExecutor",
    "WorkerClient",
    "execute_cell",
    "make_task",
    "MATRIX_REPORT_VERSION",
    "build_matrix_report",
    "format_matrix_report",
    "CampaignWorker",
]

#: Lazily resolved exports: name -> defining submodule.
_LAZY_EXPORTS = {
    "MatrixCheckpoint": "repro.distributed.scheduler",
    "MatrixResult": "repro.distributed.scheduler",
    "matrix_fingerprint": "repro.distributed.scheduler",
    "run_matrix": "repro.distributed.scheduler",
    "CellExecutor": "repro.distributed.executors",
    "CellHandle": "repro.distributed.executors",
    "InlineExecutor": "repro.distributed.executors",
    "ProcessCellExecutor": "repro.distributed.executors",
    "RemoteExecutor": "repro.distributed.executors",
    "WorkerClient": "repro.distributed.executors",
    "execute_cell": "repro.distributed.cells",
    "make_task": "repro.distributed.cells",
    "MATRIX_REPORT_VERSION": "repro.distributed.report",
    "build_matrix_report": "repro.distributed.report",
    "format_matrix_report": "repro.distributed.report",
    "CampaignWorker": "repro.distributed.worker",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
