"""The shared simulation engine: batched, cached, optionally parallel.

Every stage of the DiffTune pipeline — simulated-dataset collection, the
black-box baselines, evaluation — reduces to the same request: *the timings
of these blocks under these parameter tables*.  :class:`SimulationEngine`
serves that request through one path:

1. blocks are compiled once (table-independent structure, see
   :mod:`repro.engine.compile`) and reused across every table;
2. results are cached in an LRU keyed by ``(table_digest, block_id)``, so
   searchers that re-evaluate overlapping table/block pairs (random search,
   annealing, genetic, coordinate descent) never recompute a pair;
3. cache misses are gathered and executed as *megabatches* — one
   numpy-vectorized kernel invocation per table over every missing block
   (see :mod:`repro.engine.megabatch`) — and scattered back through the
   cache; ``megabatch=False`` retains the per-block scalar path, which is
   bit-identical;
4. with workers configured, megabatches are chunked across a
   ``multiprocessing`` pool (several tasks per worker rather than one
   monolithic task per table) with deterministic reassembly.

The engine is simulator-agnostic: it is constructed from a
``simulator_factory`` (native table -> simulator with ``predict_timing``
and optionally ``predict_timing_batch``) and a ``table_digest`` function.
:mod:`repro.engine.factories` provides the two concrete constructions for
llvm-mca and llvm_sim.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.binding import LRUCache
from repro.engine.compile import BlockCompiler
from repro.isa.basic_block import BasicBlock

#: Default result-cache capacity: comfortably holds a full black-box search
#: (tens of thousands of table evaluations x a batch of blocks).
DEFAULT_CACHE_SIZE = 1 << 17

#: Which ``predict_timing_batch`` implementations accept a ``compiled``
#: keyword (keyed by the underlying function, checked once per simulator
#: class).  Third-party simulators may predate the parameter.
_ACCEPTS_COMPILED: Dict[Any, bool] = {}


def _accepts_compiled(batch: Callable[..., Any]) -> bool:
    function = getattr(batch, "__func__", batch)
    accepts = _ACCEPTS_COMPILED.get(function)
    if accepts is None:
        import inspect

        try:
            accepts = "compiled" in inspect.signature(function).parameters
        except (TypeError, ValueError):
            accepts = False
        _ACCEPTS_COMPILED[function] = accepts
    return accepts


def _simulate_blocks_task(task: Any) -> List[float]:
    """Worker entry point: simulate ``blocks`` under one table.

    Module-level so it pickles under every multiprocessing start method.
    Routes through the simulator's megabatch kernel when the engine runs
    with ``megabatch=True`` and the simulator provides one; both paths
    produce identical bits.
    """
    simulator_factory, table, blocks, megabatch = task
    simulator = simulator_factory(table)
    batch = getattr(simulator, "predict_timing_batch", None) if megabatch else None
    if batch is not None:
        return [float(value) for value in batch(blocks)]
    return [float(simulator.predict_timing(block)) for block in blocks]


class SimulationEngine:
    """Batched execution of (parameter table, basic block) pairs.

    Args:
        simulator_factory: Builds a simulator from a native parameter table.
            Must be picklable (a class or :func:`functools.partial` of one)
            when ``num_workers > 1``.
        table_digest: Content digest of a native table; together with the
            block digest it keys the result cache.
        cache_size: Capacity of the timing LRU cache.
        num_workers: Opt-in process fan-out for :meth:`run`.  ``0`` or ``1``
            executes serially in-process; ``>= 2`` chunks the missing
            blocks of every table across a pool.  Results are deterministic
            and identical to the serial path either way.
        megabatch: Route cache misses through the simulators' vectorized
            megabatch kernels (bit-identical to the scalar path, roughly an
            order of magnitude faster).  ``False`` simulates blocks one at
            a time with ``predict_timing`` — the right choice only for
            debugging single blocks or simulators without a batch kernel.
    """

    def __init__(self, simulator_factory: Callable[[Any], Any],
                 table_digest: Callable[[Any], str],
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 num_workers: int = 0,
                 megabatch: bool = True) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self._factory = simulator_factory
        self._table_digest = table_digest
        self.num_workers = num_workers
        self.megabatch = megabatch
        self._results = LRUCache(cache_size)
        self._compilers: Dict[int, BlockCompiler] = {}
        self._parallel_batches = 0
        self._megabatch_batches = 0
        self._executed = 0

    # ------------------------------------------------------------------
    # Compilation sharing
    # ------------------------------------------------------------------
    def _compiler_for(self, opcode_table: Any) -> BlockCompiler:
        compiler = self._compilers.get(id(opcode_table))
        if compiler is None:
            compiler = BlockCompiler(opcode_table)
            self._compilers[id(opcode_table)] = compiler
        return compiler

    def _build_simulator(self, table: Any, compiler: BlockCompiler) -> Any:
        simulator = self._factory(table)
        if hasattr(simulator, "compiler"):
            simulator.compiler = compiler
        return simulator

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, table: Any, blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Timings of ``blocks`` under one table, shape ``(len(blocks),)``."""
        digest = self._table_digest(table)
        compiler = self._compiler_for(table.opcode_table)
        timings = np.empty(len(blocks), dtype=np.float64)
        # Misses are gathered (deduplicated by block content) into one
        # megabatch per table, then scattered back through the cache.
        missing: Dict[str, List[int]] = {}
        unique_blocks: List[BasicBlock] = []
        unique_compiled: List[Any] = []
        for position, block in enumerate(blocks):
            compiled_block = compiler.compile(block)
            block_id = compiled_block.block_id
            cached = self._results.get((digest, block_id))
            if cached is None:
                if block_id not in missing:
                    unique_blocks.append(block)
                    unique_compiled.append(compiled_block)
                missing.setdefault(block_id, []).append(position)
            else:
                timings[position] = cached
        if missing:
            simulator = self._build_simulator(table, compiler)
            values = self._predict_missing(simulator, unique_blocks,
                                           unique_compiled)
            self._executed += len(values)
            for (block_id, positions), value in zip(missing.items(), values):
                for position in positions:
                    timings[position] = value
                self._results.put((digest, block_id), value)
        return timings

    def _predict_missing(self, simulator: Any, blocks: Sequence[BasicBlock],
                         compiled: Optional[Sequence[Any]] = None
                         ) -> List[float]:
        """Simulate uncached blocks, vectorized when the simulator can."""
        batch = (getattr(simulator, "predict_timing_batch", None)
                 if self.megabatch else None)
        if batch is not None:
            self._megabatch_batches += 1
            if compiled is not None and _accepts_compiled(batch):
                values = batch(blocks, compiled=compiled)
            else:
                values = batch(blocks)
            # ndarray -> Python floats in one C call rather than a scalar
            # conversion per element (the cache stores plain floats).
            return np.asarray(values, dtype=np.float64).tolist()
        return [float(simulator.predict_timing(block)) for block in blocks]

    def run(self, tables: Sequence[Any], blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Timings of every block under every table.

        Returns a ``(len(tables), len(blocks))`` array whose row order
        matches ``tables`` and column order matches ``blocks``, regardless
        of caching or parallel scheduling.
        """
        blocks = list(blocks)
        if not tables:
            return np.empty((0, len(blocks)), dtype=np.float64)
        rows = self.run_pairs([(table, blocks) for table in tables])
        return np.stack(rows)

    def run_pairs(self, pairs: Sequence[Tuple[Any, Sequence[BasicBlock]]]
                  ) -> List[np.ndarray]:
        """Timings for heterogeneous ``(table, blocks)`` pairs.

        The workhorse behind :meth:`run` and the chunked dataset-collection
        path, where every sampled table is evaluated on its own block draw.
        Returns one timing array per pair, in input order; uncached pairs
        fan out across the process pool when workers are configured.
        """
        results: List[Optional[np.ndarray]] = [None] * len(pairs)
        if not (self.num_workers > 1 and len(pairs) > 1):
            for index, (table, blocks) in enumerate(pairs):
                results[index] = self.run_one(table, blocks)
            return results

        pending: List[Any] = []  # (pair_index, digest, {id: positions}, blocks, table)
        for index, (table, blocks) in enumerate(pairs):
            digest = self._table_digest(table)
            compiler = self._compiler_for(table.opcode_table)
            timings = np.empty(len(blocks), dtype=np.float64)
            # Deduplicate misses by block content so each unique block is
            # simulated once per table, as the serial path's cache ensures.
            missing: Dict[str, List[int]] = {}
            unique_blocks: List[BasicBlock] = []
            for position, block in enumerate(blocks):
                block_id = compiler.compile(block).block_id
                cached = self._results.get((digest, block_id))
                if cached is None:
                    if block_id not in missing:
                        unique_blocks.append(block)
                    missing.setdefault(block_id, []).append(position)
                else:
                    timings[position] = cached
            results[index] = timings
            if missing:
                pending.append((index, digest, missing, unique_blocks, table))
        if not pending:
            return results

        self._parallel_batches += 1
        # Fan-out granularity: one monolithic task per table would leave
        # most workers idle whenever tables are fewer than workers (a single
        # megabatched table is the common evaluate/sweep shape), so each
        # table's missing blocks are chunked into a few tasks per worker.
        # ``pool.map`` preserves task order, so reassembly is deterministic.
        total_missing = sum(len(entry[3]) for entry in pending)
        target_tasks = max(self.num_workers * 2, len(pending))
        chunk = max(1, -(-total_missing // target_tasks))
        tasks: List[Any] = []
        segments: List[Any] = []  # (pair_index, digest, missing, ids) per task
        for index, digest, missing, unique_blocks, table in pending:
            ids = list(missing.keys())
            for start in range(0, len(ids), chunk):
                tasks.append((self._factory, table,
                              unique_blocks[start:start + chunk],
                              self.megabatch))
                segments.append((index, digest, missing,
                                 ids[start:start + chunk]))
        if self.megabatch:
            self._megabatch_batches += len(tasks)
        start_methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else start_methods[0])
        processes = min(self.num_workers, len(tasks))
        with context.Pool(processes=processes) as pool:
            computed = pool.map(_simulate_blocks_task, tasks)
        for (index, digest, missing, ids), values in zip(segments, computed):
            self._executed += len(values)
            for block_id, value in zip(ids, values):
                for position in missing[block_id]:
                    results[index][position] = value
                self._results.put((digest, block_id), value)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Cache and execution counters.

        ``executed`` counts simulations actually run; ``result_misses``
        counts cache lookups that failed, which can exceed ``executed`` when
        the parallel path deduplicates repeated blocks within one batch.
        """
        return {
            "result_hits": self._results.hits,
            "result_misses": self._results.misses,
            "result_entries": len(self._results),
            "executed": self._executed,
            "compile_hits": sum(compiler.hits for compiler in self._compilers.values()),
            "compile_misses": sum(compiler.misses for compiler in self._compilers.values()),
            "parallel_batches": self._parallel_batches,
            "megabatch_batches": self._megabatch_batches,
        }

    def clear_cache(self) -> None:
        self._results.clear()
        for compiler in self._compilers.values():
            compiler.clear()
        self._parallel_batches = 0
        self._megabatch_batches = 0
        self._executed = 0

    def clear_results(self) -> None:
        """Drop cached timings but keep compiled blocks.

        The next run re-simulates every block without re-compiling — what a
        throughput benchmark wants between repetitions, and cheaper than
        :meth:`clear_cache` when only the result LRU must be invalidated.
        """
        self._results.clear()
