"""The shared simulation engine: batched, cached, optionally parallel.

Every stage of the DiffTune pipeline — simulated-dataset collection, the
black-box baselines, evaluation — reduces to the same request: *the timings
of these blocks under these parameter tables*.  :class:`SimulationEngine`
serves that request through one path:

1. blocks are compiled once (table-independent structure, see
   :mod:`repro.engine.compile`) and reused across every table;
2. results are cached in an LRU keyed by ``(table_digest, block_id)``, so
   searchers that re-evaluate overlapping table/block pairs (random search,
   annealing, genetic, coordinate descent) never recompute a pair;
3. cache misses are executed either serially or, opt-in, fanned out across
   a ``multiprocessing`` pool with one task per table and deterministic
   result ordering.

The engine is simulator-agnostic: it is constructed from a
``simulator_factory`` (native table -> simulator with ``predict_timing``)
and a ``table_digest`` function.  :mod:`repro.engine.factories` provides the
two concrete constructions for llvm-mca and llvm_sim.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.binding import LRUCache
from repro.engine.compile import BlockCompiler
from repro.isa.basic_block import BasicBlock

#: Default result-cache capacity: comfortably holds a full black-box search
#: (tens of thousands of table evaluations x a batch of blocks).
DEFAULT_CACHE_SIZE = 1 << 17


def _simulate_blocks_task(task: Any) -> List[float]:
    """Worker entry point: simulate ``blocks`` under one table.

    Module-level so it pickles under every multiprocessing start method.
    """
    simulator_factory, table, blocks = task
    simulator = simulator_factory(table)
    return [float(simulator.predict_timing(block)) for block in blocks]


class SimulationEngine:
    """Batched execution of (parameter table, basic block) pairs.

    Args:
        simulator_factory: Builds a simulator from a native parameter table.
            Must be picklable (a class or :func:`functools.partial` of one)
            when ``num_workers > 1``.
        table_digest: Content digest of a native table; together with the
            block digest it keys the result cache.
        cache_size: Capacity of the timing LRU cache.
        num_workers: Opt-in process fan-out for :meth:`run`.  ``0`` or ``1``
            executes serially in-process; ``>= 2`` distributes one task per
            table over a pool.  Results are deterministic and identical to
            the serial path either way.
    """

    def __init__(self, simulator_factory: Callable[[Any], Any],
                 table_digest: Callable[[Any], str],
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 num_workers: int = 0) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self._factory = simulator_factory
        self._table_digest = table_digest
        self.num_workers = num_workers
        self._results = LRUCache(cache_size)
        self._compilers: Dict[int, BlockCompiler] = {}
        self._parallel_batches = 0
        self._executed = 0

    # ------------------------------------------------------------------
    # Compilation sharing
    # ------------------------------------------------------------------
    def _compiler_for(self, opcode_table: Any) -> BlockCompiler:
        compiler = self._compilers.get(id(opcode_table))
        if compiler is None:
            compiler = BlockCompiler(opcode_table)
            self._compilers[id(opcode_table)] = compiler
        return compiler

    def _build_simulator(self, table: Any, compiler: BlockCompiler) -> Any:
        simulator = self._factory(table)
        if hasattr(simulator, "compiler"):
            simulator.compiler = compiler
        return simulator

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, table: Any, blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Timings of ``blocks`` under one table, shape ``(len(blocks),)``."""
        digest = self._table_digest(table)
        compiler = self._compiler_for(table.opcode_table)
        timings = np.empty(len(blocks), dtype=np.float64)
        simulator: Optional[Any] = None
        for position, block in enumerate(blocks):
            key = (digest, compiler.compile(block).block_id)
            cached = self._results.get(key)
            if cached is None:
                if simulator is None:
                    simulator = self._build_simulator(table, compiler)
                cached = float(simulator.predict_timing(block))
                self._executed += 1
                self._results.put(key, cached)
            timings[position] = cached
        return timings

    def run(self, tables: Sequence[Any], blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Timings of every block under every table.

        Returns a ``(len(tables), len(blocks))`` array whose row order
        matches ``tables`` and column order matches ``blocks``, regardless
        of caching or parallel scheduling.
        """
        blocks = list(blocks)
        if not tables:
            return np.empty((0, len(blocks)), dtype=np.float64)
        rows = self.run_pairs([(table, blocks) for table in tables])
        return np.stack(rows)

    def run_pairs(self, pairs: Sequence[Tuple[Any, Sequence[BasicBlock]]]
                  ) -> List[np.ndarray]:
        """Timings for heterogeneous ``(table, blocks)`` pairs.

        The workhorse behind :meth:`run` and the chunked dataset-collection
        path, where every sampled table is evaluated on its own block draw.
        Returns one timing array per pair, in input order; uncached pairs
        fan out across the process pool when workers are configured.
        """
        results: List[Optional[np.ndarray]] = [None] * len(pairs)
        if not (self.num_workers > 1 and len(pairs) > 1):
            for index, (table, blocks) in enumerate(pairs):
                results[index] = self.run_one(table, blocks)
            return results

        pending: List[Any] = []     # (pair_index, digest, {block_id: positions}, task)
        for index, (table, blocks) in enumerate(pairs):
            digest = self._table_digest(table)
            compiler = self._compiler_for(table.opcode_table)
            timings = np.empty(len(blocks), dtype=np.float64)
            # Deduplicate misses by block content so each unique block is
            # simulated once per table, as the serial path's cache ensures.
            missing: Dict[str, List[int]] = {}
            for position, block in enumerate(blocks):
                block_id = compiler.compile(block).block_id
                cached = self._results.get((digest, block_id))
                if cached is None:
                    missing.setdefault(block_id, []).append(position)
                else:
                    timings[position] = cached
            results[index] = timings
            if missing:
                task = (self._factory, table,
                        [blocks[positions[0]] for positions in missing.values()])
                pending.append((index, digest, missing, task))
        if not pending:
            return results

        self._parallel_batches += 1
        start_methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else start_methods[0])
        processes = min(self.num_workers, len(pending))
        with context.Pool(processes=processes) as pool:
            computed = pool.map(_simulate_blocks_task, [entry[3] for entry in pending])
        for (index, digest, missing, _task), values in zip(pending, computed):
            self._executed += len(values)
            for (block_id, positions), value in zip(missing.items(), values):
                for position in positions:
                    results[index][position] = value
                self._results.put((digest, block_id), value)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Cache and execution counters.

        ``executed`` counts simulations actually run; ``result_misses``
        counts cache lookups that failed, which can exceed ``executed`` when
        the parallel path deduplicates repeated blocks within one batch.
        """
        return {
            "result_hits": self._results.hits,
            "result_misses": self._results.misses,
            "result_entries": len(self._results),
            "executed": self._executed,
            "compile_hits": sum(compiler.hits for compiler in self._compilers.values()),
            "compile_misses": sum(compiler.misses for compiler in self._compilers.values()),
            "parallel_batches": self._parallel_batches,
        }

    def clear_cache(self) -> None:
        self._results.clear()
        for compiler in self._compilers.values():
            compiler.clear()
        self._parallel_batches = 0
        self._executed = 0
