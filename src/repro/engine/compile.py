"""Block compilation: the table-independent half of a simulation.

Every simulator in this reproduction separates per-block work into two
halves:

* information that depends only on the *block* — opcode indices into the
  opcode table, the canonical source/destination registers of every
  instruction, the micro-op structure of the dependency graph; and
* information that depends on the *parameter table* — latencies, micro-op
  counts, port occupancies (see :mod:`repro.engine.binding`).

A :class:`CompiledBlock` captures the first half once so it can be reused
across every parameter table the block is ever simulated under.  Register
names are interned to dense integer ids (block-local — the simulators'
register scoreboards never outlive one block), which lets the simulation
kernels replace string-keyed dictionaries with flat integer arrays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import OpcodeTable


def block_digest(block: BasicBlock) -> str:
    """Stable content digest of a block (its rendered assembly).

    Two blocks with identical assembly simulate identically under every
    parameter table, so the digest doubles as the block half of the engine's
    result-cache key.
    """
    payload = "\n".join(block.structural_key()).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class CompiledBlock:
    """Table-independent per-block simulation structure.

    Attributes:
        block_id: Content digest of the block (see :func:`block_digest`).
        length: Number of instructions.
        opcode_indices: ``(length,)`` int64 array of opcode-table indices,
            used to gather per-opcode parameters in one vectorized step.
        source_ids: Per-instruction tuples of interned source-register ids.
        destination_ids: Per-instruction tuples of interned
            destination-register ids.
        num_registers: Size of the block-local register universe (scoreboard
            width for the simulation kernels).
    """

    block_id: str
    length: int
    opcode_indices: np.ndarray
    source_ids: Tuple[Tuple[int, ...], ...]
    destination_ids: Tuple[Tuple[int, ...], ...]
    num_registers: int


def compile_block(block: BasicBlock, opcode_table: OpcodeTable) -> CompiledBlock:
    """Compile ``block`` against ``opcode_table``.

    This is the work :class:`~repro.llvm_mca.simulator.MCASimulator` used to
    redo on every ``simulate()`` call (opcode lookup, register extraction);
    it depends only on the block, never on the parameter table.
    """
    register_ids: Dict[str, int] = {}

    def intern(registers: Tuple[str, ...]) -> Tuple[int, ...]:
        ids = []
        for register in registers:
            identifier = register_ids.get(register)
            if identifier is None:
                identifier = len(register_ids)
                register_ids[register] = identifier
            ids.append(identifier)
        return tuple(ids)

    opcode_indices = np.fromiter(
        (opcode_table.index_of(instruction.opcode.name) for instruction in block),
        dtype=np.int64, count=len(block))
    source_ids = tuple(intern(instruction.source_registers()) for instruction in block)
    destination_ids = tuple(intern(instruction.destination_registers()) for instruction in block)
    return CompiledBlock(
        block_id=block_digest(block),
        length=len(block),
        opcode_indices=opcode_indices,
        source_ids=source_ids,
        destination_ids=destination_ids,
        num_registers=len(register_ids),
    )


class BlockCompiler:
    """Compiles blocks against one opcode table, caching by block content.

    The cache key is the block's structural key (its assembly), so blocks
    that are equal-by-content share one compilation even when they are
    distinct Python objects (as happens when datasets are reloaded from
    JSON).  Set ``max_entries=0`` to disable caching — used by benchmarks to
    reproduce the seed's per-call behaviour as the scalar baseline.
    """

    def __init__(self, opcode_table: OpcodeTable, max_entries: Optional[int] = None) -> None:
        self.opcode_table = opcode_table
        self.max_entries = max_entries
        self._cache: Dict[Tuple[str, ...], CompiledBlock] = {}
        self._hits = 0
        self._misses = 0

    def compile(self, block: BasicBlock) -> CompiledBlock:
        if self.max_entries == 0:
            return compile_block(block, self.opcode_table)
        key = block.structural_key()
        compiled = self._cache.get(key)
        if compiled is not None:
            self._hits += 1
            return compiled
        self._misses += 1
        compiled = compile_block(block, self.opcode_table)
        if self.max_entries is not None and len(self._cache) >= self.max_entries:
            # Simple FIFO-ish eviction: drop the oldest insertion.  Block
            # universes are small (hundreds to thousands), so this is a
            # safety valve rather than a tuned policy.
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = compiled
        return compiled

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def clear(self) -> None:
        self._cache.clear()
        self._hits = 0
        self._misses = 0
