"""Concrete engine constructions for the two simulators.

These helpers wire :class:`~repro.engine.engine.SimulationEngine` to the
llvm-mca and llvm_sim backends with picklable simulator factories, so the
same engine instance works for serial, cached, and multiprocess execution.
"""

from __future__ import annotations

import functools

from repro.engine.binding import llvm_sim_table_digest, mca_table_digest
from repro.engine.engine import DEFAULT_CACHE_SIZE, SimulationEngine
from repro.llvm_mca.simulator import MCASimulator
from repro.llvm_sim.simulator import LLVMSimSimulator


def mca_engine(warmup_iterations: int = 4, measure_iterations: int = 8,
               max_dynamic_instructions: int = 2048,
               cache_size: int = DEFAULT_CACHE_SIZE,
               num_workers: int = 0,
               megabatch: bool = True) -> SimulationEngine:
    """An engine running the llvm-mca style simulator."""
    factory = functools.partial(MCASimulator,
                                warmup_iterations=warmup_iterations,
                                measure_iterations=measure_iterations,
                                max_dynamic_instructions=max_dynamic_instructions)
    return SimulationEngine(factory, mca_table_digest,
                            cache_size=cache_size, num_workers=num_workers,
                            megabatch=megabatch)


def llvm_sim_engine(frontend_uops_per_cycle: int = 4,
                    warmup_iterations: int = 4, measure_iterations: int = 8,
                    max_dynamic_instructions: int = 2048,
                    cache_size: int = DEFAULT_CACHE_SIZE,
                    num_workers: int = 0,
                    megabatch: bool = True) -> SimulationEngine:
    """An engine running the llvm_sim style simulator."""
    factory = functools.partial(LLVMSimSimulator,
                                frontend_uops_per_cycle=frontend_uops_per_cycle,
                                warmup_iterations=warmup_iterations,
                                measure_iterations=measure_iterations,
                                max_dynamic_instructions=max_dynamic_instructions)
    return SimulationEngine(factory, llvm_sim_table_digest,
                            cache_size=cache_size, num_workers=num_workers,
                            megabatch=megabatch)
